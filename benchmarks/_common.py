"""Shared machinery for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper.  The
conventions:

* experiments run **real training** on the analog datasets with the
  simulated cluster clock; results print as monospace tables matching the
  rows/series the paper reports;
* the pytest-benchmark fixture times one representative experiment per
  bench (``rounds=1`` — these are experiment harnesses, not micro-benches);
* every bench asserts its figure's qualitative *shape* (who wins, roughly
  by how much), so a regression in the reproduction fails the suite.

Run everything with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import ClusterSpec
from repro.core import (DistributedTrainer, MLlibModelAveragingTrainer,
                        MLlibStarTrainer, MLlibTrainer, TrainerConfig,
                        TrainResult)
from repro.data import SparseDataset
from repro.glm import Objective
from repro.metrics import ConvergenceResult, TrainingHistory
from repro.ps import AngelTrainer, PetuumStarTrainer, PetuumTrainer

__all__ = [
    "SVM_L2_STRENGTH", "SYSTEMS", "make_objective", "make_trainer",
    "run_comparison", "ComparisonOutcome",
]

#: The paper's regularization setting ("with and without L2", lambda = 0.1).
SVM_L2_STRENGTH = 0.1

SYSTEMS: dict[str, type[DistributedTrainer]] = {
    "MLlib": MLlibTrainer,
    "MLlib+MA": MLlibModelAveragingTrainer,
    "MLlib*": MLlibStarTrainer,
    "Petuum": PetuumTrainer,
    "Petuum*": PetuumStarTrainer,
    "Angel": AngelTrainer,
}


def make_objective(l2: float) -> Objective:
    """SVM objective, with or without L2 (the paper's workload)."""
    if l2 > 0:
        return Objective("hinge", "l2", l2)
    return Objective("hinge")


def make_trainer(system: str, objective: Objective, cluster: ClusterSpec,
                 config: TrainerConfig) -> DistributedTrainer:
    try:
        cls = SYSTEMS[system]
    except KeyError:
        raise KeyError(f"unknown system {system!r}; "
                       f"choose from {sorted(SYSTEMS)}") from None
    return cls(objective, cluster, config)


# Per-system defaults that mirror the paper's tuning conclusions: MLlib
# runs its stepSize/sqrt(t) decay on ~1% batches; SendModel systems run
# chunked local SGD under the same decay; Petuum communicates per batch
# (larger batches keep communication sane); Angel uses per-epoch steps.
_SENDMODEL = TrainerConfig(learning_rate=0.5, lr_schedule="inv_sqrt",
                           local_chunk_size=64, max_steps=30, seed=1)
DEFAULT_CONFIGS: dict[str, TrainerConfig] = {
    "MLlib": TrainerConfig(learning_rate=0.5, lr_schedule="inv_sqrt",
                           batch_fraction=0.01, max_steps=4000,
                           eval_every=25, seed=1),
    "MLlib+MA": _SENDMODEL,
    "MLlib*": _SENDMODEL,
    "Petuum": TrainerConfig(learning_rate=1.0, lr_schedule="inv_sqrt",
                            batch_fraction=0.2, local_chunk_size=16,
                            max_steps=400, eval_every=10, seed=1),
    "Petuum*": TrainerConfig(learning_rate=1.0, lr_schedule="inv_sqrt",
                             batch_fraction=0.2, local_chunk_size=16,
                             max_steps=400, eval_every=10, seed=1),
    "Angel": TrainerConfig(learning_rate=0.5, lr_schedule="inv_sqrt",
                           batch_fraction=0.01, max_steps=100, seed=1),
}


@dataclass
class ComparisonOutcome:
    """Results of running several systems on one workload."""

    dataset: str
    l2: float
    results: dict[str, TrainResult]
    convergence: dict[str, ConvergenceResult]

    def history(self, system: str) -> TrainingHistory:
        return self.results[system].history


def run_comparison(dataset: SparseDataset, l2: float, systems: list[str],
                   cluster: ClusterSpec,
                   overrides: dict[str, dict] | None = None,
                   reference: str = "MLlib*") -> ComparisonOutcome:
    """Run ``systems`` on one (dataset, reg) workload and score convergence.

    The reference system runs first; its best objective plus the 0.01
    tolerance becomes the early-stop threshold for the others, which
    mirrors the paper's "accuracy loss 0.01 vs the optimum" metric while
    keeping host-side runtime bounded.
    """
    overrides = overrides or {}
    objective = make_objective(l2)

    def config_for(system: str, stop: float | None) -> TrainerConfig:
        cfg = DEFAULT_CONFIGS[system]
        kwargs = dict(overrides.get(system, {}))
        if stop is not None:
            kwargs["stop_threshold"] = stop
        return cfg.with_overrides(**kwargs) if kwargs else cfg

    results: dict[str, TrainResult] = {}
    ref_result = make_trainer(reference, objective, cluster,
                              config_for(reference, None)).fit(dataset)
    results[reference] = ref_result
    threshold = ref_result.history.best_objective + 0.01

    for system in systems:
        if system == reference:
            continue
        trainer = make_trainer(system, objective, cluster,
                               config_for(system, threshold))
        results[system] = trainer.fit(dataset)

    # Score every system against the same fixed threshold that drove the
    # early stopping.  (Deriving the threshold from the global minimum
    # would move the goalposts whenever a system's final step overshoots
    # below the reference optimum.)
    convergence = {
        system: ConvergenceResult.from_history(r.history, threshold)
        for system, r in results.items()
    }
    return ComparisonOutcome(dataset=dataset.name, l2=l2, results=results,
                             convergence=convergence)
