"""Ablation — model summation vs model averaging (Section IV-B1 remark).

Original Petuum sums the workers' model deltas; Zhang & Jordan [15] point
out summation can diverge, and the paper replaces it with averaging to
build Petuum*.  With k workers each pushing a full local delta, summation
multiplies the effective step size by ~k.

This bench sweeps the learning rate on a least-squares workload and shows
the divergence boundary: averaging stays stable across the sweep while
summation blows up at rates averaging tolerates easily.
"""

from repro.cluster import cluster1
from repro.core import TrainerConfig
from repro.data import SyntheticSpec, generate
from repro.glm import Objective
from repro.metrics import format_table
from repro.ps import PetuumStarTrainer, PetuumTrainer

LEARNING_RATES = (0.02, 0.05, 0.1)


def run_sweep():
    dataset = generate(SyntheticSpec(n_rows=2000, n_features=200,
                                     nnz_per_row=12.0, noise=0.03, seed=11),
                       name="ablation")
    objective = Objective("squared")
    cluster = cluster1(executors=4)
    rows = []
    outcomes = {}
    for lr in LEARNING_RATES:
        cfg = TrainerConfig(max_steps=40, learning_rate=lr,
                            batch_fraction=0.5, local_chunk_size=1000,
                            seed=1)
        summation = PetuumTrainer(objective, cluster, cfg).fit(dataset)
        averaging = PetuumStarTrainer(objective, cluster, cfg).fit(dataset)
        outcomes[lr] = (summation, averaging)
        rows.append([
            lr,
            "DIVERGED" if summation.diverged else (
                round(summation.final_objective, 4)),
            "DIVERGED" if averaging.diverged else (
                round(averaging.final_objective, 4)),
        ])
    return rows, outcomes


def bench_ablation_aggregation(benchmark):
    rows, outcomes = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["learning rate", "summation (Petuum) final",
         "averaging (Petuum*) final"], rows,
        title="Ablation: model summation vs model averaging"))

    # Averaging never diverges across the sweep.
    assert all(not avg.diverged for _, avg in outcomes.values())
    # Summation diverges (or is at least 10x worse) at some swept rate
    # where averaging is fine.
    assert any(
        s.diverged or s.final_objective > 10 * a.final_objective
        for s, a in outcomes.values())
