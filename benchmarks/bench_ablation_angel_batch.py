"""Ablation — Angel's batch-size sensitivity (Section V-B2).

"Angel cannot support small batch sizes very efficiently ... Angel stores
the accumulated gradients for each batch in a separate vector [so] there
will be significant overhead on memory allocation and garbage collection."

This bench sweeps the batch fraction and reports simulated seconds per
epoch for Angel vs MLlib* on the same data.  MLlib*'s per-epoch cost is
insensitive to the local chunking, while Angel's grows sharply as batches
shrink (more buffers per epoch).
"""

from repro.cluster import cluster1
from repro.core import MLlibStarTrainer, TrainerConfig
from repro.data import kdd12_like
from repro.glm import Objective
from repro.metrics import format_table
from repro.ps import AngelTrainer

BATCH_FRACTIONS = (0.001, 0.01, 0.1)
EPOCHS = 3


def run_sweep():
    # kdd12: the large-model analog (d = 55,000), where allocating one
    # gradient buffer per batch is expensive.
    dataset = kdd12_like()
    objective = Objective("hinge")
    angel_times = {}
    for fraction in BATCH_FRACTIONS:
        cfg = TrainerConfig(max_steps=EPOCHS, learning_rate=0.5,
                            lr_schedule="inv_sqrt",
                            batch_fraction=fraction, seed=1)
        result = AngelTrainer(objective, cluster1(executors=8), cfg).fit(
            dataset)
        angel_times[fraction] = result.history.total_seconds / EPOCHS

    star_cfg = TrainerConfig(max_steps=EPOCHS, learning_rate=0.5,
                             lr_schedule="inv_sqrt", local_chunk_size=64,
                             seed=1)
    star = MLlibStarTrainer(objective, cluster1(executors=8), star_cfg).fit(
        dataset)
    star_time = star.history.total_seconds / EPOCHS
    return angel_times, star_time


def bench_ablation_angel_batch(benchmark):
    angel_times, star_time = benchmark.pedantic(run_sweep, rounds=1,
                                                iterations=1)

    rows = [[f"{f:g}", round(t, 3), round(t / star_time, 2)]
            for f, t in angel_times.items()]
    rows.append(["MLlib* (reference)", round(star_time, 3), 1.0])
    print()
    print(format_table(
        ["batch fraction", "sec / epoch", "vs MLlib*"], rows,
        title="Ablation: Angel per-epoch cost vs batch size (kdd12 analog)"))

    ordered = [angel_times[f] for f in BATCH_FRACTIONS]
    # Smaller batches => strictly more per-epoch time (buffer overhead).
    assert ordered[0] > ordered[1] > ordered[2]
    # At the smallest batch size the overhead is substantial (>= 2x the
    # large-batch epoch).
    assert ordered[0] > 2 * ordered[2]
