"""Ablation — consistency controllers: BSP vs SSP vs ASP (Section III-B).

Parameter servers "can leverage different consistency controllers to
implement different communication schemes such as BSP, SSP, and ASP".
Petuum* uses SSP "to alleviate potential latency from stragglers"
(Section V-B2).  This bench runs the same per-step workload through the
PS timeline engine on a heterogeneous cluster under each controller and
reports the makespan: SSP must sit between BSP (full barrier) and ASP
(no barrier), and the BSP -> SSP gap must widen as stragglers worsen.
"""

from repro.cluster import cluster2
from repro.metrics import format_table
from repro.ps import ASP, BSP, SSP, PsEngine

WORKERS = 16
STEPS = 30
MODEL_SIZE = 100_000


def makespan(controller, straggler_sigma: float) -> float:
    cluster = cluster2(machines=WORKERS, seed=3,
                       straggler_sigma=straggler_sigma)
    engine = PsEngine(cluster, controller=controller)
    last = 0.0
    for _ in range(STEPS):
        last = engine.run_step([0.5] * WORKERS, MODEL_SIZE)
    return last


def run_sweep():
    controllers = {
        "BSP": BSP(),
        "SSP(s=1)": SSP(staleness=1),
        "SSP(s=3)": SSP(staleness=3),
        "ASP": ASP(),
    }
    return {sigma: {name: makespan(ctrl, sigma)
                    for name, ctrl in controllers.items()}
            for sigma in (0.2, 0.5)}


def bench_ablation_consistency(benchmark):
    by_sigma = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for sigma, times in by_sigma.items():
        for name, t in times.items():
            rows.append([sigma, name, round(t, 2),
                         f"{times['BSP'] / t:.2f}x"])
    print()
    print(format_table(
        ["straggler sigma", "controller", "makespan (sim s)", "vs BSP"],
        rows, title=f"Ablation: consistency controllers "
                    f"({WORKERS} workers, {STEPS} steps)"))

    for sigma, times in by_sigma.items():
        # Staleness monotonically relaxes the barrier.
        assert times["ASP"] <= times["SSP(s=3)"] <= times["SSP(s=1)"] <= (
            times["BSP"])

    # The benefit of staleness grows with straggler severity.
    gain_mild = by_sigma[0.2]["BSP"] / by_sigma[0.2]["SSP(s=3)"]
    gain_severe = by_sigma[0.5]["BSP"] / by_sigma[0.5]["SSP(s=3)"]
    assert gain_severe > gain_mild
