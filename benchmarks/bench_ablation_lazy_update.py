"""Ablation — Bottou lazy L2 updates vs eager dense updates.

With L2 regularization every SGD update decays all d model coordinates;
the lazy (scaled-vector) representation turns that into O(1) work per
update (Section IV-B1, [14]).  This bench trains the same workload with
``lazy_l2`` on and off and reports:

* identical objectives (the trick is exact, not an approximation), and
* the simulated-seconds gap, which grows with the number of updates.
"""

from repro.cluster import cluster1
from repro.core import MLlibStarTrainer, TrainerConfig
from repro.data import kddb_like
from repro.glm import Objective
from repro.metrics import format_table


def run_pair():
    dataset = kddb_like()  # high-dimensional: d = 30,000 in the analog
    objective = Objective("hinge", "l2", 0.1)
    results = {}
    for lazy in (True, False):
        cfg = TrainerConfig(max_steps=8, learning_rate=0.5,
                            lr_schedule="inv_sqrt", local_chunk_size=16,
                            lazy_l2=lazy, seed=1)
        trainer = MLlibStarTrainer(objective, cluster1(executors=8), cfg)
        results[lazy] = trainer.fit(dataset)
    return results


def bench_ablation_lazy_update(benchmark):
    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    lazy, eager = results[True], results[False]

    rows = [
        ["lazy (scaled vector)", round(lazy.history.total_seconds, 3),
         round(lazy.final_objective, 5)],
        ["eager (dense decay)", round(eager.history.total_seconds, 3),
         round(eager.final_objective, 5)],
        ["eager / lazy time", round(eager.history.total_seconds
                                    / lazy.history.total_seconds, 2), ""],
    ]
    print()
    print(format_table(["update scheme", "sim seconds", "final objective"],
                       rows,
                       title="Ablation: lazy vs eager L2 updates "
                             "(kddb analog, MLlib*)"))

    # Exactness: identical iterates either way.
    assert abs(lazy.final_objective - eager.final_objective) < 1e-8
    # The lazy scheme is materially cheaper in simulated time.
    assert lazy.history.total_seconds < 0.8 * eager.history.total_seconds
