"""Ablation — T', the local iterations per communication step (§II-B).

Algorithm 2's SendModel discussion: "If T' = 1 ... the number of updates
made by SendGradient and SendModel will be exactly the same.  However, if
T' >> 1, which is the typical case, SendModel will result in much more
updates and thus much faster convergence."

This bench sweeps ``local_epochs`` (our T', in units of passes over the
partition) for MLlib* and reports communication steps and simulated time
to a fixed objective threshold: more local work per step means fewer
steps, with diminishing returns as local models drift apart between
averages.
"""

from repro.cluster import cluster1
from repro.core import MLlibStarTrainer, TrainerConfig
from repro.data import SyntheticSpec, generate
from repro.glm import Objective
from repro.metrics import format_table

LOCAL_EPOCHS = (1, 2, 4)
TARGET = 0.32


def run_sweep():
    dataset = generate(SyntheticSpec(n_rows=6000, n_features=400,
                                     nnz_per_row=12.0, noise=0.03, seed=51),
                       name="tprime")
    objective = Objective("hinge")
    outcomes = {}
    for t_prime in LOCAL_EPOCHS:
        cfg = TrainerConfig(max_steps=60, learning_rate=0.3,
                            lr_schedule="inv_sqrt", local_chunk_size=16,
                            local_epochs=t_prime,
                            stop_threshold=TARGET, seed=1)
        result = MLlibStarTrainer(objective, cluster1(executors=8),
                                  cfg).fit(dataset)
        hit = result.history.first_reaching(TARGET)
        outcomes[t_prime] = (result, hit)
    return outcomes


def bench_ablation_local_epochs(benchmark):
    outcomes = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for t_prime, (result, hit) in outcomes.items():
        rows.append([
            t_prime,
            None if hit is None else hit.step,
            None if hit is None else round(hit.seconds, 3),
            round(result.history.best_objective, 4),
        ])
    print()
    print(format_table(
        ["T' (local epochs)", f"steps to f=0.32",
         f"sec to f=0.32", "best f(w)"], rows,
        title="Ablation: local iterations per communication step "
              "(MLlib*)"))

    hits = {t: hit for t, (_, hit) in outcomes.items()}
    # Every configuration reaches the target...
    assert all(h is not None for h in hits.values())
    # ...and larger T' needs FEWER communication steps (Section II-B).
    steps = [hits[t].step for t in LOCAL_EPOCHS]
    assert steps[0] > steps[1] >= steps[2]
