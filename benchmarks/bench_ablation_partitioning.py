"""Ablation — data partitioning and model averaging (paper footnote 4).

Section IV-B2's footnote discusses the interaction between data
partitioning and model partitioning, noting that careful co-partitioning
"is data dependent and is difficult to achieve in practice due to issues
such as data skew" and that "data need to be randomly shuffled and
distributed across the workers".

Model averaging's convergence argument assumes the workers' partitions
look alike (IID).  This bench makes the assumption fail: it sorts the
dataset by label and partitions contiguously, giving each worker a
near-single-class shard, then compares MLlib* convergence against the
random (shuffled) partitioning on identical budgets.
"""

import numpy as np

from repro.cluster import cluster1
from repro.core import MLlibStarTrainer, TrainerConfig
from repro.data import SparseDataset, SyntheticSpec, generate
from repro.glm import Objective
from repro.metrics import format_table

STEPS = 12


def label_sorted(dataset: SparseDataset) -> SparseDataset:
    """Rows reordered so all -1 examples precede all +1 examples."""
    order = np.argsort(dataset.y, kind="mergesort")
    return SparseDataset(name=f"{dataset.name}-sorted",
                         X=dataset.X[order], y=dataset.y[order])


def run_pair():
    base = generate(SyntheticSpec(n_rows=4000, n_features=300,
                                  nnz_per_row=12.0, noise=0.03, seed=21),
                    name="iid-study")
    objective = Objective("hinge")
    cfg = TrainerConfig(max_steps=STEPS, learning_rate=0.3,
                        lr_schedule="inv_sqrt", local_chunk_size=16, seed=1)

    shuffled = MLlibStarTrainer(objective, cluster1(executors=8), cfg).fit(
        base, partition_strategy="random")
    skewed = MLlibStarTrainer(objective, cluster1(executors=8), cfg).fit(
        label_sorted(base), partition_strategy="contiguous")
    return shuffled, skewed


def bench_ablation_partitioning(benchmark):
    shuffled, skewed = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    rows = [
        ["random (shuffled)", round(shuffled.history.best_objective, 4),
         round(shuffled.final_objective, 4)],
        ["contiguous on label-sorted", round(skewed.history.best_objective,
                                             4),
         round(skewed.final_objective, 4)],
    ]
    print()
    print(format_table(
        ["partitioning", "best f(w)", "final f(w)"], rows,
        title=f"Ablation: IID vs skewed partitions for model averaging "
              f"({STEPS} steps)"))

    # Skewed shards hurt model averaging: measurably worse objective on
    # the same budget.  (The footnote's recommendation — shuffle the data
    # randomly across workers — is what the 'random' strategy does.)
    assert skewed.history.best_objective > (
        shuffled.history.best_objective + 0.01)
