"""Ablation — treeAggregate depth and the cost of driver-centric collection.

MLlib's hierarchical (depth-2) aggregation exists to shed driver load
relative to flat (depth-1) aggregation, but Section IV-B2 shows both lose
to the shuffle-based AllReduce.  This bench prices one aggregation +
redistribution of a size-m model on an 8- and a 32-executor cluster under
all three patterns.
"""

from repro.cluster import cluster1
from repro.engine import BspEngine, TreeAggregateModel
from repro.metrics import format_table

MODEL_SIZE = 5_000_000


def price_patterns(executors: int):
    rows = {}
    for depth in (1, 2):
        engine = BspEngine(cluster1(executors=executors),
                           tree=TreeAggregateModel(depth=depth))
        total = (engine.tree_aggregate_phase(MODEL_SIZE, 0)
                 + engine.broadcast_phase(MODEL_SIZE, 0))
        timing = TreeAggregateModel(depth=depth).timing(
            cluster1(executors=executors), MODEL_SIZE)
        rows[f"tree depth {depth}"] = (total, timing.driver_seconds)
    star = BspEngine(cluster1(executors=executors))
    total = (star.reduce_scatter_phase(MODEL_SIZE, 0)
             + star.all_gather_phase(MODEL_SIZE, 0))
    rows["AllReduce (MLlib*)"] = (total, 0.0)
    return rows


def run_all():
    return {k: price_patterns(k) for k in (8, 32)}


def bench_ablation_tree_depth(benchmark):
    by_cluster = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for executors, patterns in by_cluster.items():
        for pattern, (total, driver) in patterns.items():
            rows.append([executors, pattern, round(total, 3),
                         round(driver, 3)])
    print()
    print(format_table(
        ["executors", "pattern", "round-trip sec", "driver sec"], rows,
        title=f"Ablation: aggregation pattern cost "
              f"(model = {MODEL_SIZE:,} floats)"))

    for executors, patterns in by_cluster.items():
        flat_total, flat_driver = patterns["tree depth 1"]
        tree_total, tree_driver = patterns["tree depth 2"]
        star_total, star_driver = patterns["AllReduce (MLlib*)"]
        # treeAggregate sheds driver load vs flat...
        assert tree_driver < flat_driver
        # ...but AllReduce beats both and has no driver at all.
        assert star_total < tree_total
        assert star_total < flat_total
        assert star_driver == 0.0

    # The AllReduce advantage grows with cluster size.
    gain_8 = (by_cluster[8]["tree depth 2"][0]
              / by_cluster[8]["AllReduce (MLlib*)"][0])
    gain_32 = (by_cluster[32]["tree depth 2"][0]
               / by_cluster[32]["AllReduce (MLlib*)"][0])
    assert gain_32 > gain_8
