"""Ablation — tasks per executor ("waves"), Section V-C.

The paper: "One may argue that assigning multiple tasks to one executor
can reduce the overhead brought by BSP.  However ... we tuned the number
of tasks per executor, and the result turns out that one task per executor
is the optimal solution, due to heavy communication overhead."

``TrainerConfig.tasks_per_executor`` is a first-class knob of the MLlib
trainer: each wave pays a task-launch overhead and ships its own gradient
into ``treeAggregate``.  This bench trains the same workload under 1/2/4/8
waves and reports simulated seconds per iteration.
"""

from repro.cluster import cluster1
from repro.core import MLlibTrainer, TrainerConfig
from repro.data import kdd12_like
from repro.glm import Objective
from repro.metrics import format_table

WAVES = (1, 2, 4, 8)
STEPS = 5


def run_sweep():
    dataset = kdd12_like()  # large model: heavy per-message communication
    objective = Objective("hinge")
    times = {}
    for waves in WAVES:
        cfg = TrainerConfig(max_steps=STEPS, learning_rate=0.5,
                            lr_schedule="inv_sqrt", batch_fraction=0.05,
                            tasks_per_executor=waves, seed=1)
        result = MLlibTrainer(objective, cluster1(executors=8), cfg).fit(
            dataset)
        times[waves] = result.history.total_seconds / STEPS
    return times


def bench_ablation_waves(benchmark):
    times = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = [[w, round(t, 3), f"{t / times[1]:.2f}x"]
            for w, t in times.items()]
    print()
    print(format_table(
        ["tasks per executor", "sec / iteration", "vs 1 task"], rows,
        title="Ablation: waves of tasks per executor "
              "(MLlib, kdd12 analog)"))

    # One task per executor is optimal, and the penalty grows with waves.
    ordered = [times[w] for w in WAVES]
    assert ordered == sorted(ordered)
    assert times[8] > 1.5 * times[1]
