"""Extension — asynchronous SGD vs BSP under stragglers (§III-B, ref [13]).

"It has been shown that asynchronous communication can be beneficial for
distributed machine learning [13]."  This bench quantifies the claim
within the reproduction: the event-driven :class:`AsyncSgdTrainer`
(real staleness numerics, no barriers) against the BSP SendGradient
baseline, on a heterogeneous straggler-prone cluster, at matched update
budgets.

Expected shape: ASGD lands the same number of updates in a fraction of
the simulated time (no barrier-to-slowest); at matched *wall-clock*, its
objective is far ahead of BSP's despite gradient staleness around k-1 —
though per-update, stale gradients are worth slightly less than fresh
ones (the classic async tradeoff, visible in the table).
"""

from repro.cluster import cluster2
from repro.core import MLlibTrainer, TrainerConfig
from repro.data import SyntheticSpec, generate
from repro.glm import Objective
from repro.metrics import format_table
from repro.ps import AsyncSgdTrainer

WORKERS = 8
STEPS = 60  # 60 global updates for BSP; 60 * 8 pushes for ASGD


def run_pair():
    dataset = generate(SyntheticSpec(n_rows=4000, n_features=200,
                                     nnz_per_row=10.0, noise=0.03, seed=41),
                       name="async-study")
    objective = Objective("hinge")
    asgd_cfg = TrainerConfig(max_steps=STEPS, learning_rate=0.2,
                             batch_fraction=0.05, eval_every=5, seed=1)
    # Match total updates: BSP applies 1 update per step, so give it
    # 8x the steps.
    bsp_cfg = asgd_cfg.with_overrides(max_steps=STEPS * WORKERS,
                                      eval_every=40)

    asgd_trainer = AsyncSgdTrainer(
        objective, cluster2(machines=WORKERS, straggler_sigma=0.5, seed=4),
        asgd_cfg)
    asgd = asgd_trainer.fit(dataset)
    bsp = MLlibTrainer(
        objective, cluster2(machines=WORKERS, straggler_sigma=0.5, seed=4),
        bsp_cfg).fit(dataset)
    return asgd, bsp, asgd_trainer.mean_staleness


def bench_ext_async(benchmark):
    asgd, bsp, staleness = benchmark.pedantic(run_pair, rounds=1,
                                              iterations=1)

    # BSP's objective at ASGD's finishing time (time-matched comparison).
    deadline = asgd.history.total_seconds
    bsp_at_deadline = None
    for point in bsp.history:
        if point.seconds <= deadline:
            bsp_at_deadline = point.objective
        else:
            break
    if bsp_at_deadline is None:
        bsp_at_deadline = bsp.history.objectives()[0]

    rows = [
        ["ASGD (ASP)", STEPS * WORKERS,
         round(asgd.history.total_seconds, 3),
         round(asgd.final_objective, 4), round(staleness, 1)],
        ["MLlib (BSP)", STEPS * WORKERS,
         round(bsp.history.total_seconds, 3),
         round(bsp.final_objective, 4), 0],
        [f"MLlib (BSP) at t={deadline:.2f}s", "",
         round(deadline, 3), round(bsp_at_deadline, 4), 0],
    ]
    print()
    print(format_table(
        ["system", "updates", "sim seconds", "final f(w)",
         "mean staleness"], rows,
        title="Extension: async vs BSP at matched update budgets "
              "(heterogeneous cluster)"))

    # Same update count, a fraction of the wall-clock (no barriers).
    assert asgd.history.total_seconds < 0.3 * bsp.history.total_seconds
    # Staleness ~ k-1 is real...
    assert staleness > 1
    # ...yet at matched wall-clock ASGD is far ahead of BSP.
    assert asgd.final_objective < bsp_at_deadline - 0.05
