"""Extension — real executors: shm + socket vs the process pool.

The process backend re-pickles the broadcast model into every task
message, every superstep.  The ``shm`` backend removes that copy
(partitions and the broadcast model live in shared memory; only task
scalars and local-model deltas cross process boundaries) and the
``socket`` backend replaces the pool with long-lived daemons on a real
localhost TCP wire, so bytes and seconds are *measured*.

Two results are recorded, both **gated on bit-identity** (every run's
convergence history must match point-for-point before any number is
reported):

* an end-to-end sweep — MLlib* under ``processes`` (the baseline),
  ``serial``, ``shm`` and ``socket`` on a wide-model workload (the
  regime the shared-memory broadcast targets);
* the measured-vs-simulated network validation
  (:func:`repro.perf.netcheck.validate_network`): the socket run's
  actual bytes-on-wire priced through the simulated
  :class:`~repro.cluster.network.NetworkModel`, plus the empirical
  alpha/bandwidth fitted from the measured exchanges.

Wall-clock caveat (same as ``bench_ext_wallclock``): on a single-core
container every pool pays overhead without parallel payoff, so the hard
speedup bar applies only to the full study on real hardware; smoke mode
asserts the gates and records the numbers.

Run modes::

    # full study (writes BENCH_backends.json at the repo root)
    PYTHONPATH=src python benchmarks/bench_ext_backends.py

    # CI smoke: small workload, same gates, no JSON write
    PYTHONPATH=src python benchmarks/bench_ext_backends.py --smoke

    # pytest entry (smoke-sized, no JSON write)
    PYTHONPATH=src python -m pytest benchmarks/bench_ext_backends.py \
        --benchmark-only -q -s
"""

import argparse
import json
from pathlib import Path

from repro.cluster import cluster1
from repro.core import MLlibStarTrainer, TrainerConfig
from repro.data import SyntheticSpec, generate
from repro.glm import Objective
from repro.metrics import format_table
from repro.perf.harness import backend_sweep
from repro.perf.netcheck import validate_network

BENCH_PATH = (Path(__file__).resolve().parent.parent
              / "BENCH_backends.json")

#: The sweep's baseline: every speedup is measured against the process
#: pool this PR set out to beat.
SWEEP_BACKENDS = ("processes", "serial", "shm", "socket")

#: Full-study bar, real hardware: removing the per-superstep broadcast
#: pickle must not make the process-pool path slower.
FULL_SHM_BAR = 1.0


def _make_workload(smoke: bool):
    """A wide-model workload — broadcast traffic is what shm removes."""
    if smoke:
        rows, features, executors, steps = 4000, 20000, 4, 3
    else:
        rows, features, executors, steps = 40000, 200000, 8, 6
    dataset = generate(
        SyntheticSpec(n_rows=rows, n_features=features, nnz_per_row=12.0,
                      noise=0.02, seed=17),
        name=f"backends-{'smoke' if smoke else 'full'}")

    def make_trainer(backend: str):
        config = TrainerConfig(max_steps=steps, learning_rate=0.5,
                               lr_schedule="inv_sqrt", local_chunk_size=64,
                               seed=1, backend=backend)
        return MLlibStarTrainer(Objective("hinge"),
                                cluster1(executors=executors), config)

    return make_trainer, dataset, executors, steps


def run_study(smoke: bool):
    make_trainer, dataset, executors, steps = _make_workload(smoke)
    sweep = backend_sweep(make_trainer, dataset,
                          backends=SWEEP_BACKENDS,
                          repeats=1 if smoke else 2,
                          include_reference_baseline=False)
    if smoke:
        network = validate_network(rows=200, features=64, executors=2,
                                   steps=3, seed=3)
    else:
        network = validate_network(rows=2000, features=4096, executors=4,
                                   steps=6, seed=3)
    return sweep, network, dataset.name, executors, steps


def report_and_check(sweep, network, dataset_name, executors, steps,
                     smoke: bool):
    print(format_table(
        ["backend", "wall s", "speedup vs processes"],
        [[name, f"{sweep['seconds'][name]:.3f}",
          f"{sweep['speedup_vs_baseline'][name]:.2f}x"]
         for name in sweep["seconds"]],
        title=f"MLlib* end-to-end on {dataset_name} "
              f"({executors} executors, {steps} supersteps; "
              "histories bit-identical)"))
    print()
    measured = network["measured"]
    simulated = network["simulated"]
    print(f"measured wire:  {measured['messages']} messages, "
          f"{measured['bytes_on_wire']} bytes, "
          f"comm {measured['task_comm_seconds']:.4f}s")
    print(f"simulated:      {simulated['task_seconds']:.4f}s "
          f"(alpha={simulated['alpha_seconds']:.2e}s, "
          f"bw={simulated['bandwidth_bytes_per_second']:.2e} B/s)")
    ratio = network["ratio_measured_over_simulated"]
    if ratio is not None:
        print(f"measured/simulated comm ratio: {ratio:.4f}")

    # The gates: both the sweep and the validation run refuse to report
    # numbers for a drifted computation.
    assert sweep["bit_identical"], sweep
    assert sweep["baseline"] == "processes"
    assert network["bit_identical"], network
    assert measured["bytes_on_wire"] > measured["install_bytes"] > 0
    if not smoke:
        assert sweep["speedup_vs_baseline"]["shm"] >= FULL_SHM_BAR, \
            sweep["speedup_vs_baseline"]


def _payload(sweep, network, dataset_name, executors, steps):
    return {
        "bench": "backends",
        "workload": {
            "system": "MLlib*",
            "dataset": dataset_name,
            "executors": executors,
            "supersteps": steps,
            "backends_baseline": sweep["baseline"],
        },
        "backends": sweep,
        "network_validation": network,
    }


def bench_ext_backends(benchmark):
    """Pytest entry: smoke-sized, asserts the gates, never writes JSON."""
    sweep, network, name, executors, steps = benchmark.pedantic(
        lambda: run_study(smoke=True), rounds=1, iterations=1)
    print()
    report_and_check(sweep, network, name, executors, steps, smoke=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small workload, same gates, no "
                             "BENCH_backends.json write")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="override the JSON output path")
    args = parser.parse_args()

    sweep, network, name, executors, steps = run_study(smoke=args.smoke)
    report_and_check(sweep, network, name, executors, steps,
                     smoke=args.smoke)
    if args.smoke and args.out is None:
        print("smoke mode: all gates passed; no JSON written")
        return 0
    out = Path(args.out) if args.out else BENCH_PATH
    out.write_text(json.dumps(
        _payload(sweep, network, name, executors, steps),
        indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
