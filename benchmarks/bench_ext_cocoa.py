"""Extension — dual local solvers: time-to-suboptimality vs MGD.

Duenner et al. (1612.01437) argue that on Spark the decisive lever is
how much progress each worker makes *between* communication barriers.
The primal MGD local solver is stuck at "one local pass per superstep";
the CoCoA family turns local work into a dial (``--local-iters H``) and
certifies its progress with the duality gap.  This bench measures where
that dial pays: the sweep is

    solver family (mgd / cocoa / cocoa+)  x  H  x  comm/compute ratio,

on 8 executors, where the ratio axis reprices the same computation on
three fabrics (a slow 100 Mbps analog, the paper's 1 Gbps Cluster 1, and
a fast low-latency 10 Gbps fabric).  Numerics never depend on the
fabric, so each (solver, H) run is one deterministic computation priced
three ways.

The scoring is **certified time-to-suboptimality**.  A long CoCoA+
reference run supplies a dual value ``D_ref``; weak duality makes it a
lower bound on the optimum ``P(w*)`` for every run, so the first history
point with ``P(w) <= D_ref + eps`` has *certified* suboptimality
``<= eps + gap_ref``.  Two gates stand in front of every reported
speedup, mirroring ``perf.harness``:

* **bit-equality** — the representative CoCoA+ run is re-fit under
  ``use_reference_kernels()`` and must reproduce the fast kernels'
  weights, history and certificates bit for bit;
* **certification** — the reference gap must be below ``eps/2``, and
  every dual run's recorded certificates must be non-negative with a
  non-decreasing dual (ascent never goes backwards).

Acceptance bar, asserted below and recorded in ``BENCH_cocoa.json``:
on the communication-bound fabric CoCoA+ (best H) reaches the certified
suboptimality target in at least **2x** less simulated wall-clock than
MGD.

Run modes::

    # full study (writes BENCH_cocoa.json at the repo root)
    PYTHONPATH=src python benchmarks/bench_ext_cocoa.py

    # CI smoke: small model, same sweep and assertions, no JSON write
    PYTHONPATH=src python benchmarks/bench_ext_cocoa.py --smoke

    # pytest entry (smoke-sized, no JSON write)
    PYTHONPATH=src python -m pytest benchmarks/bench_ext_cocoa.py \
        --benchmark-only -q -s
"""

import argparse
import json
from pathlib import Path

import numpy as np

from repro.cluster import (GIGABIT, ClusterSpec, ComputeCostModel,
                           NetworkModel, NoStragglers, homogeneous_nodes)
from repro.core import MLlibStarTrainer, TrainerConfig
from repro.data import SyntheticSpec, generate
from repro.glm import Objective, use_reference_kernels
from repro.metrics import format_table

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_cocoa.json"

EXECUTORS = 8

#: Certified suboptimality target — the paper's "accuracy loss 0.01".
EPS = 0.01

#: The comm/compute axis: the same computation priced on three fabrics.
RATIOS = {
    "comm-bound": NetworkModel(bandwidth=GIGABIT / 10, alpha=3.0e-3),
    "balanced": NetworkModel(bandwidth=GIGABIT, alpha=1.0e-3),
    "compute-bound": NetworkModel(bandwidth=10 * GIGABIT, alpha=1.0e-4),
}

#: The fabric on which the >= 2x acceptance bar is asserted.
BAR_RATIO = "comm-bound"


def _h_list(smoke: bool):
    return (1, 4) if smoke else (1, 4, 16)


def _dataset(smoke: bool):
    """A wide, sparse workload: messages are model-sized (8F bytes) while
    a local pass touches only ``rows/K * nnz`` values, so the slow fabric
    is genuinely communication-bound."""
    # Rows are deliberately few per partition (rows/K = 60 smoke, 120
    # full): a fat local block lets even one MGD pass near-solve the
    # problem, collapsing every run to a couple of supersteps and hiding
    # the axis under study.
    features = 2000 if smoke else 20000
    rows = 480 if smoke else 960
    spec = SyntheticSpec(n_rows=rows, n_features=features,
                         nnz_per_row=10.0, noise=0.02, seed=11)
    return generate(spec, name="cocoa")


def _cluster(network: NetworkModel) -> ClusterSpec:
    nodes = homogeneous_nodes(EXECUTORS + 1, speed=1.0, cores=16,
                              memory_gb=24.0)
    return ClusterSpec(nodes=nodes, network=network,
                       compute=ComputeCostModel(),
                       stragglers=NoStragglers(), seed=0)


def _objective() -> Objective:
    return Objective("hinge", "l2", 0.1)


def _dual_config(solver: str, h: int, smoke: bool,
                 stop: float | None) -> TrainerConfig:
    return TrainerConfig(max_steps=40 if smoke else 60, seed=1,
                         local_solver=solver, local_iters=h,
                         eval_every=1, stop_threshold=stop)


def _mgd_config(smoke: bool, stop: float | None) -> TrainerConfig:
    # The SendModel default from benchmarks/_common.py: one chunked local
    # SGD pass per superstep under the inv-sqrt decay.
    return TrainerConfig(max_steps=200 if smoke else 400,
                         learning_rate=0.5, lr_schedule="inv_sqrt",
                         local_chunk_size=64, seed=1, eval_every=1,
                         stop_threshold=stop)


def _fit(dataset, network: NetworkModel, config: TrainerConfig):
    trainer = MLlibStarTrainer(_objective(), _cluster(network), config)
    return trainer.fit(dataset)


def _time_to(history, target: float):
    """Simulated seconds and step of the first eval at or below target."""
    for point in history.points:
        if point.objective <= target:
            return point.seconds, point.step
    return None, None


# ----------------------------------------------------------------------
# Gates: no speedup is reported unless both hold (cf. perf.harness).
# ----------------------------------------------------------------------
def certified_lower_bound(dataset, smoke: bool):
    """A duality-certified lower bound on ``P(w*)`` for this workload.

    Runs the strongest solver in the sweep (CoCoA+, largest H) to a gap
    below ``EPS/2``; its final dual value bounds the optimum from below
    for *every* run, making ``D_ref + EPS`` a certified suboptimality
    target.  Fabric choice is irrelevant — numerics never see pricing.
    """
    config = _dual_config("cocoa+", 16 if smoke else 32, smoke, None)
    result = _fit(dataset, RATIOS["balanced"], config)
    record = result.duality_gaps[-1]
    assert record.gap <= EPS / 2, (
        f"reference run failed to certify: gap {record.gap:.3e} above "
        f"{EPS / 2:g} — the suboptimality target would be uncertified")
    return record.dual, record.gap


def assert_fast_matches_reference(dataset, smoke: bool) -> None:
    """Re-fit the representative config on the retained reference kernels;
    fast kernels must be a pure speed change."""
    config = _dual_config("cocoa+", max(_h_list(smoke)), smoke, None)
    fast = _fit(dataset, RATIOS[BAR_RATIO], config)
    with use_reference_kernels():
        ref = _fit(dataset, RATIOS[BAR_RATIO], config)
    assert np.array_equal(fast.model.weights, ref.model.weights), (
        "reference kernels produced different weights")
    assert list(fast.history.points) == list(ref.history.points), (
        "reference kernels produced a different history")
    assert list(fast.duality_gaps) == list(ref.duality_gaps), (
        "reference kernels produced different certificates")


def _assert_certificates(result, label: str) -> None:
    gaps = result.duality_gaps
    assert gaps, f"{label}: dual run recorded no certificates"
    assert all(g.gap >= -1e-9 for g in gaps), (
        f"{label}: negative duality gap — certificate broken")
    duals = [g.dual for g in gaps]
    assert all(b >= a - 1e-12 for a, b in zip(duals, duals[1:])), (
        f"{label}: dual objective decreased — ascent broken")


# ----------------------------------------------------------------------
def run_study(smoke: bool):
    dataset = _dataset(smoke)
    assert_fast_matches_reference(dataset, smoke)
    bound, ref_gap = certified_lower_bound(dataset, smoke)
    target = bound + EPS

    rows = []
    for ratio, network in RATIOS.items():
        mgd = _fit(dataset, network, _mgd_config(smoke, target))
        mgd_seconds, mgd_step = _time_to(mgd.history, target)
        assert mgd_seconds is not None, (
            f"{ratio}: MGD never reached the certified target "
            f"{target:.4f}; raise max_steps")
        variants = [("mgd", None, mgd)]
        for solver in ("cocoa", "cocoa+"):
            for h in _h_list(smoke):
                config = _dual_config(solver, h, smoke, target)
                result = _fit(dataset, network, config)
                label = f"{ratio}/{solver}/H={h}"
                _assert_certificates(result, label)
                seconds, _ = _time_to(result.history, target)
                assert seconds is not None, (
                    f"{label}: never reached the certified target")
                variants.append((solver, h, result))
        for solver, h, result in variants:
            seconds, step = _time_to(result.history, target)
            final_gap = (result.duality_gaps[-1].gap
                         if result.duality_gaps else None)
            rows.append({
                "ratio": ratio,
                "bandwidth_bytes_per_second": network.bandwidth,
                "alpha_seconds": network.alpha,
                "solver": solver,
                "local_iters": h,
                "steps_to_target": step,
                "seconds_to_target": seconds,
                "speedup_vs_mgd": mgd_seconds / seconds,
                "comm_seconds": result.comm_seconds,
                "final_objective": result.final_objective,
                "certified_gap": final_gap,
            })
    return rows, {"lower_bound": bound, "reference_gap": ref_gap,
                  "target": target}


def _cell(rows, ratio, solver, h):
    for row in rows:
        if (row["ratio"] == ratio and row["solver"] == solver
                and row["local_iters"] == h):
            return row
    raise KeyError((ratio, solver, h))


def report_and_check(rows, certificate, smoke: bool) -> None:
    for ratio in RATIOS:
        table = [[r["solver"],
                  "-" if r["local_iters"] is None else str(r["local_iters"]),
                  str(r["steps_to_target"]),
                  f"{r['seconds_to_target']:.4f}",
                  f"{r['speedup_vs_mgd']:.2f}x",
                  ("-" if r["certified_gap"] is None
                   else f"{r['certified_gap']:.2e}")]
                 for r in rows if r["ratio"] == ratio]
        print(format_table(
            ["solver", "H", "steps", "s to target", "vs mgd", "final gap"],
            table,
            title=f"MLlib* time to certified eps={EPS:g} suboptimality, "
                  f"{ratio} fabric ({EXECUTORS} executors)"))
        print()
    print(f"certified lower bound D_ref = {certificate['lower_bound']:.6f} "
          f"(reference gap {certificate['reference_gap']:.2e}); "
          f"target P <= {certificate['target']:.6f}")

    # The acceptance bar: on the communication-bound fabric the dual
    # family must convert its fatter local steps into >= 2x wall-clock.
    best = min((r for r in rows
                if r["ratio"] == BAR_RATIO and r["solver"] == "cocoa+"),
               key=lambda r: r["seconds_to_target"])
    assert best["speedup_vs_mgd"] >= 2.0, (
        "CoCoA+ must reach the certified target at least 2x faster than "
        "MGD on the comm-bound fabric", best)
    # And H must behave like a local-progress dial: on the comm-bound
    # fabric the largest H must cross the target in no more supersteps
    # than H=1, and strictly improve something — fewer supersteps, or
    # (when both finish in the same number) a smaller certified gap at
    # the stop.  Comparing raw seconds would be flakier than it looks:
    # at coarse step granularity equal step counts make larger H
    # slightly *slower* in seconds (it does more local work), which is
    # not a regression of the dial.
    hs = sorted(h for h in _h_list(smoke))
    lo = _cell(rows, BAR_RATIO, "cocoa+", hs[0])
    hi = _cell(rows, BAR_RATIO, "cocoa+", hs[-1])
    assert hi["steps_to_target"] <= lo["steps_to_target"], (
        "raising H must not cost supersteps on the comm-bound fabric",
        lo, hi)
    assert (hi["steps_to_target"] < lo["steps_to_target"]
            or hi["certified_gap"] < lo["certified_gap"]), (
        "raising H must buy supersteps or certified progress", lo, hi)


def _payload(rows, certificate, smoke: bool):
    return {
        "bench": "cocoa",
        "workload": {
            "system": "MLlib*",
            "objective": "hinge + l2(0.1)",
            "executors": EXECUTORS,
            "eps": EPS,
            "ratios": {name: {"bandwidth": net.bandwidth,
                              "alpha": net.alpha}
                       for name, net in RATIOS.items()},
            "h_values": list(_h_list(smoke)),
            "smoke": smoke,
        },
        "certificate": certificate,
        "gates": {
            "fast_vs_reference_bit_identical": True,
            "reference_gap_below": EPS / 2,
        },
        "runs": rows,
    }


def bench_ext_cocoa(benchmark):
    """Pytest entry: smoke-sized, asserts the bars, never writes JSON."""
    rows, certificate = benchmark.pedantic(
        lambda: run_study(smoke=True), rounds=1, iterations=1)
    print()
    report_and_check(rows, certificate, smoke=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small model, same sweep and assertions, no "
                             "BENCH_cocoa.json write")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="override the JSON output path")
    args = parser.parse_args()

    rows, certificate = run_study(smoke=args.smoke)
    report_and_check(rows, certificate, smoke=args.smoke)
    if args.smoke and args.out is None:
        print("smoke mode: all assertions passed; no JSON written")
        return 0
    out = Path(args.out) if args.out else BENCH_PATH
    out.write_text(json.dumps(_payload(rows, certificate, smoke=args.smoke),
                              indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
