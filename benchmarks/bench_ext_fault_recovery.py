"""Extension — recovery overhead per system under an identical crash plan.

The paper's evaluation assumes failure-free runs, but Spark's robustness
story (lineage recomputation, checkpointing) is half the reason MLlib
exists.  This bench injects the *same* seeded failure schedule into all
five systems and measures what recovery costs each communication pattern:

* SendGradient / SendModel through the driver (MLlib, MLlib+MA): a lost
  executor redoes its local work and resends; the driver fan-in starts
  late, but peers only pay the usual barrier wait.
* AllReduce (MLlib*): a lost partition owner also loses every piece its
  peers shipped, so all ``k - 1`` peers re-send into the restarted node —
  the whole step stalls on the recovery.  The cheap-steps advantage
  shrinks under failures; the bench quantifies by how much.
* Parameter servers (Petuum*, Angel): a crashed worker stalls only
  itself; the consistency controller bounds how far peers run ahead.

The schedule is deterministic: results are identical run-to-run, and the
injected failures never change the iterates — each system's final
objective matches its failure-free run exactly.
"""

from repro.cluster import cluster1
from repro.data import SyntheticSpec, generate
from repro.glm import Objective
from repro.metrics import format_table, recovery_report

from _common import SYSTEMS, make_trainer

#: The five systems of the study (Petuum is represented by its fixed
#: variant; original Petuum's summation numerics are orthogonal here).
BENCH_SYSTEMS = ["MLlib", "MLlib+MA", "MLlib*", "Petuum*", "Angel"]

STEPS = 12
#: One crash early, one mid-run, one double-crash late — every system
#: sees the identical plan (executor indices are 0-based).
FAILURE_SCHEDULE = "1@3,3@7,2@10x2"


def _workload():
    dataset = generate(SyntheticSpec(n_rows=3000, n_features=300,
                                     nnz_per_row=10.0, noise=0.03, seed=23),
                       name="fault-study")
    cluster = cluster1(executors=4)
    return dataset, cluster


def _config(**overrides):
    from repro.core import TrainerConfig
    # restart_seconds is scaled to the simulation's clock (makespans are
    # tens of milliseconds here); the default 1s would drown the
    # per-pattern differences in a constant.
    base = dict(max_steps=STEPS, learning_rate=0.5, lr_schedule="inv_sqrt",
                batch_fraction=0.1, local_chunk_size=64, eval_every=4,
                seed=1, restart_seconds=0.002)
    base.update(overrides)
    return TrainerConfig(**base)


def run_fault_study():
    dataset, cluster = _workload()
    objective = Objective("hinge", "l2", 0.1)
    outcomes = {}
    for system in BENCH_SYSTEMS:
        clean = make_trainer(system, objective, cluster,
                             _config()).fit(dataset)
        faulty = make_trainer(
            system, objective, cluster,
            _config(failure_schedule=FAILURE_SCHEDULE)).fit(dataset)
        repeat = make_trainer(
            system, objective, cluster,
            _config(failure_schedule=FAILURE_SCHEDULE)).fit(dataset)
        outcomes[system] = (clean, faulty, repeat)
    return outcomes


def bench_ext_fault_recovery(benchmark):
    outcomes = benchmark.pedantic(run_fault_study, rounds=1, iterations=1)

    rows = []
    for system in BENCH_SYSTEMS:
        clean, faulty, repeat = outcomes[system]
        report = recovery_report(faulty)
        slowdown = (faulty.history.total_seconds
                    / clean.history.total_seconds)
        rows.append([system, round(clean.history.total_seconds, 3),
                     round(faulty.history.total_seconds, 3),
                     report.num_failures,
                     round(report.recovery_seconds, 3),
                     f"{report.overhead_fraction:.1%}",
                     f"{slowdown:.2f}x"])
    print()
    print(format_table(
        ["system", "clean s", "faulty s", "crashes", "recovery s",
         "overhead", "slowdown"], rows,
        title=f"Extension: recovery cost under schedule "
              f"'{FAILURE_SCHEDULE}' (4 executors)"))

    for system in BENCH_SYSTEMS:
        clean, faulty, repeat = outcomes[system]
        # Failures change the clock, never the weights.
        assert faulty.final_objective == clean.final_objective, system
        # Every system saw the same four scripted crashes...
        assert len(faulty.failures) == 4, system
        # ...and lost time recovering from them.
        assert faulty.history.total_seconds > clean.history.total_seconds
        assert faulty.recovery_seconds > 0
        # Deterministic: a second faulty run reproduces times and crashes.
        assert (repeat.history.total_seconds
                == faulty.history.total_seconds), system
        assert repeat.failures == faulty.failures, system

    # The asymmetry: AllReduce couples every peer to a lost owner, so the
    # same crash plan costs MLlib* at least as much recovery-induced wait
    # per step as driver-centric MLlib+MA (same local-SGD workload).
    star_clean, star_faulty, _ = outcomes["MLlib*"]
    ma_clean, ma_faulty, _ = outcomes["MLlib+MA"]
    star_added = (star_faulty.history.total_seconds
                  - star_clean.history.total_seconds)
    ma_added = (ma_faulty.history.total_seconds
                - ma_clean.history.total_seconds)
    assert star_added > 0 and ma_added > 0
    # MLlib* still wins the faulty comparison outright on this workload —
    # recovery does not erase the cheap-steps advantage.
    assert (star_faulty.history.total_seconds
            < ma_faulty.history.total_seconds)
