"""Extension — multi-tenant scheduling: FIFO vs fair-share vs elastic.

The ``repro.sched`` subsystem multiplexes one simulated cluster across a
queue of training jobs.  This bench sweeps a Poisson arrival trace
(``poisson_job_trace``) over arrival rate x scheduling policy on an
8-executor pool:

* **fifo** — arrival order, rigid gangs (the baseline any shared-cluster
  story starts from);
* **fair** — priority-weighted admission order, still rigid widths;
* **fair+elastic** — weighted fair shares with width changes at
  superstep barriers (jobs grow into idle executors, give slots back
  when competitors arrive);
* **fair+elastic+preempt** — additionally checkpoints a lighter tenant
  out of the way when a heavier one cannot fit (informational row, no
  acceptance bar: preemption trades goodput for priority latency).

Every variant replays the *same* trace, so differences are pure policy.
Two determinism gates run before any number is reported, mirroring the
bit-identity gates of ``bench_ext_topology``:

* the heaviest configuration is run twice and must produce a
  byte-identical schedule log (same SHA-256 digest);
* one fixed-width job from the trace is trained standalone on its own
  cluster and must match the scheduled run bit-for-bit (weights and
  per-step objectives) — the scheduler multiplexes, it never perturbs.

Acceptance bars, asserted at the heaviest (most contended) rate and
recorded in ``BENCH_sched.json``:

* fair-share (elastic) beats FIFO on p95 job-completion time at
  equal-or-better goodput;
* elastic beats the static fair policy on goodput — width adaptation
  turns idle executors into finished supersteps.

Run modes::

    # full study (writes BENCH_sched.json at the repo root)
    PYTHONPATH=src python benchmarks/bench_ext_sched.py

    # CI smoke: shorter trace, same assertions, no JSON write
    PYTHONPATH=src python benchmarks/bench_ext_sched.py --smoke

    # pytest entry (smoke-sized, no JSON write)
    PYTHONPATH=src python -m pytest benchmarks/bench_ext_sched.py \
        --benchmark-only -q -s
"""

import argparse
import json
from pathlib import Path

import numpy as np

from repro.cluster import cluster1
from repro.metrics import format_table, sched_report
from repro.sched import ClusterScheduler, SchedConfig, poisson_job_trace

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_sched.json"

POOL = 8
TRACE_SEED = 23
MAX_WIDTH = 6

#: Arrival rates (jobs/s of simulated time).  The last one is the
#: contended regime where the acceptance bars are asserted.
RATES = (80.0, 160.0, 240.0)
SMOKE_RATES = (240.0,)

DURATION = 0.25
SMOKE_DURATION = 0.12

VARIANTS = (
    ("fifo", SchedConfig(policy="fifo", total_executors=POOL)),
    ("fair", SchedConfig(policy="fair", total_executors=POOL)),
    ("fair+elastic", SchedConfig(policy="fair", elastic=True,
                                 total_executors=POOL)),
    ("fair+elastic+preempt", SchedConfig(policy="fair", elastic=True,
                                         preempt=True,
                                         total_executors=POOL)),
)


def _trace(rate: float, smoke: bool):
    return poisson_job_trace(rate=rate,
                             duration=SMOKE_DURATION if smoke else DURATION,
                             seed=TRACE_SEED, elastic=True,
                             max_width=MAX_WIDTH)


def _run(config: SchedConfig, specs):
    scheduler = ClusterScheduler(config)
    for spec in specs:
        scheduler.submit(spec)
    return scheduler.run()


def _assert_replay_is_byte_identical(config: SchedConfig, specs) -> None:
    first = _run(config, specs)
    second = _run(config, specs)
    assert first.log.digest() == second.log.digest(), (
        "same seed + arrival trace must replay to a byte-identical "
        "schedule log")
    assert first.log.text() == second.log.text()


def _assert_bit_identical_to_standalone(specs) -> None:
    """A fixed-width job through the scheduler equals its solo run."""
    spec = specs[0]
    scheduled = _run(SchedConfig(policy="fifo", total_executors=POOL),
                     specs)
    solo = spec.make_trainer(
        cluster1(executors=spec.executors, seed=0)).fit(spec.dataset())
    got = scheduled.results[spec.name]
    assert np.array_equal(got.model.weights, solo.model.weights), (
        f"{spec.name}: scheduled weights differ from standalone")
    assert got.history.objectives() == solo.history.objectives(), (
        f"{spec.name}: scheduled objectives differ from standalone")


def run_study(smoke: bool):
    rates = SMOKE_RATES if smoke else RATES
    heaviest = rates[-1]

    # Determinism gates come first: no speed/latency number is reported
    # from a scheduler that cannot replay itself.
    gate_specs = _trace(heaviest, smoke)
    _assert_replay_is_byte_identical(VARIANTS[-1][1], gate_specs)
    _assert_bit_identical_to_standalone(gate_specs)

    rows = []
    for rate in rates:
        specs = _trace(rate, smoke)
        for label, config in VARIANTS:
            result = _run(config, specs)
            report = sched_report(result)
            rows.append({
                "rate": rate,
                "policy": label,
                "jobs": report.jobs,
                "finished": report.finished,
                "preemptions": report.preemptions,
                "resizes": report.resizes,
                "makespan": report.makespan,
                "goodput": report.goodput,
                "utilization": report.utilization,
                "mean_queue_wait": report.mean_queue_wait,
                "jct_p50": report.jct_p50,
                "jct_p95": report.jct_p95,
                "log_digest": result.log.digest(),
            })
    return rows


def _cell(rows, rate, policy):
    for row in rows:
        if row["rate"] == rate and row["policy"] == policy:
            return row
    raise KeyError((rate, policy))


def report_and_check(rows, smoke: bool) -> None:
    table = [[f"{r['rate']:.0f}/s", r["policy"], r["jobs"],
              f"{r['goodput']:.1f}", f"{r['utilization']:.3f}",
              f"{r['jct_p50']:.4f}", f"{r['jct_p95']:.4f}",
              f"{r['mean_queue_wait']:.4f}", r["preemptions"],
              r["resizes"]]
             for r in rows]
    print(format_table(
        ["rate", "policy", "jobs", "goodput", "util", "p50 JCT",
         "p95 JCT", "mean wait", "preempt", "resize"],
        table,
        title=f"scheduling policies on an {POOL}-executor pool "
              "(simulated seconds; every variant replays the same trace)"))
    print()

    # All variants complete the whole trace — policy changes who waits,
    # never who finishes.
    for row in rows:
        assert row["finished"] == row["jobs"], row

    heaviest = max(r["rate"] for r in rows)
    fifo = _cell(rows, heaviest, "fifo")
    fair = _cell(rows, heaviest, "fair")
    elastic = _cell(rows, heaviest, "fair+elastic")

    # Bar 1: fair-share scheduling beats FIFO on tail latency without
    # giving up throughput.
    assert elastic["jct_p95"] < fifo["jct_p95"], (
        "fair-share must beat FIFO on p95 JCT at the contended rate",
        elastic, fifo)
    assert elastic["goodput"] >= fifo["goodput"], (
        "the p95 win must not cost goodput", elastic, fifo)

    # Bar 2: elasticity converts idle executors into goodput.
    assert elastic["goodput"] > fair["goodput"], (
        "elastic width adaptation must beat the static fair policy on "
        "goodput", elastic, fair)


def _payload(rows, smoke: bool):
    return {
        "bench": "sched",
        "workload": {
            "generator": "poisson_job_trace",
            "trace_seed": TRACE_SEED,
            "duration": SMOKE_DURATION if smoke else DURATION,
            "rates": list(SMOKE_RATES if smoke else RATES),
            "total_executors": POOL,
            "max_width": MAX_WIDTH,
            "smoke": smoke,
        },
        "gates": {
            "replay_byte_identical": True,
            "fixed_width_bit_identical_to_standalone": True,
        },
        "runs": rows,
    }


def bench_ext_sched(benchmark):
    """Pytest entry: smoke-sized, asserts the bars, never writes JSON."""
    rows = benchmark.pedantic(lambda: run_study(smoke=True),
                              rounds=1, iterations=1)
    print()
    report_and_check(rows, smoke=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="shorter trace, same assertions, no "
                             "BENCH_sched.json write")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="override the JSON output path")
    args = parser.parse_args()

    rows = run_study(smoke=args.smoke)
    report_and_check(rows, smoke=args.smoke)
    if args.smoke and args.out is None:
        print("smoke mode: all assertions passed; no JSON written")
        return 0
    out = Path(args.out) if args.out else BENCH_PATH
    out.write_text(json.dumps(_payload(rows, args.smoke), indent=2,
                              sort_keys=True) + "\n", encoding="ascii")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
