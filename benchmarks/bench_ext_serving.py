"""Extension — serving SLOs: micro-batching throughput and bounded p99.

The paper stops at training; this bench measures the deployment half the
ROADMAP asks for.  An open-loop Poisson load generator sweeps arrival
rate against a :class:`repro.serve.PredictionService` holding a real
trained model, and the bench asserts the two properties that make
micro-batching + admission control worth shipping:

1. **throughput** — dynamic micro-batching amortizes the per-dispatch
   overhead: sustained QPS at overload is >= 5x the single-request
   (``max_batch=1``) configuration on the same worker pool;
2. **backpressure** — past saturation the *bounded* admission queue
   sheds load instead of queueing it, so p99 latency stays below an
   analytic bound (queue drain time + deadline) while the shed rate,
   not the latency, absorbs the overload.

Everything is simulated-clock deterministic: the sweep reproduces
bit-identically run to run, and the results land in
``BENCH_serving.json`` at the repo root (the first entry of the repo's
bench trajectory).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cluster import cluster1
from repro.core import TrainerConfig
from repro.data import SyntheticSpec, generate
from repro.glm import Objective
from repro.metrics import format_table
from repro.serve import ServeConfig, ServingCostModel, rate_sweep

from _common import make_trainer

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

#: Load multiples of the batched pool's saturation throughput.
MULTIPLIERS = (0.25, 0.5, 1.0, 1.5, 2.0)
DURATION = 0.1  # simulated seconds of load per swept rate


def _trained_model():
    dataset = generate(SyntheticSpec(n_rows=3000, n_features=300,
                                     nnz_per_row=10.0, noise=0.03, seed=23),
                       name="serving-study")
    cluster = cluster1(executors=4)
    config = TrainerConfig(max_steps=6, learning_rate=0.5,
                           lr_schedule="inv_sqrt", local_chunk_size=64,
                           eval_every=3, seed=1)
    result = make_trainer("MLlib*", Objective("hinge", "l2", 0.1),
                          cluster, config).fit(dataset)
    return result.model, dataset


def _p99_bound(config: ServeConfig, cost: ServingCostModel,
               nnz_per_row: float) -> float:
    """Worst-case drain time of a full admission queue, plus deadline.

    With the queue capped at ``queue_limit`` a request admitted last
    waits at most the time the pool needs to drain the queue ahead of
    it, plus its own batch's deadline and service — if p99 exceeds
    this, latency is growing with offered load (unbounded queueing),
    which is exactly what shedding is supposed to prevent.
    """
    batch_time = cost.batch_seconds(
        config.max_batch, round(config.max_batch * nnz_per_row))
    batches_ahead = config.queue_limit / (config.workers * config.max_batch)
    return (batches_ahead + 1.0) * batch_time + config.max_delay


def run_serving_study():
    model, dataset = _trained_model()
    cost = ServingCostModel()
    nnz_per_row = dataset.nnz / dataset.n_rows

    batched = ServeConfig(max_batch=32, max_delay=1.0e-3, queue_limit=128,
                          workers=2, seed=11)
    single = batched.with_overrides(max_batch=1)

    sat_batched = cost.saturation_qps(batched.workers, batched.max_batch,
                                      nnz_per_row)
    sat_single = cost.saturation_qps(single.workers, 1, nnz_per_row)

    sweep = rate_sweep(model, dataset, batched,
                       [round(sat_batched * m) for m in MULTIPLIERS],
                       DURATION, cost=cost)
    # the single-request baseline, pushed to 2x its own (much lower)
    # saturation so it reports its best sustainable throughput
    single_row = rate_sweep(model, dataset, single,
                            [round(sat_single * 2)], DURATION,
                            cost=cost)[0]
    return {
        "model_dim": model.dim,
        "dataset": dataset.name,
        "nnz_per_row": nnz_per_row,
        "saturation_qps": {"batched": sat_batched, "single": sat_single},
        "p99_bound": _p99_bound(batched, cost, nnz_per_row),
        "config": {"max_batch": batched.max_batch,
                   "max_delay": batched.max_delay,
                   "queue_limit": batched.queue_limit,
                   "workers": batched.workers, "seed": batched.seed,
                   "duration": DURATION,
                   "multipliers": list(MULTIPLIERS)},
        "single": single_row,
        "sweep": sweep,
    }


def bench_ext_serving(benchmark):
    study = benchmark.pedantic(run_serving_study, rounds=1, iterations=1)
    sweep, single = study["sweep"], study["single"]

    rows = [[r["rate"], r["offered"], r["completed"],
             f"{r['shed_rate']:.1%}", round(r["qps"]),
             round(r["mean_batch"], 2),
             round(r["latency"]["p50"], 6), round(r["latency"]["p99"], 6)]
            for r in sweep]
    rows.append([single["rate"], single["offered"], single["completed"],
                 f"{single['shed_rate']:.1%}", round(single["qps"]),
                 round(single["mean_batch"], 2),
                 round(single["latency"]["p50"], 6),
                 round(single["latency"]["p99"], 6)])
    print()
    print(format_table(
        ["rate req/s", "offered", "completed", "shed", "qps",
         "mean batch", "p50 s", "p99 s"], rows,
        title="Extension: open-loop serving sweep (last row = "
              "max_batch=1 baseline)"))
    gain = sweep[-1]["qps"] / single["qps"]
    print(f"micro-batching throughput gain at overload: {gain:.1f}x")

    # -- throughput: batching amortizes the per-dispatch overhead -------
    assert gain >= 5.0, gain

    # -- backpressure: at 2x saturation the queue sheds, p99 holds ------
    overload = sweep[-1]
    assert overload["rate"] >= 1.99 * study["saturation_qps"]["batched"]
    assert overload["shed_rate"] > 0.2, overload["shed_rate"]
    assert overload["latency"]["p99"] <= study["p99_bound"], overload
    assert overload["max_queue_depth"] <= 128

    # shed rate grows with offered load; completed throughput plateaus
    shed_rates = [r["shed_rate"] for r in sweep]
    assert shed_rates == sorted(shed_rates)
    assert sweep[-1]["qps"] <= 1.05 * sweep[-2]["qps"]

    # below saturation the service keeps up: nothing (or almost
    # nothing) sheds at half load
    assert sweep[0]["shed_rate"] == 0.0
    assert sweep[1]["shed_rate"] < 0.01

    # determinism: the sweep is bit-identical run to run
    assert rate_sweep(*_sweep_args(study)) == sweep

    BENCH_PATH.write_text(json.dumps(study, indent=2, sort_keys=True)
                          + "\n", encoding="ascii")
    print(f"wrote {BENCH_PATH}")


def _sweep_args(study):
    model, dataset = _trained_model()
    cfg = study["config"]
    batched = ServeConfig(max_batch=cfg["max_batch"],
                          max_delay=cfg["max_delay"],
                          queue_limit=cfg["queue_limit"],
                          workers=cfg["workers"], seed=cfg["seed"])
    rates = [r["rate"] for r in study["sweep"]]
    return (model, dataset, batched, rates, cfg["duration"],
            ServingCostModel())
