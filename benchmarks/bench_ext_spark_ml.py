"""Extension — does the MLlib* treatment speed up spark.ml? (paper §VII)

The paper's conclusion leaves as future work "whether the techniques we
have developed for speeding up MLlib could also be used for improving
spark.ml", Spark's L-BFGS-based second-generation library.  This bench
answers it within the reproduction: it runs driver-centric spark.ml and
the AllReduce variant (spark.ml*) on a large-model workload and compares
clocks at identical iterates.

Expected shape: identical convergence curves per iteration (the math is
unchanged) with a materially shorter simulated clock for spark.ml*, and
the advantage grows with the model size — the same structure as the
MLlib-vs-MLlib* result, transplanted to a second-order method.
"""

import numpy as np

from repro.cluster import cluster1
from repro.core import SparkMlStarTrainer, SparkMlTrainer, TrainerConfig
from repro.data import kddb_like
from repro.glm import Objective
from repro.metrics import format_table

STEPS = 8


def run_pair():
    dataset = kddb_like()  # d = 30,000: large-model regime
    objective = Objective("logistic", "l2", 0.01)
    cfg = TrainerConfig(max_steps=STEPS, seed=1)
    results = {}
    for cls in (SparkMlTrainer, SparkMlStarTrainer):
        trainer = cls(objective, cluster1(executors=8), cfg)
        results[trainer.system] = trainer.fit(dataset)
    return results


def bench_ext_spark_ml(benchmark):
    results = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    ml, star = results["spark.ml"], results["spark.ml*"]

    rows = []
    for system, result in results.items():
        rows.append([system, result.history.total_steps,
                     round(result.history.total_seconds, 3),
                     round(result.final_objective, 5)])
    rows.append(["spark.ml / spark.ml* time",
                 "", round(ml.history.total_seconds
                           / star.history.total_seconds, 2), ""])
    print()
    print(format_table(
        ["system", "iterations", "sim seconds", "final objective"], rows,
        title="Extension (paper SS VII): L-BFGS with and without AllReduce "
              "(kddb analog)"))

    # Identical math...
    assert np.allclose(ml.model.weights, star.model.weights)
    assert ml.history.objectives() == star.history.objectives()
    # ...and L-BFGS actually optimizes...
    assert ml.final_objective < 0.9 * ml.history.objectives()[0]
    # ...with a materially faster clock for the AllReduce variant.
    assert star.history.total_seconds < 0.6 * ml.history.total_seconds
