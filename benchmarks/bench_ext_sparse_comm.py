"""Extension — sparse AllReduce: the dense/sparse wire crossover.

The paper prices AllReduce traffic densely (``2 k m`` values per
superstep), but its target datasets are ~0.01% dense.  This bench sweeps
per-row density on an MLlib* workload and runs the three ``sparse_comm``
modes side by side:

* ``off``  — the paper's dense pricing (baseline);
* ``on``   — forced index/value encoding, even past the break-even point;
* ``auto`` — SparCML's per-message rule (sparse iff ``2 nnz < m``).

Three facts the sweep must reproduce:

1. numerics are mode-invariant — every mode reaches the *same* final
   objective bit for bit (sparsity changes cost, never math);
2. at 1% density ``auto`` cuts priced communication seconds per superstep
   by >= 5x, and it never loses to dense at any density;
3. forced-``on`` crosses over: cheaper than dense at low density, up to
   ~2x *more* expensive when the union support saturates the model.

Results are written to ``BENCH_sparse_comm.json`` at the repo root.
"""

import json
from pathlib import Path

from repro.cluster import GIGABIT, ClusterSpec, NetworkModel, homogeneous_nodes
from repro.core import MLlibStarTrainer, TrainerConfig
from repro.data import SyntheticSpec, generate
from repro.glm import Objective
from repro.metrics import comm_report, format_table

BENCH_PATH = (Path(__file__).resolve().parent.parent
              / "BENCH_sparse_comm.json")

#: Fraction of the model each example touches.  Local SGD visits every
#: partition row per superstep, so the wire's union support is roughly
#: ``1 - (1 - density)^n_rows`` of the model — the sweep brackets the
#: SparCML break-even point (union density 0.5) from both sides.
DENSITIES = [0.01, 0.05, 0.10, 0.25, 0.45, 0.70]
MODES = ["off", "auto", "on"]

N_FEATURES = 20_000
N_ROWS = 8
EXECUTORS = 4
STEPS = 3


def _cluster() -> ClusterSpec:
    """Bandwidth-dominated network: per-message latency is negligible, so
    the priced seconds track wire volume (the regime sparsity targets)."""
    return ClusterSpec(
        nodes=homogeneous_nodes(EXECUTORS + 1, speed=1.0, cores=16,
                                memory_gb=24.0),
        network=NetworkModel(bandwidth=GIGABIT, alpha=1.0e-5))


def _run(density: float, mode: str):
    dataset = generate(
        SyntheticSpec(n_rows=N_ROWS, n_features=N_FEATURES,
                      nnz_per_row=density * N_FEATURES, noise=0.02,
                      feature_skew=0.0, seed=29),
        name=f"density-{density:g}")
    config = TrainerConfig(max_steps=STEPS, learning_rate=0.5,
                           lr_schedule="inv_sqrt", local_chunk_size=2,
                           seed=5, sparse_comm=mode)
    trainer = MLlibStarTrainer(Objective("hinge", "l2", 0.1), _cluster(),
                               config)
    return trainer.fit(dataset)


def run_density_sweep():
    return {density: {mode: _run(density, mode) for mode in MODES}
            for density in DENSITIES}


def bench_ext_sparse_comm(benchmark):
    sweep = benchmark.pedantic(run_density_sweep, rounds=1, iterations=1)

    study = {
        "workload": {
            "system": "MLlib*",
            "n_rows": N_ROWS,
            "n_features": N_FEATURES,
            "executors": EXECUTORS,
            "supersteps": STEPS,
            "network_alpha_seconds": 1.0e-5,
        },
        "densities": {},
    }
    rows = []
    for density in DENSITIES:
        results = sweep[density]
        reports = {mode: comm_report(results[mode]) for mode in MODES}
        dense_seconds = reports["off"].comm_seconds
        entry = {}
        for mode in MODES:
            report = reports[mode]
            entry[mode] = {
                "comm_seconds": report.comm_seconds,
                "wire_values": report.wire_values,
                "dense_values": report.dense_values,
                "compression": report.compression,
                "speedup_vs_dense": dense_seconds / report.comm_seconds,
            }
        study["densities"][f"{density:g}"] = entry
        rows.append([
            f"{density:.0%}",
            round(dense_seconds * 1e3, 3),
            round(reports["auto"].comm_seconds * 1e3, 3),
            round(reports["on"].comm_seconds * 1e3, 3),
            f"{entry['auto']['speedup_vs_dense']:.2f}x",
            f"{entry['on']['speedup_vs_dense']:.2f}x",
            f"{reports['auto'].compression:.1f}x",
        ])
    print()
    print(format_table(
        ["density", "dense ms", "auto ms", "forced-on ms", "auto speedup",
         "on speedup", "auto compression"], rows,
        title=f"Extension: sparse AllReduce crossover (MLlib*, "
              f"m={N_FEATURES}, {EXECUTORS} executors, {STEPS} supersteps)"))

    # 1. Numerics are mode-invariant at every density.
    for density in DENSITIES:
        results = sweep[density]
        assert (results["auto"].final_objective
                == results["off"].final_objective), density
        assert (results["on"].final_objective
                == results["off"].final_objective), density

    # 2. The acceptance bar: >= 5x per superstep at 1% density ...
    auto_low = sweep[0.01]["auto"]
    for step in sorted({r.step for r in auto_low.comm}):
        wire = sum(r.seconds for r in auto_low.comm if r.step == step)
        dense = sum(r.dense_seconds for r in auto_low.comm
                    if r.step == step)
        assert dense / wire >= 5.0, f"step {step}: {dense / wire:.2f}x"
    # ... and auto never loses to dense anywhere on the sweep.
    for density in DENSITIES:
        entry = study["densities"][f"{density:g}"]
        assert entry["auto"]["speedup_vs_dense"] >= 1.0 - 1e-12, density
        assert entry["auto"]["compression"] >= 1.0, density

    # 3. Forced-on crosses over: a clear win at 1%, a clear loss once the
    # union support saturates the model (every pair costs ~2x dense).
    assert study["densities"]["0.01"]["on"]["speedup_vs_dense"] > 3.0
    assert study["densities"]["0.7"]["on"]["speedup_vs_dense"] < 0.75
    # At saturation auto has fallen back to dense pricing entirely.
    top = study["densities"]["0.7"]["auto"]
    assert top["wire_values"] == top["dense_values"]

    BENCH_PATH.write_text(json.dumps(study, indent=2, sort_keys=True)
                          + "\n")
    print(f"wrote {BENCH_PATH}")
