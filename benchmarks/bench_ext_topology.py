"""Extension — the aggregation ladder: flat vs hierarchical vs in-network.

MLlib* exchanges its model with Reduce-Scatter + AllGather over a *flat*
ring of executors.  This bench climbs the two extra rungs added by the
topology collectives PR, on tiered clusters (``tiered_cluster``: a 1 Gbps
cross-node fabric, a ~100 Gbps shared-memory intra-node tier, and a block
executor->machine placement map):

* **hier** — Snap ML-style two-tier AllReduce: executors sharing a
  machine combine over the intra tier first, then only the machine
  leaders exchange slices over the slow fabric;
* **switch** — SwitchML-style in-network aggregation: a switch "node"
  combines dense chunks at line rate through a bounded slot pool, so the
  whole exchange costs one line-rate stream per executor (plus extra
  per-round latencies when the pool is starved).

Every mode reuses the flat combine kernels verbatim, so the *numerics*
never change — only the pricing does.  As in ``perf.harness``, the
bit-identity of every run against its ``--collective flat`` twin
(weights, per-step objectives) is asserted *before* any speedup is
reported: a topology that changed the model is a bug, not a win.

The sweep is executor count x payload density:

* shapes: 2x2, 2x4, 4x4 machines x executors/machine (4..16 executors);
* density: a dense WX-style analog (``--sparse-comm off``: every message
  at full model size) and a sparse analog (``--sparse-comm auto``: local
  supports on the wire, the in-network switch deterministically falling
  back to host aggregation when sparse is strictly cheaper).

Acceptance bars, asserted below and recorded in ``BENCH_topology.json``:
hier beats flat at >= 8 executors on the dense analog; switch beats both
at the largest shape when its slot pool suffices; a slot-starved switch
(``--switch-slots 1``) is slower than the roomy one and than flat.

Run modes::

    # full study (writes BENCH_topology.json at the repo root)
    PYTHONPATH=src python benchmarks/bench_ext_topology.py

    # CI smoke: small model, same sweep and assertions, no JSON write
    PYTHONPATH=src python benchmarks/bench_ext_topology.py --smoke

    # pytest entry (smoke-sized, no JSON write)
    PYTHONPATH=src python -m pytest benchmarks/bench_ext_topology.py \
        --benchmark-only -q -s
"""

import argparse
import json
from pathlib import Path

import numpy as np

from repro.cluster import tiered_cluster
from repro.core import MLlibStarTrainer, TrainerConfig
from repro.data import SyntheticSpec, generate
from repro.glm import Objective
from repro.metrics import format_table

BENCH_PATH = (Path(__file__).resolve().parent.parent
              / "BENCH_topology.json")

STEPS = 5

#: machines x executors/machine; 4, 8 and 16 executors.
SHAPES = ((2, 2), (2, 4), (4, 4))

#: The slot-starved switch variant (largest shape, dense payloads only):
#: one slot forces one switch round per chunk, so the stream pays a full
#: per-round latency ~157 times instead of once.
STARVED_SLOTS = 1

#: Executor count from which the two-tier schedule must pay off.
HIER_BAR_EXECUTORS = 8


def _dataset(density: str, smoke: bool):
    """Dense/sparse analogs of the paper's WX workload, bench-sized.

    The model is wide (40k features full, 4k smoke) so alpha + bandwidth
    dominate the priced phases; rows are few so the local solves stay
    cheap.  ``dense`` ships full-size messages (``sparse_comm=off``);
    ``sparse`` keeps per-partition supports small (``sparse_comm=auto``).
    """
    features = 4000 if smoke else 40000
    rows = 400 if smoke else 1600
    nnz = 4.0 if density == "sparse" else (32.0 if smoke else 64.0)
    spec = SyntheticSpec(n_rows=rows, n_features=features,
                         nnz_per_row=nnz, noise=0.02, seed=11)
    return generate(spec, name=f"topology-{density}")


def _run(dataset, machines: int, executors_per_machine: int, mode: str,
         collective: str, switch_slots: int = 512):
    config = TrainerConfig(max_steps=STEPS, learning_rate=0.5,
                           lr_schedule="inv_sqrt", local_chunk_size=64,
                           seed=1, sparse_comm=mode, collective=collective,
                           switch_slots=switch_slots)
    trainer = MLlibStarTrainer(
        Objective("hinge"),
        tiered_cluster(machines=machines,
                       executors_per_machine=executors_per_machine),
        config)
    return trainer.fit(dataset)


def _assert_bit_identical(flat, result, label: str) -> None:
    """The gate in front of every reported speedup (cf. perf.harness)."""
    assert np.array_equal(result.model.weights, flat.model.weights), (
        f"{label}: weights differ from --collective flat")
    flat_points = flat.history.points
    points = result.history.points
    assert len(points) == len(flat_points), label
    for a, b in zip(flat_points, points):
        assert b.objective == a.objective, (
            f"{label}: objective diverged from flat at step {a.step}")


def run_study(smoke: bool):
    rows = []
    for density in ("dense", "sparse"):
        dataset = _dataset(density, smoke)
        mode = "off" if density == "dense" else "auto"
        for machines, per_machine in SHAPES:
            executors = machines * per_machine
            variants = [("flat", 512), ("hier", 512), ("switch", 512)]
            if density == "dense" and (machines, per_machine) == SHAPES[-1]:
                variants.append(("switch-starved", STARVED_SLOTS))
            flat = None
            for collective, slots in variants:
                result = _run(dataset, machines, per_machine, mode,
                              collective.split("-")[0], switch_slots=slots)
                label = f"{density}/k={executors}/{collective}"
                if collective == "flat":
                    flat = result
                else:
                    assert flat is not None
                    _assert_bit_identical(flat, result, label)
                rows.append({
                    "density": density,
                    "sparse_comm": mode,
                    "machines": machines,
                    "executors_per_machine": per_machine,
                    "executors": executors,
                    "collective": collective,
                    "switch_slots": (slots if collective.startswith(
                        "switch") else None),
                    "comm_seconds": result.comm_seconds,
                    "total_seconds": result.history.points[-1].seconds,
                    "final_objective": result.final_objective,
                    "comm_speedup_vs_flat": (
                        flat.comm_seconds / result.comm_seconds),
                    "bit_identical_to_flat": True,
                })
    return rows


def _cell(rows, density, executors, collective):
    for row in rows:
        if (row["density"] == density and row["executors"] == executors
                and row["collective"] == collective):
            return row
    raise KeyError((density, executors, collective))


def report_and_check(rows, smoke: bool) -> None:
    for density in ("dense", "sparse"):
        table = [[f"{r['machines']}x{r['executors_per_machine']}",
                  r["collective"], f"{r['comm_seconds']:.5f}",
                  f"{r['total_seconds']:.4f}",
                  f"{r['comm_speedup_vs_flat']:.2f}x"]
                 for r in rows if r["density"] == density]
        print(format_table(
            ["shape", "collective", "comm s", "total s", "vs flat"],
            table,
            title=f"MLlib* on the {density} analog "
                  "(simulated seconds; numerics bit-identical to flat)"))
        print()

    # Bit-identity was asserted per run inside run_study; these are the
    # speed bars from the PR's acceptance criteria.
    largest = SHAPES[-1][0] * SHAPES[-1][1]
    for machines, per_machine in SHAPES:
        executors = machines * per_machine
        if executors < HIER_BAR_EXECUTORS:
            continue
        flat = _cell(rows, "dense", executors, "flat")
        hier = _cell(rows, "dense", executors, "hier")
        assert hier["comm_seconds"] < flat["comm_seconds"], (
            f"hier must beat flat at {executors} executors", hier, flat)
    flat = _cell(rows, "dense", largest, "flat")
    hier = _cell(rows, "dense", largest, "hier")
    switch = _cell(rows, "dense", largest, "switch")
    starved = _cell(rows, "dense", largest, "switch-starved")
    assert switch["comm_seconds"] < hier["comm_seconds"], (switch, hier)
    assert switch["comm_seconds"] < flat["comm_seconds"], (switch, flat)
    assert starved["comm_seconds"] > switch["comm_seconds"], (
        "a starved slot pool must stall the stream", starved, switch)
    assert starved["comm_seconds"] > flat["comm_seconds"], (starved, flat)


def _payload(rows, smoke: bool):
    return {
        "bench": "topology",
        "workload": {
            "system": "MLlib*",
            "supersteps": STEPS,
            "shapes": [list(s) for s in SHAPES],
            "densities": ["dense", "sparse"],
            "starved_slots": STARVED_SLOTS,
            "smoke": smoke,
        },
        "runs": rows,
    }


def bench_ext_topology(benchmark):
    """Pytest entry: smoke-sized, asserts the bars, never writes JSON."""
    rows = benchmark.pedantic(lambda: run_study(smoke=True),
                              rounds=1, iterations=1)
    print()
    report_and_check(rows, smoke=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small model, same sweep and assertions, no "
                             "BENCH_topology.json write")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="override the JSON output path")
    args = parser.parse_args()

    rows = run_study(smoke=args.smoke)
    report_and_check(rows, smoke=args.smoke)
    if args.smoke and args.out is None:
        print("smoke mode: all assertions passed; no JSON written")
        return 0
    out = Path(args.out) if args.out else BENCH_PATH
    out.write_text(json.dumps(_payload(rows, smoke=args.smoke),
                              indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
