"""Extension — the wall-clock fast path: kernels + execution backends.

The repo's benches report *simulated* seconds; this one reports *real*
ones.  Two layers of the PR are measured, each against a retained
"before" implementation, and bit-identity is asserted before any speedup
is reported (a measurement that changed the numerics is a bug):

* **kernels** — the local-solver hot loops (:mod:`repro.glm.kernels`)
  vs the pre-optimization reference bodies (:mod:`repro.glm.reference`),
  timed per dispatch branch;
* **backends** — MLlib* end-to-end on the Figure 6 WX analog workload
  (8 heterogeneous machines), run serial-with-reference-kernels (the
  pre-PR code), then serial / threads / processes on the fast kernels.

The acceptance bar, asserted below and recorded in
``BENCH_wallclock.json``: the ``processes`` backend beats the
serial+reference baseline by >= 2x end-to-end, and every run's
convergence history is point-for-point identical.

On a single-core container ``processes`` cannot beat ``serial`` via
parallelism — the pool only pays its overhead — so the end-to-end bar is
against the reference baseline (where the kernel pass dominates); on
multi-core hosts the fan-out stacks on top.

Run modes::

    # full study (writes BENCH_wallclock.json at the repo root)
    PYTHONPATH=src python benchmarks/bench_ext_wallclock.py

    # CI smoke: small workload, same assertions, no JSON write
    PYTHONPATH=src python benchmarks/bench_ext_wallclock.py --smoke

    # pytest entry (smoke-sized, no JSON write)
    PYTHONPATH=src python -m pytest benchmarks/bench_ext_wallclock.py \
        --benchmark-only -q -s
"""

import argparse
import json
from pathlib import Path

from repro.cluster import ComputeCostModel, cluster2
from repro.core import MLlibStarTrainer, TrainerConfig
from repro.data import SyntheticSpec, generate, wx_like
from repro.glm import Objective
from repro.metrics import format_table
from repro.perf.harness import backend_sweep, kernel_benchmarks

BENCH_PATH = (Path(__file__).resolve().parent.parent
              / "BENCH_wallclock.json")

#: Same compute scaling as the Figure 6 bench — irrelevant to wall-clock
#: speed, but it keeps the committed workload identical to fig6's.
WX_COMPUTE = ComputeCostModel(sec_per_nnz=1.0e-6)
EXECUTORS = 8
STEPS = 6

#: End-to-end wall-clock bar: processes (fast kernels) vs the
#: serial+reference baseline on the full workload.
FULL_SPEEDUP_BAR = 2.0


def _make_trainer_factory(dataset_rows: int | None):
    """Trainer factory for the sweep; ``None`` rows = the full WX analog."""
    if dataset_rows is None:
        dataset = wx_like()
        executors, steps = EXECUTORS, STEPS
    else:
        # Big enough that the kernel savings dwarf the one-time process
        # pool startup, small enough for a CI smoke lane.
        dataset = generate(
            SyntheticSpec(n_rows=dataset_rows, n_features=20000,
                          nnz_per_row=12.0, noise=0.02, seed=17),
            name="wallclock-smoke")
        executors, steps = 4, 3

    def make_trainer(backend: str):
        config = TrainerConfig(max_steps=steps, learning_rate=0.5,
                               lr_schedule="inv_sqrt", local_chunk_size=64,
                               seed=1, backend=backend)
        return MLlibStarTrainer(
            Objective("hinge"),
            cluster2(machines=executors, seed=7, compute=WX_COMPUTE),
            config)

    return make_trainer, dataset, executors


def run_study(smoke: bool):
    if smoke:
        kernels = kernel_benchmarks(rows=500, features=12000, repeats=2)
        make_trainer, dataset, executors = _make_trainer_factory(30000)
        repeats = 1
    else:
        kernels = kernel_benchmarks(repeats=3)
        make_trainer, dataset, executors = _make_trainer_factory(None)
        repeats = 2
    backends = backend_sweep(make_trainer, dataset, repeats=repeats)
    return kernels, backends, dataset.name, executors


def report_and_check(kernels, backends, dataset_name, executors,
                     smoke: bool):
    print(format_table(
        ["kernel", "reference s", "fast s", "speedup"],
        [[e["kernel"], f"{e['reference_seconds']:.4f}",
          f"{e['fast_seconds']:.4f}", f"{e['speedup']:.2f}x"]
         for e in kernels],
        title="local-solver kernels: reference vs fast (bit-identical)"))
    print()
    print(format_table(
        ["backend", "wall s", "speedup vs serial+reference"],
        [[name, f"{backends['seconds'][name]:.3f}",
          f"{backends['speedup_vs_baseline'][name]:.2f}x"]
         for name in backends["seconds"]],
        title=f"MLlib* end-to-end on {dataset_name} "
              f"({executors} executors; histories bit-identical)"))

    # The harness already asserted bit-identity; these are the speed bars.
    speedups = backends["speedup_vs_baseline"]
    assert backends["baseline"] == "serial+reference"
    # The kernel pass must pay for itself on the epoch solvers' lazy path
    # (the WX regime the optimization targets).
    lazy = {e["kernel"]: e["speedup"] for e in kernels}
    assert lazy["sgd_lazy_l2"] > 1.0, lazy
    # processes must beat the pre-PR code end-to-end — on the full
    # workload by the 2x acceptance bar, on the smoke workload by any
    # margin (the workload is small, the pool overhead is not).
    bar = 1.0 if smoke else FULL_SPEEDUP_BAR
    assert speedups["processes"] >= bar, speedups
    assert speedups["serial"] >= bar, speedups


def _payload(kernels, backends, dataset_name, executors):
    return {
        "bench": "wallclock",
        "workload": {
            "system": "MLlib*",
            "dataset": dataset_name,
            "executors": executors,
            "supersteps": STEPS,
            "backends_baseline": backends["baseline"],
        },
        "kernels": kernels,
        "backends": backends,
    }


def bench_ext_wallclock(benchmark):
    """Pytest entry: smoke-sized, asserts the bars, never writes JSON."""
    kernels, backends, name, executors = benchmark.pedantic(
        lambda: run_study(smoke=True), rounds=1, iterations=1)
    print()
    report_and_check(kernels, backends, name, executors, smoke=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small workload, same assertions, no "
                             "BENCH_wallclock.json write")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="override the JSON output path")
    args = parser.parse_args()

    kernels, backends, name, executors = run_study(smoke=args.smoke)
    report_and_check(kernels, backends, name, executors, smoke=args.smoke)
    if args.smoke and args.out is None:
        print("smoke mode: all assertions passed; no JSON written")
        return 0
    out = Path(args.out) if args.out else BENCH_PATH
    out.write_text(json.dumps(_payload(kernels, backends, name, executors),
                              indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
