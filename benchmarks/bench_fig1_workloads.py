"""Figure 1 — ML workload shares on the Tencent Machine Learning Platform.

Figure 1 is survey data from Tencent's internal platform, not a measurable
experiment; no reproduction can re-measure it.  We reproduce it as the
reported constants (the paper's motivating statistic: only 3% of ML
workloads use MLlib even though >80% of data prep runs on Spark) so the
harness covers every figure, and we verify the percentages are a
consistent distribution.
"""

from repro.metrics import format_table

#: Shares as reported in Figure 1 of the paper.
WORKLOAD_SHARES = {
    "Angel": 51.0,
    "XGBoost": 24.0,
    "TensorFlow": 22.0,
    "MLlib": 3.0,
}


def build_table() -> str:
    rows = [[name, f"{share:.0f}%"]
            for name, share in WORKLOAD_SHARES.items()]
    return format_table(
        ["system", "share of ML workloads"], rows,
        title="Figure 1: Tencent ML platform workloads (reported data)")


def bench_fig1(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    print()
    print(table)
    print("Note: survey constants from the paper; the motivating fact is "
          "MLlib's 3% share despite Spark's dominance in data prep.")

    assert sum(WORKLOAD_SHARES.values()) == 100.0
    assert WORKLOAD_SHARES["MLlib"] == min(WORKLOAD_SHARES.values())
