"""Figure 3 — gantt charts: MLlib vs MLlib + model averaging vs MLlib*.

The paper trains an SVM on kdd12 with 8 executors and shows per-node
activity over time.  The charts demonstrate:

* (a) MLlib — driver and intermediate aggregators busy while executors
  wait (bottlenecks B1 + B2);
* (b) MLlib + model averaging — same communication pattern, similar chart;
* (c) MLlib* — executors busy nearly all the time, driver idle.

This bench renders the same three charts in ASCII and prints the busy/wait
fractions that quantify them.
"""

from repro.cluster import cluster1
from repro.core import (MLlibModelAveragingTrainer, MLlibStarTrainer,
                        MLlibTrainer, TrainerConfig)
from repro.data import kdd12_like
from repro.glm import Objective
from repro.metrics import format_table, render_ascii, summarize

STEPS = 5


def run_all():
    dataset = kdd12_like()
    objective = Objective("hinge")
    cluster = cluster1(executors=8)
    results = {}
    cfg = TrainerConfig(max_steps=STEPS, learning_rate=0.5,
                        lr_schedule="inv_sqrt", local_chunk_size=64,
                        batch_fraction=0.01, seed=1)
    for cls in (MLlibTrainer, MLlibModelAveragingTrainer, MLlibStarTrainer):
        trainer = cls(objective, cluster1(executors=8), cfg)
        results[trainer.system] = trainer.fit(dataset)
    return results


def bench_fig3(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for system, result in results.items():
        s = summarize(result.trace)
        rows.append([system, f"{s.makespan:.2f}s",
                     f"{s.driver_busy_fraction:.0%}",
                     f"{s.executor_busy_fraction:.0%}",
                     f"{s.executor_wait_fraction:.0%}"])
        print(f"\n--- Figure 3 gantt: {system} "
              f"({STEPS} communication steps, kdd12 analog) ---")
        print(render_ascii(result.trace, width=96))
    print()
    print(format_table(
        ["system", "makespan", "driver busy", "executors busy",
         "executors waiting"], rows,
        title="Figure 3 summary: node activity fractions"))

    mllib = summarize(results["MLlib"].trace)
    ma = summarize(results["MLlib+MA"].trace)
    star = summarize(results["MLlib*"].trace)

    # (a)/(b): the driver works and executors wait in both MLlib variants.
    assert mllib.driver_busy_fraction > 0
    assert ma.driver_busy_fraction > 0
    assert mllib.executor_wait_fraction > 0.2
    # (c): MLlib* removes the driver from the data path entirely and keeps
    # executors busier than either driver-centric variant.
    assert star.driver_busy_fraction == 0.0
    assert star.executor_busy_fraction > ma.executor_busy_fraction
    assert star.executor_busy_fraction > mllib.executor_busy_fraction
    assert star.executor_wait_fraction < 0.25
