"""Figure 4 — MLlib vs MLlib* on four datasets, with and without L2.

For each (dataset, L2) workload the paper plots objective vs communication
steps (left) and vs elapsed time (right), annotated with the speedup at
0.01 accuracy loss.  This bench reports the same quantities as a table:
steps and simulated seconds to the threshold for both systems, plus the
step- and time-speedups.

Paper shapes this bench asserts:

* MLlib* needs one-to-two orders of magnitude fewer communication steps
  when L2 = 0 on determined data (paper: 200x on avazu, 80x on kdd12);
* on underdetermined data (url, kddb) with L2 = 0, MLlib does not reach
  the threshold at all (paper Figures 4(d), 4(f));
* with L2 = 0.1 the gap shrinks and MLlib converges everywhere;
* the time speedup exceeds the step speedup on the large-model dataset
  (kdd12) thanks to AllReduce, and is below it on the small-model dataset
  (avazu) — the paper's 240x-vs-80x and 123x-vs-200x observations.
"""

import pytest

from repro.cluster import cluster1
from repro.data import load
from repro.metrics import (format_speedup, format_table, render_curves,
                           speedup)

from _common import SVM_L2_STRENGTH, run_comparison

DATASETS = ("avazu", "url", "kddb", "kdd12")

# The paper tunes batch size / learning rate per (system, workload) by grid
# search.  Grid-search results for our analogs: on unregularized workloads
# MLlib's best configuration is a constant step size (the default
# stepSize/sqrt(t) decay throttles it before it can reach the optimum),
# with a deep step budget.
MLLIB_L2_ZERO = {"MLlib": dict(learning_rate=1.0, lr_schedule="constant",
                               max_steps=8000, eval_every=40)}


def run_workload(name: str, l2: float):
    overrides = MLLIB_L2_ZERO if l2 == 0.0 else None
    return run_comparison(load(name), l2, ["MLlib", "MLlib*"],
                          cluster1(executors=8), overrides=overrides)


def run_all():
    outcomes = {}
    for name in DATASETS:
        for l2 in (SVM_L2_STRENGTH, 0.0):
            outcomes[(name, l2)] = run_workload(name, l2)
    return outcomes


def bench_fig4(benchmark):
    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for (name, l2), outcome in outcomes.items():
        mllib = outcome.convergence["MLlib"]
        star = outcome.convergence["MLlib*"]
        rows.append([
            name, f"{l2:g}",
            star.steps, mllib.steps,
            None if star.seconds is None else round(star.seconds, 2),
            None if mllib.seconds is None else round(mllib.seconds, 2),
            format_speedup(speedup(mllib, star, "steps")),
            format_speedup(speedup(mllib, star, "seconds")),
        ])
    print()
    print(format_table(
        ["dataset", "L2", "MLlib* steps", "MLlib steps", "MLlib* sec",
         "MLlib sec", "step speedup", "time speedup"], rows,
        title="Figure 4: MLlib vs MLlib* (speedup at 0.01 accuracy loss)"))

    # Paper-style curve for the headline workload (Figure 4(h)):
    # objective vs time, log-scale x, with the 0.01 threshold line.
    headline = outcomes[("kdd12", 0.0)]
    threshold = (headline.history("MLlib*").best_objective + 0.01)
    print("\nFigure 4(h) style curve — kdd12, L2=0, objective vs "
          "simulated time:")
    print(render_curves([headline.history("MLlib*"),
                         headline.history("MLlib")],
                        x_axis="seconds", log_x=True,
                        threshold=threshold))

    # --- shape assertions -------------------------------------------------
    for name in DATASETS:
        star = outcomes[(name, 0.0)].convergence["MLlib*"]
        assert star.converged, f"MLlib* must converge on {name} (L2=0)"

    # Determined datasets, no reg: huge step speedups.
    for name in ("avazu", "kdd12"):
        ratio = speedup(outcomes[(name, 0.0)].convergence["MLlib"],
                        outcomes[(name, 0.0)].convergence["MLlib*"],
                        "steps")
        assert ratio is None or ratio > 20, (name, ratio)

    # Underdetermined datasets, no reg: MLlib either fails to reach the
    # optimum at all (paper: url/kddb after 1000 iterations) or needs at
    # least an order of magnitude more steps.
    for name in ("url", "kddb"):
        conv = outcomes[(name, 0.0)].convergence
        if conv["MLlib"].converged:
            ratio = speedup(conv["MLlib"], conv["MLlib*"], "steps")
            assert ratio is not None and ratio >= 10, (name, ratio)

    # With L2, MLlib converges on the underdetermined datasets too.
    for name in ("url", "kddb"):
        assert outcomes[(name, SVM_L2_STRENGTH)].convergence[
            "MLlib"].converged, name

    # AllReduce effect: time speedup relative to step speedup is larger on
    # the big-model dataset (kdd12) than on the small-model one (avazu).
    def speedup_ratio(name):
        conv = outcomes[(name, 0.0)].convergence
        s_steps = speedup(conv["MLlib"], conv["MLlib*"], "steps")
        s_time = speedup(conv["MLlib"], conv["MLlib*"], "seconds")
        if s_steps is None or s_time is None:
            return None
        return s_time / s_steps

    avazu_ratio = speedup_ratio("avazu")
    kdd12_ratio = speedup_ratio("kdd12")
    if avazu_ratio is not None and kdd12_ratio is not None:
        assert kdd12_ratio > avazu_ratio


@pytest.mark.parametrize("name", ["avazu"])
def bench_fig4_single(benchmark, name):
    """Timing anchor: one full workload pair for pytest-benchmark stats."""
    outcome = benchmark.pedantic(run_workload, args=(name, 0.0),
                                 rounds=1, iterations=1)
    assert outcome.convergence["MLlib*"].converged
