"""Figure 5 — MLlib* vs parameter servers (Petuum*, Angel), plus MLlib.

The paper plots objective vs time for MLlib, MLlib*, Petuum* and Angel on
the four public datasets, with and without L2.  Key observations this
bench asserts:

* parameter servers (Petuum*, Angel) significantly outperform MLlib —
  confirming prior literature;
* with L2 = 0, MLlib* is comparable to Petuum* and faster than Angel;
* with L2 = 0.1, MLlib* is the fastest: it keeps many lazy sparse updates
  per step, Angel keeps per-batch updates, while Petuum* drops to a single
  update per communication step (Section V-B2's analysis).
"""

from repro.cluster import cluster1
from repro.data import load
from repro.metrics import format_table

from _common import SVM_L2_STRENGTH, run_comparison

DATASETS = ("avazu", "url", "kddb", "kdd12")
SYSTEMS = ["MLlib*", "Petuum*", "Angel", "MLlib"]


def run_workload(name: str, l2: float):
    return run_comparison(load(name), l2, SYSTEMS, cluster1(executors=8))


def run_all():
    return {(name, l2): run_workload(name, l2)
            for name in DATASETS for l2 in (0.0, SVM_L2_STRENGTH)}


def _seconds(outcome, system):
    conv = outcome.convergence[system]
    return conv.seconds if conv.converged else None


def bench_fig5(benchmark):
    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for (name, l2), outcome in outcomes.items():
        row = [name, f"{l2:g}"]
        for system in SYSTEMS:
            secs = _seconds(outcome, system)
            row.append(None if secs is None else round(secs, 2))
        rows.append(row)
    print()
    print(format_table(
        ["dataset", "L2"] + [f"{s} sec" for s in SYSTEMS], rows,
        title="Figure 5: simulated seconds to 0.01 accuracy loss "
              "(n/c shown as '-')"))

    # --- shape assertions -------------------------------------------------
    for (name, l2), outcome in outcomes.items():
        star = _seconds(outcome, "MLlib*")
        assert star is not None, f"MLlib* must converge on {name} L2={l2}"

        # PS systems beat MLlib whenever both converge (MLlib often fails
        # outright, which also satisfies the paper's observation).  One
        # documented exception: regularized Petuum* degenerates to a
        # single GD update per communication step (Section V-B2) and is
        # the paper's slowest PS configuration — allow it a 1.5x slack.
        mllib = _seconds(outcome, "MLlib")
        for ps in ("Petuum*", "Angel"):
            ps_sec = _seconds(outcome, ps)
            if ps_sec is not None and mllib is not None:
                assert ps_sec < 1.5 * mllib, (name, l2, ps)

    # With L2 = 0.1, MLlib* converges at least as fast as (or within 2x
    # of) both PS systems on the large sparse datasets — the paper's
    # biggest gaps are on url and kddb.  (At analog scale the dense-update
    # cost that dominates at d ~ 30M is shrunk ~1000x, so we tolerate
    # near-parity rather than demanding the paper's large margins.)
    for name in ("url", "kddb"):
        outcome = outcomes[(name, SVM_L2_STRENGTH)]
        star = _seconds(outcome, "MLlib*")
        for other in ("Petuum*", "Angel"):
            other_sec = _seconds(outcome, other)
            assert other_sec is None or star <= other_sec * 2.0, (
                name, other, star, other_sec)

    # With L2 = 0, MLlib* and the parameter servers are comparable: at
    # least one PS system converges on every unregularized workload, and
    # MLlib* is never an order of magnitude slower than the best PS.
    for name in DATASETS:
        outcome = outcomes[(name, 0.0)]
        ps_times = [t for t in (_seconds(outcome, "Petuum*"),
                                _seconds(outcome, "Angel"))
                    if t is not None]
        assert ps_times, f"no PS system converged on {name} (L2=0)"
        star = _seconds(outcome, "MLlib*")
        assert star <= 10 * min(ps_times), (name, star, ps_times)
