"""Figure 6 — Tencent WX workload: convergence and scalability.

The paper trains on the 434 GB WX dataset with 32/64/128 machines of the
heterogeneous Cluster 2 and reports:

* (a-c) MLlib* converges much faster than Angel and MLlib at every
  cluster size;
* (d) scaling 32 -> 128 machines is poor for every system (Angel 1.5x,
  MLlib* 1.7x vs the ideal 4x; MLlib even gets slower), because
  communication starts to dominate and BSP waits on ever-worse stragglers.

We run the WX analog on heterogeneous simulated clusters.  Machine counts
are scaled down 4x (8/16/32) to keep the analog's per-worker partitions
meaningful; the ratio between the largest and smallest cluster is the
paper's 4x, which is what Figure 6(d) is about.
"""

from repro.cluster import ComputeCostModel, cluster2
from repro.core import MLlibStarTrainer, MLlibTrainer, TrainerConfig
from repro.data import wx_like
from repro.glm import Objective
from repro.metrics import format_table
from repro.ps import AngelTrainer

MACHINE_COUNTS = (8, 16, 32)
SCALE_NOTE = "machine counts are the paper's 32/64/128 scaled by 4"

# The WX analog is ~180x smaller (in nnz) than the 434 GB original, which
# would leave the simulated epochs communication-bound at any machine
# count.  Scaling sec_per_nnz restores the paper's compute/communication
# balance (epochs of thousands of seconds at 32 machines) so that Figure
# 6(d)'s question — does adding machines help? — is meaningful.
WX_COMPUTE = ComputeCostModel(sec_per_nnz=1.0e-6)


def _cluster(k: int):
    return cluster2(machines=k, seed=7, compute=WX_COMPUTE)


def run_all():
    dataset = wx_like()
    objective = Objective("hinge")
    epochs = 6
    times: dict[str, dict[int, float]] = {}
    finals: dict[str, dict[int, float]] = {}

    for k in MACHINE_COUNTS:
        cluster = _cluster(k)
        sendmodel_cfg = TrainerConfig(max_steps=epochs, learning_rate=0.5,
                                      lr_schedule="inv_sqrt",
                                      local_chunk_size=64, seed=1)
        angel_cfg = sendmodel_cfg.with_overrides(batch_fraction=0.05)
        mllib_cfg = TrainerConfig(max_steps=40 * epochs, eval_every=20,
                                  learning_rate=0.5, lr_schedule="inv_sqrt",
                                  batch_fraction=0.01, seed=1)
        runs = {
            "MLlib*": MLlibStarTrainer(objective, cluster, sendmodel_cfg),
            "Angel": AngelTrainer(objective, _cluster(k), angel_cfg),
            "MLlib": MLlibTrainer(objective, _cluster(k), mllib_cfg),
        }
        for system, trainer in runs.items():
            result = trainer.fit(dataset)
            times.setdefault(system, {})[k] = result.history.total_seconds
            finals.setdefault(system, {})[k] = result.final_objective
    return times, finals


def bench_fig6(benchmark):
    times, finals = benchmark.pedantic(run_all, rounds=1, iterations=1)
    base = MACHINE_COUNTS[0]

    rows = []
    for system in ("MLlib*", "Angel", "MLlib"):
        for k in MACHINE_COUNTS:
            rows.append([
                system, k, round(times[system][k], 2),
                round(finals[system][k], 4),
                f"{times[system][base] / times[system][k]:.2f}x",
            ])
    print()
    print(format_table(
        ["system", "machines", "sim seconds", "final objective",
         "speedup vs smallest"], rows,
        title=f"Figure 6: WX analog scalability ({SCALE_NOTE})"))

    # --- shape assertions -------------------------------------------------
    ideal = MACHINE_COUNTS[-1] / base  # 4x

    # (a-c) At every size, MLlib* reaches a lower loss than MLlib given
    # comparable epoch budgets.
    for k in MACHINE_COUNTS:
        assert finals["MLlib*"][k] < finals["MLlib"][k]

    # (d) The SendModel systems do speed up, but far below the ideal 4x.
    for system in ("MLlib*", "Angel"):
        observed = times[system][base] / times[system][MACHINE_COUNTS[-1]]
        assert 1.0 < observed < 0.75 * ideal, (system, observed)

    # MLlib gets SLOWER with more machines (the paper's most striking
    # Figure 6(d) observation) and scales worst of the three.
    mllib_scaling = times["MLlib"][base] / times["MLlib"][MACHINE_COUNTS[-1]]
    star_scaling = times["MLlib*"][base] / times["MLlib*"][MACHINE_COUNTS[-1]]
    assert mllib_scaling < 1.0
    assert mllib_scaling < star_scaling
