"""Table I — dataset statistics.

Regenerates the paper's Table I side by side with the analog datasets this
reproduction trains on, including the traits (conditioning, relative model
size) the substitution preserves.
"""

from repro.data import CATALOG, dataset_names, load
from repro.metrics import format_table


def build_table() -> str:
    rows = []
    for name in dataset_names():
        card = CATALOG[name]
        analog = load(name)
        rows.append([
            name,
            f"{card.paper_instances:,}",
            f"{card.paper_features:,}",
            f"{card.paper_size_gb}GB",
            f"{analog.n_rows:,}",
            f"{analog.n_features:,}",
            f"{analog.nnz:,}",
            "under" if card.is_underdetermined else "determined",
        ])
    return format_table(
        ["dataset", "paper #inst", "paper #feat", "paper size",
         "analog #inst", "analog #feat", "analog nnz", "conditioning"],
        rows, title="Table I: dataset statistics (paper vs analog)")


def bench_table1(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    print()
    print(table)

    # Shape assertions: conditioning and model-size ordering preserved.
    for name in ("avazu", "kdd12", "WX"):
        assert not CATALOG[name].is_underdetermined
    for name in ("url", "kddb"):
        assert CATALOG[name].is_underdetermined
    feats = {n: CATALOG[n].spec.n_features for n in dataset_names()}
    assert feats["avazu"] < feats["url"] < feats["kddb"] < feats["kdd12"]
