"""Make the benchmarks directory importable (for `_common`)."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
