"""Gantt charts: visualize where the time goes (paper Figure 3).

Runs MLlib and MLlib* for a few communication steps on the kddb analog
(high-dimensional, so communication costs are visible) and renders the
per-node activity timelines in ASCII.  The MLlib chart shows the driver
('U' = update, 'A' = aggregate, 's' = send) working while executors wait
('.'); the MLlib* chart shows executors busy nearly all the time.

Run with::

    python examples/gantt_chart.py
"""

from repro import (MLlibStarTrainer, MLlibTrainer, Objective, TrainerConfig,
                   cluster1, kddb_like)
from repro.metrics import render_ascii, summarize


def main() -> None:
    dataset = kddb_like()
    objective = Objective("hinge")
    config = TrainerConfig(max_steps=4, learning_rate=0.5,
                           lr_schedule="inv_sqrt", batch_fraction=0.01,
                           local_chunk_size=64, seed=0)

    for cls in (MLlibTrainer, MLlibStarTrainer):
        trainer = cls(objective, cluster1(executors=8), config)
        result = trainer.fit(dataset)
        summary = summarize(result.trace)
        print(f"\n=== {trainer.system} "
              f"({config.max_steps} communication steps, kddb analog) ===")
        print(render_ascii(result.trace, width=96))
        print(summary.describe())


if __name__ == "__main__":
    main()
