"""Hyperparameter tuning with grid search (the paper's methodology).

Section V-A: "For each system, we also tune the hyper-parameters by grid
search for fair comparison."  This example tunes MLlib* on the avazu
analog over learning rate x chunk size, scoring each configuration by
simulated time to the best-found objective + 0.01, then exports the
winning configuration's convergence series to CSV.

Run with::

    python examples/hyperparameter_tuning.py
"""

from repro import (GridSearch, MLlibStarTrainer, Objective, TrainerConfig,
                   avazu_like, cluster1)
from repro.metrics import format_table, write_history_csv

GRID = {
    "learning_rate": [0.1, 0.5, 1.0],
    "local_chunk_size": [16, 64],
}


def main() -> None:
    dataset = avazu_like()
    search = GridSearch(
        trainer_cls=MLlibStarTrainer,
        objective=Objective("hinge", "l2", 0.01),
        cluster=cluster1(executors=8),
        base_config=TrainerConfig(max_steps=12, lr_schedule="inv_sqrt",
                                  seed=0),
    )
    points = search.run(dataset, GRID)

    rows = []
    for point in points:
        rows.append([
            point.params["learning_rate"],
            point.params["local_chunk_size"],
            round(point.best_objective, 4),
            "yes" if point.converged else "no",
            None if point.seconds_to_target is None
            else round(point.seconds_to_target, 3),
        ])
    print(format_table(
        ["learning rate", "chunk size", "best f(w)", "converged",
         "sec to target"], rows,
        title=f"grid search: MLlib* on {dataset.name} "
              f"({len(points)} configurations, best first)"))

    best = points[0]
    print(f"\nbest configuration: {best.params}")
    write_history_csv([best.result.history], "best_run.csv")
    print("wrote best_run.csv (objective vs steps vs simulated seconds)")


if __name__ == "__main__":
    main()
