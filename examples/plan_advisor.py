"""Where does a communication step's time go?  (analytic advisor)

Uses ``repro.planner`` to decompose one communication step's simulated
time into compute / communication / driver-serialized components for
every system, across the analog catalog.  This is the quantitative form
of the paper's Section III/IV analysis: the driver share explodes with
model size for MLlib, while MLlib* has no driver term at all.

Run with::

    python examples/plan_advisor.py
"""

from repro import WorkloadProfile, estimate_step_cost, cluster1
from repro.data import CATALOG
from repro.metrics import format_table
from repro.planner import ADVISABLE_SYSTEMS


def main() -> None:
    cluster = cluster1(executors=8)
    rows = []
    for name, card in CATALOG.items():
        # One SendModel step touches the full partition once.
        nnz_total = card.spec.n_rows * card.spec.nnz_per_row
        profile = WorkloadProfile(
            model_size=card.spec.n_features,
            nnz_per_step_per_worker=nnz_total / cluster.num_executors)
        for system in ADVISABLE_SYSTEMS:
            cost = estimate_step_cost(system, cluster, profile)
            rows.append([
                name, system, round(1000 * cost.compute, 2),
                round(1000 * cost.communication, 2),
                round(1000 * cost.driver, 2),
                round(1000 * cost.total, 2),
                f"{cost.driver / cost.total:.0%}" if cost.total else "0%",
            ])
    print(format_table(
        ["dataset", "system", "compute ms", "comm ms", "driver ms",
         "total ms", "driver share"], rows,
        title="per-communication-step cost decomposition "
              "(8 executors, analog scale)"))
    print("\nThe driver share grows with the model and vanishes for "
          "MLlib* — Figure 2's\narchitectural argument, derived from the "
          "cost model instead of measured.")


if __name__ == "__main__":
    main()
