"""Quickstart: train a distributed linear SVM with MLlib*.

Trains on the avazu analog (CTR-style sparse data) with the paper's
Cluster 1 (1 driver + 8 executors), then prints the convergence curve and
the resulting model quality.

Run with::

    python examples/quickstart.py
"""

from repro import (MLlibStarTrainer, Objective, TrainerConfig, avazu_like,
                   cluster1)


def main() -> None:
    # 1. Data: a sparse binary-classification dataset.  Swap in
    #    `repro.read_libsvm(path)` if you have a real LIBSVM file.
    dataset = avazu_like()
    print(f"dataset: {dataset.name}  "
          f"({dataset.n_rows:,} rows x {dataset.n_features:,} features, "
          f"{dataset.nnz:,} nonzeros)")

    # 2. Objective: hinge loss (linear SVM) with light L2 regularization.
    objective = Objective("hinge", "l2", 0.01)

    # 3. Cluster: the paper's 9-node testbed, simulated.
    cluster = cluster1(executors=8)

    # 4. Train with MLlib* (model averaging + AllReduce).
    config = TrainerConfig(max_steps=15, learning_rate=0.5,
                           lr_schedule="inv_sqrt", local_chunk_size=16,
                           seed=0)
    trainer = MLlibStarTrainer(objective, cluster, config)
    result = trainer.fit(dataset)

    # 5. Inspect the run.
    print("\nconvergence (objective vs communication steps / sim seconds):")
    for point in result.history:
        print(f"  step {point.step:>3}  t={point.seconds:7.3f}s  "
              f"f(w) = {point.objective:.4f}")

    accuracy = result.model.accuracy(dataset.X, dataset.y)
    print(f"\nfinal objective: {result.final_objective:.4f}")
    print(f"training accuracy: {accuracy:.1%}")
    print(f"simulated wall-clock: {result.history.total_seconds:.3f}s "
          f"over {result.history.total_steps} communication steps")


if __name__ == "__main__":
    main()
