"""MLlib's GradientDescent, written as RDD dataflow on the mini-RDD layer.

The specialized trainers in ``repro.core`` use a direct phase API; this
example shows the same SendGradient algorithm expressed the way the real
MLlib writes it — ``treeAggregate`` over a cached RDD of labeled points —
running on the simulated cluster with lineage-based fault recovery.

Halfway through training we kill an executor: the next action recomputes
its partitions from lineage (costing simulated time) and training
continues correctly — Spark's fault-tolerance story, reproduced.

Run with::

    python examples/rdd_gradient_descent.py
"""

import numpy as np

from repro.cluster import cluster1
from repro.data import SyntheticSpec, generate
from repro.engine import RddContext
from repro.glm import Objective, apply_update

ITERATIONS = 12
LEARNING_RATE = 0.3


def main() -> None:
    dataset = generate(SyntheticSpec(n_rows=2000, n_features=100,
                                     nnz_per_row=10.0, seed=17),
                       name="rdd-demo")
    objective = Objective("hinge", "l2", 0.01)
    ctx = RddContext(cluster1(executors=8))

    # The classic MLlib pipeline: raw rows parsed once, then cached.
    # Parsing carries a real per-row cost, so a lost executor's blocks
    # cost visible simulated time to recompute from lineage.
    raw = [(np.asarray(dataset.X[i].todense()).ravel(), dataset.y[i])
           for i in range(dataset.n_rows)]

    def parse(row):
        x, y = row
        return np.array(x, copy=True), float(y)

    points = (ctx.parallelize(raw)
              .map(parse, work_per_row=2.0e-5)
              .cache())
    d = dataset.n_features

    def seq_op(acc, point):
        grad_sum, count = acc
        x, y = point
        margin = float(x @ w)
        factor = objective.loss.gradient_factor(np.array([margin]),
                                                np.array([y]))[0]
        return grad_sum + factor * x, count + 1

    def comb_op(a, b):
        return a[0] + b[0], a[1] + b[1]

    w = np.zeros(d)
    print(f"{'iter':>4}  {'sim time':>9}  {'objective':>9}")
    for iteration in range(1, ITERATIONS + 1):
        if iteration == ITERATIONS // 2:
            evicted = ctx.fail_executor(3)
            print(f"     !! executor-4 failed, {evicted} cached block(s) "
                  "lost; lineage recovery on next action")
        grad_sum, count = points.tree_aggregate(
            (np.zeros(d), 0), seq_op, comb_op, result_size=d)
        gradient = grad_sum / count
        w = apply_update(w, gradient, LEARNING_RATE, objective)
        objective_value = objective.value(w, dataset.X, dataset.y)
        print(f"{iteration:>4}  {ctx.now:>9.3f}  {objective_value:>9.4f}")

    print(f"\nfinal objective {objective.value(w, dataset.X, dataset.y):.4f}"
          f" after {ITERATIONS} treeAggregate rounds "
          f"({ctx.now:.3f} simulated seconds)")


if __name__ == "__main__":
    main()
