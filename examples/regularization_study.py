"""Regularization and conditioning: why MLlib fails where MLlib* doesn't.

Section V-B's second observation: MLlib performs worse as the problem gets
more ill-conditioned.  On underdetermined data (more features than
examples, like url and kddb) with no regularization, SendGradient's one
update per communication step cannot reach the optimum in any reasonable
number of steps; adding L2 makes the objective strongly convex and closes
most of the gap.

This example trains on the url analog at L2 strengths {0, 0.01, 0.1} and
reports how many communication steps each system needs to get within 0.01
of MLlib*'s best objective.  The MLlib/MLlib* step ratio shrinks as L2
grows — the paper's Figures 4(c)-(f) story.

Run with::

    python examples/regularization_study.py
"""

from repro import (MLlibStarTrainer, MLlibTrainer, Objective, TrainerConfig,
                   cluster1, url_like)
from repro.metrics import format_table

L2_STRENGTHS = (0.0, 0.01, 0.1)


def main() -> None:
    dataset = url_like()
    print(f"workload: SVM on {dataset.name} analog "
          f"({dataset.n_rows:,} rows x {dataset.n_features:,} features "
          f"-- underdetermined)")

    rows = []
    for l2 in L2_STRENGTHS:
        objective = (Objective("hinge", "l2", l2) if l2
                     else Objective("hinge"))
        star = MLlibStarTrainer(
            objective, cluster1(),
            TrainerConfig(max_steps=25, learning_rate=0.5,
                          lr_schedule="inv_sqrt", local_chunk_size=16,
                          seed=0)).fit(dataset)
        threshold = star.history.best_objective + 0.01
        star_steps = star.history.first_reaching(threshold).step

        # Per-workload tuning, as the paper does by grid search: with no
        # regularization MLlib's best setting is a constant step; with L2
        # the strongly convex objective favours the default 1/sqrt(t) decay.
        mllib_cfg = TrainerConfig(
            max_steps=3000, eval_every=20,
            learning_rate=1.0 if l2 == 0 else 0.5,
            lr_schedule="constant" if l2 == 0 else "inv_sqrt",
            batch_fraction=0.05, stop_threshold=threshold, seed=0)
        mllib = MLlibTrainer(objective, cluster1(), mllib_cfg).fit(dataset)
        point = mllib.history.first_reaching(threshold)
        mllib_steps = None if point is None else point.step
        ratio = (None if mllib_steps is None
                 else f"{mllib_steps / max(1, star_steps):.0f}x")
        rows.append([f"{l2:g}", round(threshold, 4), star_steps,
                     mllib_steps if mllib_steps is not None else "n/c",
                     ratio if ratio is not None else "n/c"])

    print()
    print(format_table(
        ["L2", "target f(w)", "MLlib* steps", "MLlib steps", "ratio"],
        rows, title="communication steps to reach MLlib*'s optimum + 0.01"))
    print("\nWithout regularization the underdetermined problem is "
          "ill-conditioned and MLlib\nneeds vastly more steps (or never "
          "arrives); L2 conditions the objective and\nshrinks the gap.")


if __name__ == "__main__":
    main()
