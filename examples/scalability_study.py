"""Scalability study: how many machines should you use? (paper Figure 6)

Sweeps the cluster size for the WX analog on the heterogeneous Cluster 2
and reports per-epoch simulated time and speedup.  Demonstrates the
paper's Section V-C finding: BSP training stops scaling once communication
and stragglers dominate — "using more machines may not always be a good
choice."

Run with::

    python examples/scalability_study.py
"""

from repro import (MLlibStarTrainer, Objective, TrainerConfig, cluster2,
                   wx_like)
from repro.cluster import ComputeCostModel
from repro.metrics import format_table

MACHINE_COUNTS = (4, 8, 16, 32, 64)
EPOCHS = 4

# Restore the paper's compute/communication balance for the scaled-down
# analog (the real WX dataset is 434 GB; see DESIGN.md).
WX_COMPUTE = ComputeCostModel(sec_per_nnz=1.0e-6)


def main() -> None:
    dataset = wx_like()
    objective = Objective("hinge")
    print(f"workload: SVM on {dataset.name} analog "
          f"({dataset.n_rows:,} x {dataset.n_features:,}), "
          f"{EPOCHS} epochs of MLlib*")

    times = {}
    for machines in MACHINE_COUNTS:
        cluster = cluster2(machines=machines, seed=11, compute=WX_COMPUTE)
        config = TrainerConfig(max_steps=EPOCHS, learning_rate=0.5,
                               lr_schedule="inv_sqrt", local_chunk_size=64,
                               seed=0)
        result = MLlibStarTrainer(objective, cluster, config).fit(dataset)
        times[machines] = result.history.total_seconds / EPOCHS

    base = MACHINE_COUNTS[0]
    rows = []
    for machines in MACHINE_COUNTS:
        ideal = machines / base
        observed = times[base] / times[machines]
        rows.append([machines, round(times[machines], 2),
                     f"{observed:.2f}x", f"{ideal:.0f}x",
                     f"{observed / ideal:.0%}"])
    print()
    print(format_table(
        ["machines", "sec / epoch", "speedup", "ideal", "efficiency"],
        rows, title="MLlib* scaling on heterogeneous Cluster 2"))
    print("\nEfficiency falls as communication latency (which grows with "
          "the number of\nmessages) and barrier waits (slowest of k "
          "workers) eat the shrinking compute.")


if __name__ == "__main__":
    main()
