"""System shootout: all six trainers on one workload.

Reruns the paper's central comparison — MLlib vs MLlib + model averaging
vs MLlib* vs Petuum vs Petuum* vs Angel — on the url analog
(underdetermined, the regime where the SendGradient paradigm struggles
most) and prints time/steps to the 0.01-accuracy-loss threshold.

Run with::

    python examples/system_shootout.py
"""

from repro import (AngelTrainer, MLlibModelAveragingTrainer,
                   MLlibStarTrainer, MLlibTrainer, Objective,
                   PetuumStarTrainer, PetuumTrainer, TrainerConfig,
                   cluster1, url_like)
from repro.metrics import format_table

SENDMODEL_CFG = TrainerConfig(max_steps=60, learning_rate=0.5,
                              lr_schedule="inv_sqrt", local_chunk_size=16,
                              seed=0)
PER_BATCH_CFG = TrainerConfig(max_steps=300, eval_every=10,
                              learning_rate=1.0, lr_schedule="inv_sqrt",
                              batch_fraction=0.2, local_chunk_size=16,
                              seed=0)
MLLIB_CFG = TrainerConfig(max_steps=2000, eval_every=20, learning_rate=1.0,
                          batch_fraction=0.05, seed=0)


def main() -> None:
    dataset = url_like()
    objective = Objective("hinge", "l2", 0.1)
    print(f"workload: SVM + L2(0.1) on {dataset.name} analog "
          f"({dataset.n_rows:,} x {dataset.n_features:,})")

    trainers = [
        MLlibTrainer(objective, cluster1(), MLLIB_CFG),
        MLlibModelAveragingTrainer(objective, cluster1(), SENDMODEL_CFG),
        MLlibStarTrainer(objective, cluster1(), SENDMODEL_CFG),
        PetuumTrainer(objective, cluster1(), PER_BATCH_CFG),
        PetuumStarTrainer(objective, cluster1(), PER_BATCH_CFG),
        AngelTrainer(objective, cluster1(),
                     SENDMODEL_CFG.with_overrides(batch_fraction=0.05,
                                                  max_steps=100)),
    ]

    results = {t.system: t.fit(dataset) for t in trainers}
    optimum = min(r.history.best_objective for r in results.values())
    threshold = optimum + 0.01

    rows = []
    for system, result in results.items():
        point = result.history.first_reaching(threshold)
        rows.append([
            system,
            round(result.history.best_objective, 4),
            "yes" if point is not None else "no",
            None if point is None else point.step,
            None if point is None else round(point.seconds, 3),
            "DIVERGED" if result.diverged else "",
        ])
    print()
    print(format_table(
        ["system", "best f(w)", "converged", "steps to 0.01", "sec to 0.01",
         "notes"], rows,
        title=f"time to optimum + 0.01 (optimum = {optimum:.4f})"))


if __name__ == "__main__":
    main()
