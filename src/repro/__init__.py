"""repro — reproduction of "MLlib*: Fast Training of GLMs using Spark MLlib".

This package re-implements, from scratch and in pure Python, every system
the ICDE 2019 paper studies:

* a Spark-like BSP engine (driver/executors, ``treeAggregate``, broadcast,
  shuffle) with a simulated cluster clock (:mod:`repro.engine`,
  :mod:`repro.cluster`);
* MPI-style collectives built on shuffle (:mod:`repro.collectives`);
* a parameter-server substrate with BSP/SSP/ASP consistency
  (:mod:`repro.ps`);
* GLM training math — hinge/logistic/squared losses, L1/L2 regularizers,
  local MGD/SGD solvers, Bottou lazy L2 updates (:mod:`repro.glm`);
* the six trainers of the study — MLlib, MLlib + model averaging, MLlib*,
  Petuum, Petuum*, Angel (:mod:`repro.core`, :mod:`repro.ps`);
* synthetic analogs of the paper's datasets plus LIBSVM IO
  (:mod:`repro.data`), and metrics / gantt tooling (:mod:`repro.metrics`).

Quickstart::

    from repro import (MLlibStarTrainer, Objective, TrainerConfig,
                       cluster1, avazu_like)

    data = avazu_like()
    trainer = MLlibStarTrainer(Objective("hinge", "l2", 0.1), cluster1(),
                               TrainerConfig(max_steps=20))
    result = trainer.fit(data)
    print(result.final_objective, result.model.accuracy(data.X, data.y))
"""

from .cluster import (ClusterSpec, ComputeCostModel, LogNormalStragglers,
                      NetworkModel, NodeSpec, NoStragglers, Span, Trace,
                      cluster1, cluster2)
from .collectives import (all_gather, all_reduce_average, partition_slices,
                          reduce_scatter)
from .core import (DistributedTrainer, MLlibModelAveragingTrainer,
                   MLlibStarTrainer, MLlibTrainer, SparkMlStarTrainer,
                   SparkMlTrainer, TrainerConfig, TrainResult)
from .data import (SparseDataset, SyntheticSpec, avazu_like, dataset_names,
                   generate, kdd12_like, kddb_like, load, partition_rows,
                   read_libsvm, train_test_split, url_like, write_libsvm,
                   wx_like)
from .engine import (BroadcastModel, BspEngine, PartitionedDataset,
                     ShuffleModel, TreeAggregateModel)
from .glm import (BinaryMetrics, GLMModel, HingeLoss, LogisticLoss,
                  Objective, SquaredHingeLoss, SquaredLoss, evaluate_binary,
                  get_loss, get_regularizer, roc_auc)
from .metrics import (ACCURACY_LOSS, ConvergenceResult, TrainingHistory,
                      evaluate_convergence, render_ascii, speedup, summarize)
from .ps import (ASP, BSP, SSP, AngelTrainer, AsyncSgdTrainer,
                 ParameterServer, PetuumStarTrainer, PetuumTrainer,
                 PsEngine)
from .planner import (StepCost, WorkloadProfile, estimate_step_cost,
                      rank_systems)
from .tuning import GridPoint, GridSearch, expand_grid

__version__ = "1.0.0"

__all__ = [
    # cluster
    "ClusterSpec", "cluster1", "cluster2", "NodeSpec", "NetworkModel",
    "ComputeCostModel", "NoStragglers", "LogNormalStragglers", "Span",
    "Trace",
    # data
    "SparseDataset", "SyntheticSpec", "generate", "load", "dataset_names",
    "avazu_like", "url_like", "kddb_like", "kdd12_like", "wx_like",
    "read_libsvm", "write_libsvm", "partition_rows", "train_test_split",
    # glm
    "Objective", "GLMModel", "HingeLoss", "LogisticLoss",
    "SquaredHingeLoss", "SquaredLoss", "get_loss", "get_regularizer",
    "BinaryMetrics", "evaluate_binary", "roc_auc",
    # engine & collectives
    "BspEngine", "PartitionedDataset", "TreeAggregateModel",
    "BroadcastModel", "ShuffleModel", "partition_slices", "reduce_scatter",
    "all_gather", "all_reduce_average",
    # trainers
    "TrainerConfig", "DistributedTrainer", "TrainResult", "MLlibTrainer",
    "MLlibModelAveragingTrainer", "MLlibStarTrainer", "PetuumTrainer",
    "PetuumStarTrainer", "AngelTrainer", "AsyncSgdTrainer",
    "SparkMlTrainer", "SparkMlStarTrainer",
    # tuning & planning
    "GridSearch", "GridPoint", "expand_grid",
    "StepCost", "WorkloadProfile", "estimate_step_cost", "rank_systems",
    # ps substrate
    "ParameterServer", "PsEngine", "BSP", "SSP", "ASP",
    # metrics
    "TrainingHistory", "ACCURACY_LOSS", "ConvergenceResult",
    "evaluate_convergence", "speedup", "summarize", "render_ascii",
]
