"""Static analysis + runtime sanitizer guarding reproducibility invariants.

Two complementary layers (see ``docs/static_analysis.md``):

* the **determinism linter** — an AST rule engine
  (:func:`~repro.analysis.engine.run_analysis`,
  ``python -m repro.analysis``) with a project-wide call graph
  (:class:`~repro.analysis.callgraph.CallGraph`) scoping the rules:
  DET001/DET002/PURE001/CFG001 plus the RACE001/RACE002 backend task
  contract and the NOQA001 unused-suppression audit, with per-line
  ``# repro: noqa[RULE]`` suppressions;
* the **barrier sanitizer** — ``--sanitize`` runtime checks
  (:class:`~repro.analysis.sanitizer.BarrierSanitizer`) that freeze
  broadcast model arrays at superstep boundaries and digest-check that
  replicas stay bit-identical.
"""

from .callgraph import CallGraph, FunctionInfo, SubmitSite, module_name_for
from .engine import (AnalysisResult, SourceFile, collect_files, load_source,
                     parse_noqa, run_analysis)
from .reporters import render_json, render_sarif, render_text
from .rules import (ALL_RULES, AmbientNondeterminism, CallGraphRule,
                    ConfigReachability, ImpureCostModel, ProjectRule, Rule,
                    UnorderedIteration, UnusedSuppression, rule_registry)
from .rules_race import SharedStateMutation, UnpicklableTask
from .sanitizer import (BarrierSanitizer, ReplicaDivergenceError,
                        SanitizerError, check_replicas, freeze_array,
                        model_digest)
from .violations import PARSE_RULE_ID, Violation

__all__ = [
    "AnalysisResult", "SourceFile", "collect_files", "load_source",
    "parse_noqa", "run_analysis", "render_json", "render_sarif",
    "render_text", "ALL_RULES", "AmbientNondeterminism", "CallGraph",
    "CallGraphRule", "ConfigReachability", "FunctionInfo",
    "ImpureCostModel", "ProjectRule", "Rule", "SharedStateMutation",
    "SubmitSite", "UnorderedIteration", "UnpicklableTask",
    "UnusedSuppression", "module_name_for", "rule_registry",
    "BarrierSanitizer", "ReplicaDivergenceError", "SanitizerError",
    "check_replicas", "freeze_array", "model_digest", "PARSE_RULE_ID",
    "Violation",
]
