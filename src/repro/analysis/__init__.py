"""Static analysis + runtime sanitizer guarding reproducibility invariants.

Two complementary layers (see ``docs/static_analysis.md``):

* the **determinism linter** — an AST rule engine
  (:func:`~repro.analysis.engine.run_analysis`,
  ``python -m repro.analysis``) with rules DET001/DET002/PURE001/CFG001
  and per-line ``# repro: noqa[RULE]`` suppressions;
* the **barrier sanitizer** — ``--sanitize`` runtime checks
  (:class:`~repro.analysis.sanitizer.BarrierSanitizer`) that freeze
  broadcast model arrays at superstep boundaries and digest-check that
  replicas stay bit-identical.
"""

from .engine import (AnalysisResult, SourceFile, collect_files, load_source,
                     parse_noqa, run_analysis)
from .reporters import render_json, render_text
from .rules import (ALL_RULES, AmbientNondeterminism, ConfigReachability,
                    ImpureCostModel, ProjectRule, Rule, UnorderedIteration,
                    rule_registry)
from .sanitizer import (BarrierSanitizer, ReplicaDivergenceError,
                        SanitizerError, check_replicas, freeze_array,
                        model_digest)
from .violations import PARSE_RULE_ID, Violation

__all__ = [
    "AnalysisResult", "SourceFile", "collect_files", "load_source",
    "parse_noqa", "run_analysis", "render_json", "render_text",
    "ALL_RULES", "AmbientNondeterminism", "ConfigReachability",
    "ImpureCostModel", "ProjectRule", "Rule", "UnorderedIteration",
    "rule_registry", "BarrierSanitizer", "ReplicaDivergenceError",
    "SanitizerError", "check_replicas", "freeze_array", "model_digest",
    "PARSE_RULE_ID", "Violation",
]
