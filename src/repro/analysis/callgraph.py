"""Project-wide symbol table and call graph for the determinism linter.

The linter's first generation scoped its rules with hand-maintained file
lists (``applies_to`` naming ``backend.py``, ``worker.py``, …) and never
looked past a function's own body.  Both break the same way: the moment a
helper moves — or a new module joins the worker-side code — the invariant
silently stops being checked.  This module replaces the lists with a
*derived* scope:

* a **symbol table** over every analyzed file (modules, functions,
  classes, methods, module-level globals), keyed by dotted qualified
  names such as ``repro.core.worker.send_model_task`` or
  ``repro.engine.backend.ThreadBackend._submit``;
* **import resolution** that follows aliases (``import numpy as np``),
  ``from``-imports, *relative* imports (``from ..glm import sgd_epoch``)
  and package re-exports (``repro.glm.__init__`` re-exporting
  ``local_solvers.sgd_epoch``), so a call in one file resolves to the
  definition in another;
* **call edges** per function: direct calls, ``self.method()`` calls
  resolved through the class (including bases defined in the project),
  calls through imported modules, and nested ``def``s (conservatively
  treated as called by their enclosing function);
* **reachability queries** (:meth:`CallGraph.reachable`) that return the
  call path from a root to every transitively reached function — the
  path is what rules report (``seconds -> _helper -> list.append``);
* **backend submit sites** (:meth:`CallGraph.submit_sites`): every
  ``<...backend...>.map_partitions(fn, ...)`` / ``.run_one(fn, ...)`` /
  ``.submit(fn, ...)`` call, with the task argument classified (resolved
  module-level function, lambda, nested function, bound attribute).  The
  resolved task functions are the roots for the RACE family and part of
  DET002's derived scope.

Resolution is deliberately *unsound but precise*: a call that cannot be
resolved statically (a method on an arbitrary object, a callable passed
as a parameter, a subscripted dispatch table) produces no edge rather
than a guessed one.  Rules built on the graph therefore under-approximate
reachability and never invent paths that do not exist in the source.

The graph is built once per lint run over all collected files
(:class:`~repro.analysis.engine.SourceFile` objects) and shared by every
graph-scoped rule; construction is a single AST pass per file plus
near-linear resolution, which keeps whole-tree analysis well under the
CI speed budget (see ``tests/test_analysis_callgraph.py``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .engine import SourceFile

__all__ = ["CallGraph", "FunctionInfo", "ClassInfo", "ModuleInfo",
           "SubmitSite", "module_name_for", "own_body"]

#: Method names that hand a callable to an execution backend.
SUBMIT_METHODS = frozenset({"map_partitions", "run_one", "submit"})

#: Suffix marking a module's top-level code as a pseudo-function node.
MODULE_BODY = "<module>"


def module_name_for(path: Path) -> str:
    """Dotted module name, derived from the ``__init__.py`` chain.

    ``src/repro/engine/backend.py`` maps to ``repro.engine.backend``
    (``src`` has no ``__init__.py``, so the package root is ``repro``);
    a bare file outside any package maps to its stem.
    """
    parts = [] if path.stem == "__init__" else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.insert(0, parent.name)
        if parent.parent == parent:
            break
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


@dataclass
class FunctionInfo:
    """One function, method, nested function, or module body."""

    qualname: str
    name: str
    node: ast.AST  # FunctionDef / AsyncFunctionDef / Module
    src: "SourceFile"
    module: str
    class_name: str | None = None
    is_nested: bool = False
    is_module_body: bool = False

    @property
    def short(self) -> str:
        """Human-readable name for call-path reporting."""
        if self.is_module_body:
            return f"{self.module}.{MODULE_BODY}"
        if self.class_name is not None:
            return f"{self.class_name}.{self.name}"
        return self.name

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 1)


@dataclass
class ClassInfo:
    """One class definition with its method table and raw base names."""

    qualname: str
    name: str
    node: ast.ClassDef
    src: "SourceFile"
    module: str
    bases: tuple[str, ...]
    methods: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One module: imports, top-level definitions, globals, body."""

    name: str
    src: "SourceFile"
    imports: dict[str, str]
    defs: dict[str, str] = field(default_factory=dict)
    module_globals: set[str] = field(default_factory=set)
    body: FunctionInfo | None = None


@dataclass
class SubmitSite:
    """One backend submit call site and its classified task argument."""

    caller: FunctionInfo
    call: ast.Call
    method: str
    fn_arg: ast.AST
    #: Qualified name of the resolved task function (None if unresolved).
    task: str | None
    #: Why the argument is not a picklable module-level callable
    #: (None when it is, or when nothing can be said statically).
    problem: str | None


def _module_imports(tree: ast.Module, module_name: str,
                    is_package: bool) -> dict[str, str]:
    """Local name -> dotted target, including relative imports.

    In module ``repro.core.worker``, ``from ..glm import sgd_epoch`` maps
    ``sgd_epoch -> repro.glm.sgd_epoch``; in the package module
    ``repro.glm`` (its ``__init__.py``), ``from .local_solvers import x``
    maps ``x -> repro.glm.local_solvers.x``.
    """
    base = module_name.split(".")
    if not is_package:
        base = base[:-1]
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                anchor = base[:len(base) - (node.level - 1)] if node.level > 1 \
                    else list(base)
                if node.level - 1 > len(base):
                    continue  # relative import escaping the analyzed tree
                prefix = ".".join(anchor + ([node.module] if node.module
                                            else []))
            else:
                prefix = node.module or ""
            if not prefix:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{prefix}.{alias.name}"
    return aliases


def _dotted(node: ast.AST) -> str | None:
    """Flatten ``a.b.c`` attribute chains to ``"a.b.c"`` (else None)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def own_body(info: FunctionInfo) -> Iterator[ast.AST]:
    """Walk a function's own statements, not descending into nested
    ``def``/``class`` scopes (each is its own graph node).  Lambdas are
    *included*: they share the enclosing scope and are not registered
    separately."""
    if info.is_module_body:
        assert isinstance(info.node, ast.Module)
        stack: list[ast.AST] = [stmt for stmt in info.node.body
                                if not isinstance(stmt, _SCOPE_NODES)]
    else:
        stack = list(getattr(info.node, "body", []))
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                continue
            stack.append(child)


def local_bindings(info: FunctionInfo) -> set[str]:
    """Names bound locally in a function (params, assignments, loop and
    ``with`` targets, comprehension variables, local imports)."""
    bound: set[str] = set()
    node = info.node
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = node.args
        for a in (args.posonlyargs + args.args + args.kwonlyargs):
            bound.add(a.arg)
        if args.vararg:
            bound.add(args.vararg.arg)
        if args.kwarg:
            bound.add(args.kwarg.arg)
    for sub in own_body(info):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
            bound.add(sub.id)
        elif isinstance(sub, (ast.Import, ast.ImportFrom)):
            for alias in sub.names:
                bound.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(sub, _SCOPE_NODES):  # pragma: no cover - skipped
            bound.add(sub.name)
    return bound


class CallGraph:
    """Symbol table + call edges over one lint run's files."""

    def __init__(self, files: "Iterable[SourceFile]") -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: caller qualname -> [(callee qualname, call-site node), ...]
        self.calls: dict[str, list[tuple[str, ast.AST]]] = {}
        self._submit_sites: list[SubmitSite] = []
        sources = list(files)
        for src in sources:
            self._register_module(src)
        for src in sources:
            mod = self._module_of(src)
            if mod is not None:
                self._build_edges(mod)
        self._resolve_submit_sites()

    # ------------------------------------------------------------------
    # construction: symbol table
    # ------------------------------------------------------------------
    def _register_module(self, src: "SourceFile") -> None:
        name = module_name_for(src.path)
        if name in self.modules:
            # Two files mapping to one module name (detached fixtures with
            # colliding stems); keep both resolvable by path-suffix key.
            name = f"{name}@{src.path}"
        is_package = src.path.name == "__init__.py"
        mod = ModuleInfo(name=name, src=src,
                         imports=_module_imports(src.tree, name, is_package))
        self.modules[name] = mod
        body = FunctionInfo(qualname=f"{name}.{MODULE_BODY}",
                            name=MODULE_BODY, node=src.tree, src=src,
                            module=name, is_module_body=True)
        mod.body = body
        self.functions[body.qualname] = body
        for stmt in src.tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        mod.module_globals.add(target.id)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(stmt.target, ast.Name):
                    mod.module_globals.add(stmt.target.id)
        self._register_scope(mod, src.tree.body, prefix=name,
                             class_name=None, nested=False)

    def _register_scope(self, mod: ModuleInfo, body: list[ast.stmt],
                        prefix: str, class_name: str | None,
                        nested: bool) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{stmt.name}"
                info = FunctionInfo(qualname=qual, name=stmt.name,
                                    node=stmt, src=mod.src,
                                    module=mod.name, class_name=class_name,
                                    is_nested=nested)
                self.functions[qual] = info
                if class_name is None and not nested:
                    mod.defs[stmt.name] = qual
                # nested defs live under <locals>, flake8-style
                self._register_scope(mod, stmt.body,
                                     prefix=f"{qual}.<locals>",
                                     class_name=None, nested=True)
            elif isinstance(stmt, ast.ClassDef):
                qual = f"{prefix}.{stmt.name}"
                bases = tuple(b for b in (_dotted(base)
                                          for base in stmt.bases)
                              if b is not None)
                cls = ClassInfo(qualname=qual, name=stmt.name, node=stmt,
                                src=mod.src, module=mod.name, bases=bases)
                self.classes[qual] = cls
                if class_name is None and not nested:
                    mod.defs[stmt.name] = qual
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                        cls.methods[sub.name] = f"{qual}.{sub.name}"
                self._register_scope(mod, stmt.body, prefix=qual,
                                     class_name=stmt.name, nested=nested)

    def _module_of(self, src: "SourceFile") -> ModuleInfo | None:
        for mod in self.modules.values():
            if mod.src is src:
                return mod
        return None  # pragma: no cover - every registered src has a module

    # ------------------------------------------------------------------
    # construction: edges
    # ------------------------------------------------------------------
    def _build_edges(self, mod: ModuleInfo) -> None:
        for info in list(self.functions.values()):
            if info.module != mod.name:
                continue
            edges = self.calls.setdefault(info.qualname, [])
            # nested defs are conservatively reachable from their parent
            if not info.is_module_body:
                for stmt in getattr(info.node, "body", []):
                    if isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        edges.append(
                            (f"{info.qualname}.<locals>.{stmt.name}", stmt))
            for node in own_body(info):
                if not isinstance(node, ast.Call):
                    continue
                callee = self._resolve_call(mod, info, node)
                if callee is not None:
                    edges.append((callee, node))
                self._maybe_submit_site(mod, info, node)

    def _resolve_call(self, mod: ModuleInfo, info: FunctionInfo,
                      call: ast.Call) -> str | None:
        dotted = _dotted(call.func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in ("self", "cls") and info.class_name is not None and rest \
                and "." not in rest:
            class_qual = f"{info.module}.{info.class_name}"
            return self._method_on_class(class_qual, rest)
        resolved = self.resolve(mod, dotted)
        if resolved in self.classes:
            # Instantiation: route to __init__ when the project defines it
            # (a fresh object's constructor; purity rules treat its
            # self-assignments as local, not shared, state).
            init = self._method_on_class(resolved, "__init__")
            return init
        return resolved

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------
    def resolve(self, mod: ModuleInfo, dotted: str,
                _seen: set[str] | None = None) -> str | None:
        """Resolve a dotted name used in ``mod`` to a definition qualname
        (function, method, or class), following imports and re-exports."""
        seen = _seen if _seen is not None else set()
        head, _, rest = dotted.partition(".")
        if head in mod.defs:
            target = mod.defs[head]
            if not rest:
                return target
            if target in self.classes and "." not in rest:
                return self._method_on_class(target, rest)
            return None
        if head in mod.imports:
            target = mod.imports[head] + (f".{rest}" if rest else "")
            return self._resolve_absolute(target, seen)
        return None

    def _resolve_absolute(self, dotted: str,
                          seen: set[str]) -> str | None:
        if dotted in seen:
            return None
        seen.add(dotted)
        if dotted in self.functions:
            return dotted
        if dotted in self.classes:
            return dotted
        prefix, _, last = dotted.rpartition(".")
        if prefix in self.classes:
            return self._method_on_class(prefix, last)
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            mod_name = ".".join(parts[:i])
            if mod_name in self.modules:
                rest = ".".join(parts[i:])
                return self.resolve(self.modules[mod_name], rest, seen)
        return None

    def _method_on_class(self, class_qual: str, method: str,
                         _seen: set[str] | None = None) -> str | None:
        """Find ``method`` on a class or its project-defined bases."""
        seen = _seen if _seen is not None else set()
        if class_qual in seen:
            return None
        seen.add(class_qual)
        cls = self.classes.get(class_qual)
        if cls is None:
            return None
        if method in cls.methods:
            return cls.methods[method]
        mod = self.modules.get(cls.module)
        for base in cls.bases:
            base_qual = self.resolve(mod, base) if mod is not None else None
            if base_qual in self.classes:
                found = self._method_on_class(base_qual, method, seen)
                if found is not None:
                    return found
        return None

    # ------------------------------------------------------------------
    # backend submit sites
    # ------------------------------------------------------------------
    def _maybe_submit_site(self, mod: ModuleInfo, info: FunctionInfo,
                           call: ast.Call) -> None:
        func = call.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in SUBMIT_METHODS):
            return
        receiver = _dotted(func.value) or ""
        lowered = receiver.lower()
        if "backend" not in lowered and not (func.attr == "submit"
                                             and "pool" in lowered):
            return
        if not call.args:
            return
        fn_arg = call.args[0]
        if isinstance(fn_arg, ast.Starred):
            return
        task, problem = self._classify_task_arg(mod, info, fn_arg)
        self._submit_sites.append(SubmitSite(
            caller=info, call=call, method=func.attr, fn_arg=fn_arg,
            task=task, problem=problem))

    def _classify_task_arg(self, mod: ModuleInfo, info: FunctionInfo,
                           arg: ast.AST) -> tuple[str | None, str | None]:
        if isinstance(arg, ast.Lambda):
            return None, ("a lambda cannot be pickled by reference; "
                          "define a module-level task function")
        if isinstance(arg, ast.Name):
            # a nested def in the calling function?
            if not info.is_module_body:
                for stmt in ast.walk(info.node):
                    if (isinstance(stmt, (ast.FunctionDef,
                                          ast.AsyncFunctionDef))
                            and stmt is not info.node
                            and stmt.name == arg.id):
                        return (f"{info.qualname}.<locals>.{arg.id}",
                                "a nested function cannot be pickled by "
                                "reference; move it to module level")
            resolved = self.resolve(mod, arg.id)
            if resolved is not None and resolved in self.functions:
                fi = self.functions[resolved]
                if fi.class_name is not None:
                    return resolved, ("a method is not a picklable "
                                      "module-level callable; use a "
                                      "module-level task function")
                if fi.is_nested:
                    return resolved, ("a nested function cannot be pickled "
                                      "by reference; move it to module "
                                      "level")
                return resolved, None
            return None, None  # parameter/local callable: nothing provable
        if isinstance(arg, ast.Attribute):
            dotted = _dotted(arg)
            root = dotted.split(".")[0] if dotted else None
            if dotted is not None:
                resolved = self.resolve(mod, dotted)
                if resolved is not None and resolved in self.functions:
                    fi = self.functions[resolved]
                    if fi.class_name is None and not fi.is_nested:
                        return resolved, None
                    return resolved, ("a bound method is not picklable by "
                                      "reference; submit a module-level "
                                      "task function")
            if root is not None and root in mod.imports:
                return None, None  # attribute of an imported module: fine
            return None, ("a bound method or instance attribute is not a "
                          "picklable module-level callable; submit a "
                          "module-level task function")
        return None, ("backend tasks must be named module-level functions "
                      "(pickled by reference), not computed expressions")

    def _resolve_submit_sites(self) -> None:
        # sites are discovered during edge building; tasks also become
        # call edges so reachability flows through the submit boundary.
        for site in self._submit_sites:
            if site.task is not None and site.task in self.functions:
                self.calls.setdefault(site.caller.qualname, []).append(
                    (site.task, site.call))

    def submit_sites(self) -> list[SubmitSite]:
        """Every backend submit call site found in the analyzed files."""
        return list(self._submit_sites)

    def task_functions(self) -> dict[str, SubmitSite]:
        """Resolved task functions handed to a backend, by qualname."""
        tasks: dict[str, SubmitSite] = {}
        for site in self._submit_sites:
            if site.task is not None and site.task in self.functions:
                tasks.setdefault(site.task, site)
        return tasks

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def reachable(self, roots: Iterable[str],
                  ) -> dict[str, tuple[str, ...]]:
        """Functions reachable from ``roots`` (roots included), mapped to
        the shortest discovered call path ``(root, ..., function)``."""
        paths: dict[str, tuple[str, ...]] = {}
        queue: list[str] = []
        for root in roots:
            if root in self.functions and root not in paths:
                paths[root] = (root,)
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for callee, _node in self.calls.get(current, ()):
                if callee in paths or callee not in self.functions:
                    continue
                paths[callee] = paths[current] + (callee,)
                queue.append(callee)
        return paths

    def call_path_names(self, path: tuple[str, ...]) -> str:
        """Render a qualname path with human-readable short names."""
        return " -> ".join(self.functions[q].short if q in self.functions
                           else q for q in path)

    def functions_under(self, dir_name: str) -> Iterator[FunctionInfo]:
        """Functions whose file lives under a directory named
        ``dir_name`` (package anchor for rule roots)."""
        for info in self.functions.values():
            if dir_name in info.src.path.parts:
                yield info
