"""``python -m repro.analysis`` — the determinism linter's front door.

Usage::

    python -m repro.analysis src/repro              # lint the tree
    python -m repro.analysis --select DET001 src    # one rule only
    python -m repro.analysis --format json src      # machine-readable
    python -m repro.analysis --list-rules           # rule catalogue

Exit codes: 0 clean, 1 violations found, 2 usage error.  CI runs this as
a gate (see ``.github/workflows/ci.yml``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .engine import run_analysis
from .reporters import REPORTERS
from .rules import ALL_RULES

__all__ = ["main", "build_parser"]

DEFAULT_PATH = "src/repro"


def _rule_ids(value: str) -> list[str]:
    return [part.strip() for part in value.split(",") if part.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="Determinism linter for the repro codebase "
                    "(DET001 ambient nondeterminism, DET002 unordered "
                    "aggregation, PURE001 impure cost models, CFG001 "
                    "unreachable config fields, RACE001/RACE002 backend "
                    "task contract, NOQA001 unused suppressions); "
                    "DET002/PURE001/RACE scope is derived from a "
                    "project-wide call graph, not file lists")
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="files or directories to lint "
                             f"(default: {DEFAULT_PATH})")
    parser.add_argument("--select", type=_rule_ids, default=None,
                        metavar="RULES",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--ignore", type=_rule_ids, default=None,
                        metavar="RULES",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--format", choices=sorted(REPORTERS),
                        default="text", help="output format")
    parser.add_argument("--no-unused-noqa", action="store_false",
                        dest="unused_noqa",
                        help="skip the NOQA001 unused-suppression audit")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.summary}")
        return 0
    paths = args.paths or [DEFAULT_PATH]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"repro.analysis: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    try:
        result = run_analysis(paths, select=args.select, ignore=args.ignore,
                              unused_noqa=args.unused_noqa)
    except KeyError as exc:
        print(f"repro.analysis: {exc.args[0]}", file=sys.stderr)
        return 2
    print(REPORTERS[args.format](result))
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
