"""The lint driver: file collection, parsing, suppression, rule dispatch.

:func:`run_analysis` is the single entry point used by the CLI, the CI
gate, and the tests.  It walks the given paths, parses every ``*.py``
file once, builds one project-wide call graph when any selected rule
needs it (:class:`~repro.analysis.rules.CallGraphRule`), applies the
selected rules, and filters diagnostics through per-line
``# repro: noqa[RULE]`` suppressions:

* ``# repro: noqa`` — suppress every rule on this line;
* ``# repro: noqa[DET001]`` — suppress one rule;
* ``# repro: noqa[DET001,PURE001]`` — suppress several.

Suppressions are matched against the *first physical line* of the
flagged statement, the same convention flake8/ruff use.

After the other rules run, the engine audits the suppressions themselves
(``NOQA001``): a ``noqa`` comment that silenced nothing this run —
because the rule was rescoped, the code was fixed, or the rule id is a
typo — is reported as an unused suppression.  Opt out with
``unused_noqa=False`` (CLI: ``--no-unused-noqa``).  Bare ``# repro:
noqa`` comments are only audited on full runs (no ``select``/``ignore``),
since a partial run cannot know whether an unselected rule needs them.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .callgraph import CallGraph
from .rules import (ALL_RULES, CallGraphRule, ProjectRule, Rule,
                    rule_registry)
from .violations import PARSE_RULE_ID, Violation

__all__ = ["SourceFile", "AnalysisResult", "run_analysis", "collect_files",
           "load_source", "parse_noqa"]

#: The suppression comment — ``repro: noqa`` after a hash, with an
#: optional bracketed rule list.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[\s*(?P<rules>[A-Za-z0-9_,\s]*?)\s*\])?")

#: Sentinel for "all rules suppressed on this line".
_ALL = frozenset({"*"})

#: Rule id of the engine-implemented unused-suppression audit.
_NOQA_RULE_ID = "NOQA001"


@dataclass
class SourceFile:
    """One parsed file plus its suppression map."""

    path: Path
    text: str
    tree: ast.Module
    #: line number -> rule ids suppressed there ({"*"} = every rule).
    noqa: dict[int, frozenset[str]] = field(default_factory=dict)

    def suppresses(self, line: int, rule: str) -> bool:
        rules = self.noqa.get(line)
        if rules is None:
            return False
        return rules is _ALL or "*" in rules or rule in rules


def _comment_lines(text: str) -> Iterator[tuple[int, str]]:
    """Yield ``(lineno, comment_text)`` for every real COMMENT token.

    Tokenizing (rather than regex-scanning raw lines) keeps docstrings
    and string literals that merely *mention* ``# repro: noqa`` from
    registering as suppressions — which matters now that NOQA001 audits
    every suppression it finds.  Falls back to treating every line as a
    potential comment if the text does not tokenize (callers normally
    parse with :mod:`ast` first, so this is rare).
    """
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        yield from enumerate(text.splitlines(), start=1)
        return
    for token in tokens:
        if token.type == tokenize.COMMENT:
            yield token.start[0], token.string


def parse_noqa(text: str) -> dict[int, frozenset[str]]:
    """Extract the per-line suppression map from source comments."""
    suppressions: dict[int, frozenset[str]] = {}
    for lineno, comment in _comment_lines(text):
        match = _NOQA_RE.search(comment)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressions[lineno] = _ALL
        else:
            ids = frozenset(r.strip() for r in rules.split(",") if r.strip())
            suppressions[lineno] = ids if ids else _ALL
    return suppressions


def load_source(path: Path) -> SourceFile | Violation:
    """Parse one file; returns a :data:`PARSE_RULE_ID` violation on
    syntax errors instead of raising."""
    text = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        return Violation(path=path, line=exc.lineno or 1,
                         col=(exc.offset or 1), rule=PARSE_RULE_ID,
                         message=f"file does not parse: {exc.msg}")
    return SourceFile(path=path, text=text, tree=tree,
                      noqa=parse_noqa(text))


def collect_files(paths: Iterable[Path]) -> list[Path]:
    """Expand directories to sorted ``*.py`` file lists."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(p for p in path.rglob("*.py")
                                if p.is_file()))
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return files


@dataclass
class AnalysisResult:
    """Everything one lint run produced."""

    violations: list[Violation]
    suppressed: list[Violation]
    files_checked: int
    rules_run: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


def _select_rules(select: Sequence[str] | None,
                  ignore: Sequence[str] | None) -> list[Rule]:
    registry = rule_registry()
    if select:
        unknown = [r for r in select if r not in registry]
        if unknown:
            raise KeyError(f"unknown rule id(s): {', '.join(unknown)}; "
                           f"known: {', '.join(sorted(registry))}")
        chosen = [registry[r] for r in select]
    else:
        chosen = list(ALL_RULES)
    if ignore:
        unknown = [r for r in ignore if r not in registry]
        if unknown:
            raise KeyError(f"unknown rule id(s): {', '.join(unknown)}; "
                           f"known: {', '.join(sorted(registry))}")
        chosen = [rule for rule in chosen if rule.id not in set(ignore)]
    return chosen


def _noqa_column(src: SourceFile, line: int) -> int:
    """1-based column of the ``# repro: noqa`` comment on ``line``."""
    lines = src.text.splitlines()
    if 1 <= line <= len(lines):
        match = _NOQA_RE.search(lines[line - 1])
        if match is not None:
            return match.start() + 1
    return 1


def _unused_suppressions(files: list[SourceFile],
                         suppressed: list[Violation],
                         active_ids: frozenset[str],
                         full_run: bool) -> Iterator[Violation]:
    """The NOQA001 audit: suppressions that silenced nothing this run.

    * a bracketed id that no diagnostic on that line matched is stale
      (only judged for rules that actually ran — a partial ``--select``
      run says nothing about the others);
    * a bracketed id that is not a registered rule at all can never
      suppress anything and is reported on every run;
    * a bare ``# repro: noqa`` that matched nothing is stale, but only a
      full run can tell.
    """
    registry_ids = frozenset(rule_registry())
    used: dict[tuple[Path, int], set[str]] = {}
    for violation in suppressed:
        used.setdefault((violation.path, violation.line),
                        set()).add(violation.rule)
    for src in files:
        for line, ids in sorted(src.noqa.items()):
            used_here = used.get((src.path, line), set())
            col = _noqa_column(src, line)
            if ids is _ALL or "*" in ids:
                if full_run and not used_here:
                    yield Violation(
                        path=src.path, line=line, col=col,
                        rule=_NOQA_RULE_ID,
                        message=("unused suppression: bare '# repro: "
                                 "noqa' silences nothing on this line; "
                                 "remove it"))
                continue
            for rule_id in sorted(ids):
                if rule_id in used_here:
                    continue
                if rule_id not in registry_ids:
                    yield Violation(
                        path=src.path, line=line, col=col,
                        rule=_NOQA_RULE_ID,
                        message=(f"suppression names unknown rule "
                                 f"'{rule_id}'; it can never silence "
                                 "anything (typo?)"))
                elif rule_id in active_ids:
                    yield Violation(
                        path=src.path, line=line, col=col,
                        rule=_NOQA_RULE_ID,
                        message=(f"unused suppression: {rule_id} is not "
                                 "triggered on this line; remove the "
                                 "noqa (stale suppressions eat the next "
                                 "real diagnostic)"))


def run_analysis(paths: Iterable[Path | str],
                 select: Sequence[str] | None = None,
                 ignore: Sequence[str] | None = None,
                 unused_noqa: bool = True) -> AnalysisResult:
    """Lint ``paths`` with the selected rules; see the module docstring."""
    rules = _select_rules(select, ignore)
    files: list[SourceFile] = []
    raw: list[Violation] = []
    for path in collect_files(Path(p) for p in paths):
        loaded = load_source(path)
        if isinstance(loaded, Violation):
            raw.append(loaded)
            continue
        files.append(loaded)

    graph: CallGraph | None = None
    if any(isinstance(rule, CallGraphRule) for rule in rules):
        graph = CallGraph(files)

    by_path = {src.path: src for src in files}
    for src in files:
        for rule in rules:
            if isinstance(rule, (ProjectRule, CallGraphRule)):
                continue
            if rule.applies_to(src.path):
                raw.extend(rule.check(src))
    for rule in rules:
        if isinstance(rule, CallGraphRule):
            assert graph is not None
            raw.extend(rule.check_graph(graph))
        elif isinstance(rule, ProjectRule):
            raw.extend(rule.check_project(files))

    kept: list[Violation] = []
    suppressed: list[Violation] = []
    for violation in raw:
        src = by_path.get(violation.path)
        if (src is not None and violation.rule != PARSE_RULE_ID
                and src.suppresses(violation.line, violation.rule)):
            suppressed.append(violation)
        else:
            kept.append(violation)

    # The suppression audit runs after everything else: only now is it
    # known which noqa comments earned their keep.  Its diagnostics can
    # be allowlisted, but only by naming NOQA001 *explicitly* in the
    # bracket — a bare suppression must not silence the audit of itself,
    # or unused bare suppressions could never be reported.
    active_ids = frozenset(rule.id for rule in rules)
    if unused_noqa and _NOQA_RULE_ID in active_ids:
        full_run = select is None and ignore is None
        for violation in _unused_suppressions(files, suppressed,
                                              active_ids, full_run):
            ids = by_path[violation.path].noqa.get(violation.line)
            if ids is not None and _NOQA_RULE_ID in ids:
                suppressed.append(violation)
            else:
                kept.append(violation)

    kept.sort()
    suppressed.sort()
    return AnalysisResult(violations=kept, suppressed=suppressed,
                          files_checked=len(files),
                          rules_run=tuple(rule.id for rule in rules))
