"""The lint driver: file collection, parsing, suppression, rule dispatch.

:func:`run_analysis` is the single entry point used by the CLI, the CI
gate, and the tests.  It walks the given paths, parses every ``*.py``
file once, applies the selected rules, and filters diagnostics through
per-line ``# repro: noqa[RULE]`` suppressions:

* ``# repro: noqa`` — suppress every rule on this line;
* ``# repro: noqa[DET001]`` — suppress one rule;
* ``# repro: noqa[DET001,PURE001]`` — suppress several.

Suppressions are matched against the *first physical line* of the
flagged statement, the same convention flake8/ruff use.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .rules import ALL_RULES, ProjectRule, Rule, rule_registry
from .violations import PARSE_RULE_ID, Violation

__all__ = ["SourceFile", "AnalysisResult", "run_analysis", "collect_files",
           "load_source", "parse_noqa"]

#: ``# repro: noqa`` with an optional bracketed rule list.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[\s*(?P<rules>[A-Za-z0-9_,\s]*?)\s*\])?")

#: Sentinel for "all rules suppressed on this line".
_ALL = frozenset({"*"})


@dataclass
class SourceFile:
    """One parsed file plus its suppression map."""

    path: Path
    text: str
    tree: ast.Module
    #: line number -> rule ids suppressed there ({"*"} = every rule).
    noqa: dict[int, frozenset[str]] = field(default_factory=dict)

    def suppresses(self, line: int, rule: str) -> bool:
        rules = self.noqa.get(line)
        if rules is None:
            return False
        return rules is _ALL or "*" in rules or rule in rules


def parse_noqa(text: str) -> dict[int, frozenset[str]]:
    """Extract the per-line suppression map from source text."""
    suppressions: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressions[lineno] = _ALL
        else:
            ids = frozenset(r.strip() for r in rules.split(",") if r.strip())
            suppressions[lineno] = ids if ids else _ALL
    return suppressions


def load_source(path: Path) -> SourceFile | Violation:
    """Parse one file; returns a :data:`PARSE_RULE_ID` violation on
    syntax errors instead of raising."""
    text = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        return Violation(path=path, line=exc.lineno or 1,
                         col=(exc.offset or 1), rule=PARSE_RULE_ID,
                         message=f"file does not parse: {exc.msg}")
    return SourceFile(path=path, text=text, tree=tree,
                      noqa=parse_noqa(text))


def collect_files(paths: Iterable[Path]) -> list[Path]:
    """Expand directories to sorted ``*.py`` file lists."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(p for p in path.rglob("*.py")
                                if p.is_file()))
        elif path.is_file():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return files


@dataclass
class AnalysisResult:
    """Everything one lint run produced."""

    violations: list[Violation]
    suppressed: list[Violation]
    files_checked: int
    rules_run: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


def _select_rules(select: Sequence[str] | None,
                  ignore: Sequence[str] | None) -> list[Rule]:
    registry = rule_registry()
    if select:
        unknown = [r for r in select if r not in registry]
        if unknown:
            raise KeyError(f"unknown rule id(s): {', '.join(unknown)}; "
                           f"known: {', '.join(sorted(registry))}")
        chosen = [registry[r] for r in select]
    else:
        chosen = list(ALL_RULES)
    if ignore:
        unknown = [r for r in ignore if r not in registry]
        if unknown:
            raise KeyError(f"unknown rule id(s): {', '.join(unknown)}; "
                           f"known: {', '.join(sorted(registry))}")
        chosen = [rule for rule in chosen if rule.id not in set(ignore)]
    return chosen


def run_analysis(paths: Iterable[Path | str],
                 select: Sequence[str] | None = None,
                 ignore: Sequence[str] | None = None) -> AnalysisResult:
    """Lint ``paths`` with the selected rules; see the module docstring."""
    rules = _select_rules(select, ignore)
    files: list[SourceFile] = []
    raw: list[Violation] = []
    for path in collect_files(Path(p) for p in paths):
        loaded = load_source(path)
        if isinstance(loaded, Violation):
            raw.append(loaded)
            continue
        files.append(loaded)

    by_path = {src.path: src for src in files}
    for src in files:
        for rule in rules:
            if isinstance(rule, ProjectRule):
                continue
            if rule.applies_to(src.path):
                raw.extend(rule.check(src))
    for rule in rules:
        if isinstance(rule, ProjectRule):
            raw.extend(rule.check_project(files))

    kept: list[Violation] = []
    suppressed: list[Violation] = []
    for violation in raw:
        src = by_path.get(violation.path)
        if (src is not None and violation.rule != PARSE_RULE_ID
                and src.suppresses(violation.line, violation.rule)):
            suppressed.append(violation)
        else:
            kept.append(violation)
    kept.sort()
    suppressed.sort()
    return AnalysisResult(violations=kept, suppressed=suppressed,
                          files_checked=len(files),
                          rules_run=tuple(rule.id for rule in rules))
