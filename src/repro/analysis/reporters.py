"""Render an :class:`~repro.analysis.engine.AnalysisResult` for humans/CI.

Two formats:

* ``text`` — one ``path:line:col: RULE message`` diagnostic per line plus
  a one-line summary (what CI prints on failure);
* ``json`` — a machine-readable document with the full violation list,
  suppression count, and per-rule totals (for dashboards or tooling).
"""

from __future__ import annotations

import json
from collections import Counter

from .engine import AnalysisResult

__all__ = ["render_text", "render_json", "REPORTERS"]


def render_text(result: AnalysisResult) -> str:
    lines = [violation.format() for violation in result.violations]
    noun = "violation" if len(result.violations) == 1 else "violations"
    summary = (f"{len(result.violations)} {noun} "
               f"({len(result.suppressed)} suppressed) in "
               f"{result.files_checked} files "
               f"[rules: {', '.join(result.rules_run)}]")
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    per_rule = Counter(v.rule for v in result.violations)
    document = {
        "violations": [v.to_dict() for v in result.violations],
        "suppressed": [v.to_dict() for v in result.suppressed],
        "files_checked": result.files_checked,
        "rules_run": list(result.rules_run),
        "counts_by_rule": dict(sorted(per_rule.items())),
        "ok": result.ok,
    }
    return json.dumps(document, indent=2, sort_keys=True)


REPORTERS = {"text": render_text, "json": render_json}
