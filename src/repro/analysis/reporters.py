"""Render an :class:`~repro.analysis.engine.AnalysisResult` for humans/CI.

Three formats:

* ``text`` — one ``path:line:col: RULE message`` diagnostic per line plus
  a one-line summary (what CI prints on failure);
* ``json`` — a machine-readable document with the full violation list,
  suppression count, and per-rule totals (for dashboards or tooling);
* ``sarif`` — SARIF 2.1.0, the interchange format code-scanning UIs
  ingest, so findings annotate the exact lines of a PR diff.  CI uploads
  this via ``github/codeql-action/upload-sarif``.
"""

from __future__ import annotations

import json
from collections import Counter

from .engine import AnalysisResult
from .rules import rule_registry
from .violations import PARSE_RULE_ID

__all__ = ["render_text", "render_json", "render_sarif", "REPORTERS"]

_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                 "master/Schemata/sarif-schema-2.1.0.json")


def render_text(result: AnalysisResult) -> str:
    lines = [violation.format() for violation in result.violations]
    noun = "violation" if len(result.violations) == 1 else "violations"
    summary = (f"{len(result.violations)} {noun} "
               f"({len(result.suppressed)} suppressed) in "
               f"{result.files_checked} files "
               f"[rules: {', '.join(result.rules_run)}]")
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    per_rule = Counter(v.rule for v in result.violations)
    document = {
        "violations": [v.to_dict() for v in result.violations],
        "suppressed": [v.to_dict() for v in result.suppressed],
        "files_checked": result.files_checked,
        "rules_run": list(result.rules_run),
        "counts_by_rule": dict(sorted(per_rule.items())),
        "ok": result.ok,
    }
    return json.dumps(document, indent=2, sort_keys=True)


def _sarif_rules(result: AnalysisResult) -> list[dict]:
    """Tool-driver rule metadata for every rule that ran (plus the parse
    pseudo-rule if it fired)."""
    registry = rule_registry()
    descriptors = []
    ids = list(result.rules_run)
    if any(v.rule == PARSE_RULE_ID for v in result.violations):
        ids.append(PARSE_RULE_ID)
    for rule_id in ids:
        rule = registry.get(rule_id)
        summary = (rule.summary if rule is not None
                   else "file does not parse")
        descriptors.append({
            "id": rule_id,
            "shortDescription": {"text": summary},
            "defaultConfiguration": {"level": "error"},
        })
    return descriptors


def render_sarif(result: AnalysisResult) -> str:
    """SARIF 2.1.0 — suppressed diagnostics are included with a
    ``suppressions`` entry so scanning UIs show them as dismissed rather
    than dropping them on the floor."""
    results = []
    for violation in result.violations:
        results.append(_sarif_result(violation))
    for violation in result.suppressed:
        entry = _sarif_result(violation)
        entry["suppressions"] = [{
            "kind": "inSource",
            "justification": "# repro: noqa",
        }]
        results.append(entry)
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro.analysis",
                    "informationUri":
                        "https://example.invalid/repro/docs/static_analysis",
                    "rules": _sarif_rules(result),
                },
            },
            "results": results,
        }],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def _sarif_result(violation) -> dict:
    return {
        "ruleId": violation.rule,
        "level": "error",
        "message": {"text": violation.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": str(violation.path).replace("\\", "/"),
                },
                "region": {
                    "startLine": violation.line,
                    "startColumn": violation.col,
                },
            },
        }],
    }


REPORTERS = {"text": render_text, "json": render_json,
             "sarif": render_sarif}
