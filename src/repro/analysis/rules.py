"""Lint rules tuned to this codebase's reproducibility invariants.

The repo's central promise — same seed, same weights, bit-for-bit, no
matter what faults or refactors happen — is only as strong as the code
paths nobody happened to test.  These rules encode the invariants as
static checks:

* :class:`AmbientNondeterminism` (``DET001``) — no unseeded randomness or
  wall-clock reads anywhere in ``src/repro``; all randomness must arrive
  as a ``numpy.random.Generator`` parameter derived from a
  ``SeedSequence`` (see ``DistributedTrainer._worker_rngs``).  One scoped
  carve-out: the profiling package ``repro/perf/`` *measures* wall-clock
  time by design, so the wall-clock/date diagnostics are suppressed
  there — structurally, by rule scoping, not by ``noqa`` comments — while
  the RNG diagnostics still apply in full.
* :class:`UnorderedIteration` (``DET002``) — no iteration over ``set`` /
  ``frozenset`` values on the aggregation paths (``engine/aggregation``,
  ``collectives/``, ``ps/``, the execution backend ``engine/backend.py``
  and its worker tasks ``core/worker.py``): float addition is not
  associative, so a hash-order dependent accumulation silently changes
  the numerics.
* :class:`ImpureCostModel` (``PURE001``) — cost-model pricing methods
  (``seconds``, ``*_seconds``, ``timing``) must not mutate state; pricing
  a phase twice must cost the same both times.  Scoped out of
  ``repro/perf/``: its timing accessors report *measured* wall-clock
  aggregates, not simulated prices, and accumulate by design.
* :class:`ConfigReachability` (``CFG001``) — every ``TrainerConfig``
  field must be reachable from the CLI (or explicitly allowlisted), so
  new knobs cannot silently become dead code.

Rules are pluggable: subclass :class:`Rule` (or :class:`ProjectRule` for
cross-file checks), give it a unique ``id``, and add it to
:data:`ALL_RULES`.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

from .violations import Violation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .engine import SourceFile

__all__ = ["Rule", "ProjectRule", "ALL_RULES", "rule_registry",
           "AmbientNondeterminism", "UnorderedIteration",
           "ImpureCostModel", "ConfigReachability"]


class Rule:
    """A single-file lint rule.

    Subclasses set ``id`` / ``summary`` and implement :meth:`check`;
    :meth:`applies_to` narrows the rule to the files whose invariants it
    guards.
    """

    id: str = "RULE000"
    summary: str = ""

    def applies_to(self, path: Path) -> bool:
        return True

    def check(self, src: "SourceFile") -> Iterator[Violation]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def violation(self, src: "SourceFile", node: ast.AST,
                  message: str) -> Violation:
        return Violation(path=src.path, line=node.lineno,
                         col=node.col_offset + 1, rule=self.id,
                         message=message)


class ProjectRule(Rule):
    """A rule that needs to see every linted file at once (cross-file)."""

    def check(self, src: "SourceFile") -> Iterator[Violation]:
        return iter(())

    def check_project(self,
                      files: "list[SourceFile]") -> Iterator[Violation]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------
def _import_aliases(tree: ast.AST) -> dict[str, str]:
    """Map local names to the dotted module paths they were imported as.

    ``import numpy as np`` maps ``np -> numpy``; ``from datetime import
    datetime`` maps ``datetime -> datetime.datetime``; plain ``import
    random`` maps ``random -> random``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports never bind external modules
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}")
    return aliases


def _dotted_name(node: ast.AST) -> str | None:
    """Flatten ``a.b.c`` attribute chains to ``"a.b.c"`` (else None)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _resolve(dotted: str | None, aliases: dict[str, str]) -> str | None:
    """Rewrite the first component of a dotted name through the imports."""
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    if head not in aliases:
        return None  # a local variable, not an imported module
    resolved = aliases[head]
    return f"{resolved}.{rest}" if rest else resolved


def _attribute_root(node: ast.AST) -> str | None:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


# ----------------------------------------------------------------------
# DET001 — ambient nondeterminism
# ----------------------------------------------------------------------
class AmbientNondeterminism(Rule):
    """No unseeded RNGs or wall-clock reads in ``src/repro``.

    The wall-clock and ambient-date diagnostics are suppressed inside
    ``repro/perf/`` — the profiling package's whole purpose is measuring
    wall-clock time, and confining ``time.perf_counter`` there is exactly
    the invariant this scoping enforces.  The RNG diagnostics still apply
    to ``perf`` files: profiling must never introduce ambient randomness.
    """

    id = "DET001"
    summary = ("ambient nondeterminism: randomness must arrive as a "
               "seeded numpy Generator parameter; wall-clock reads are "
               "forbidden (the simulated clock is the only clock; "
               "measured wall time lives only in repro/perf/)")

    #: Legacy global-state samplers on ``numpy.random`` (the module-level
    #: RandomState, shared and order-dependent).
    LEGACY_NP_RANDOM = frozenset({
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "shuffle", "permutation", "uniform", "normal",
        "standard_normal", "beta", "binomial", "exponential", "poisson",
        "get_state", "set_state", "bytes",
    })
    WALL_CLOCKS = frozenset({
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    })
    AMBIENT_DATES = frozenset({
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    })

    @staticmethod
    def _wall_clock_exempt(path: Path) -> bool:
        """True for the profiling package (measures wall time by design)."""
        return "perf" in path.parts

    def check(self, src: "SourceFile") -> Iterator[Violation]:
        aliases = _import_aliases(src.tree)
        wall_ok = self._wall_clock_exempt(src.path)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _resolve(_dotted_name(node.func), aliases)
            if name is None:
                continue
            if wall_ok and (name in self.WALL_CLOCKS
                            or name in self.AMBIENT_DATES):
                continue
            message = self._diagnose(name, node)
            if message is not None:
                yield self.violation(src, node, message)

    def _diagnose(self, name: str, call: ast.Call) -> str | None:
        if name == "random" or name.startswith("random."):
            return (f"call to stdlib '{name}' uses the ambient global RNG; "
                    "take a numpy Generator parameter spawned from a "
                    "SeedSequence instead")
        if name == "numpy.random.seed":
            return ("numpy.random.seed mutates the global RNG; pass "
                    "seeded Generators explicitly")
        if name == "numpy.random.default_rng" and not (call.args
                                                       or call.keywords):
            return ("default_rng() without a seed is nondeterministic; "
                    "derive the seed from config.seed via SeedSequence")
        if name.startswith("numpy.random."):
            attr = name.rsplit(".", 1)[1]
            if attr in self.LEGACY_NP_RANDOM:
                return (f"numpy.random.{attr} samples from the shared "
                        "legacy RandomState; use a Generator parameter")
        if name in self.WALL_CLOCKS:
            return (f"'{name}' reads the wall clock; simulated time "
                    "(engine.now) is the only clock allowed in repro")
        if name in self.AMBIENT_DATES:
            return (f"'{name}' is wall-clock dependent; thread timestamps "
                    "in explicitly if they are needed")
        return None


# ----------------------------------------------------------------------
# DET002 — unordered iteration on aggregation paths
# ----------------------------------------------------------------------
class UnorderedIteration(Rule):
    """No iteration over sets where numeric accumulation happens.

    Scope: the collectives package (including the sparse wire format in
    ``collectives/sparse.py``, where iterating a *set* of coordinate
    indices would scramble payload order, and the topology collectives in
    ``collectives/hierarchical.py`` / ``collectives/innetwork.py``, where
    group traversal order is message order), the parameter-server
    package, the engine's aggregation/driver cost path (which now also
    carries per-message wire accounting), the execution-backend fan-out
    path (``engine/backend.py`` + ``core/worker.py``, where result order
    is what keeps parallel backends bit-identical to serial), and the
    cluster placement/network layer (``cluster/cluster.py`` +
    ``cluster/network.py``, where executor-group order fixes the two-tier
    message schedule).
    """

    id = "DET002"
    summary = ("iteration over set/frozenset on an aggregation path: "
               "hash order is not a reduction order — float addition "
               "does not commute bit-exactly; sort first")

    def applies_to(self, path: Path) -> bool:
        parts = path.parts
        return ("collectives" in parts or "ps" in parts
                or path.name in ("aggregation.py", "driver.py",
                                 "backend.py", "worker.py",
                                 "cluster.py", "network.py"))

    def check(self, src: "SourceFile") -> Iterator[Violation]:
        for node in ast.walk(src.tree):
            iters: list[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._is_unordered(it):
                    yield self.violation(
                        src, it,
                        "iterating a set here makes the reduction order "
                        "hash-dependent; iterate a sorted() or list view "
                        "instead")

    @staticmethod
    def _is_unordered(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False


# ----------------------------------------------------------------------
# PURE001 — cost-model pricing must be pure
# ----------------------------------------------------------------------
class ImpureCostModel(Rule):
    """``seconds()`` / ``*_seconds()`` / ``timing()`` must not mutate.

    Scoped out of ``repro/perf/``: the profiler's timing accessors report
    measured wall-clock aggregates (not simulated prices) and accumulate
    state by design — they are measurements, not a cost model.
    """

    id = "PURE001"
    summary = ("cost-model pricing methods must be pure: pricing the "
               "same phase twice must return the same seconds")

    def applies_to(self, path: Path) -> bool:
        return "perf" not in path.parts

    MUTATORS = frozenset({
        "append", "extend", "add", "update", "insert", "remove", "discard",
        "pop", "popitem", "clear", "setdefault", "sort", "reverse",
        "setflags", "fill",
    })

    @staticmethod
    def _is_pricing_name(name: str) -> bool:
        return (name in ("seconds", "timing")
                or name.endswith("_seconds"))

    def check(self, src: "SourceFile") -> Iterator[Violation]:
        for node in ast.walk(src.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if not self._is_pricing_name(node.name):
                continue
            yield from self._check_body(src, node)

    def _check_body(self, src: "SourceFile",
                    func: ast.AST) -> Iterator[Violation]:
        for node in ast.walk(func):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                yield self.violation(
                    src, node, "pricing code must not rebind "
                    f"{'/'.join(node.names)} outside its own scope")
            elif isinstance(node, ast.Assign):
                yield from self._check_targets(src, node, node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                if node.target is not None:
                    yield from self._check_targets(src, node, [node.target])
            elif isinstance(node, ast.Call):
                yield from self._check_mutator_call(src, node)

    def _check_targets(self, src: "SourceFile", stmt: ast.AST,
                       targets: Iterable[ast.AST]) -> Iterator[Violation]:
        for target in targets:
            for sub in ast.walk(target):
                if (isinstance(sub, ast.Attribute)
                        and _attribute_root(sub) == "self"):
                    yield self.violation(
                        src, stmt,
                        f"assignment to self.{sub.attr} inside a pricing "
                        "method mutates cost-model state")
                    break

    def _check_mutator_call(self, src: "SourceFile",
                            call: ast.Call) -> Iterator[Violation]:
        func = call.func
        if (isinstance(func, ast.Attribute)
                and func.attr in self.MUTATORS
                and _attribute_root(func.value) == "self"):
            yield self.violation(
                src, call,
                f".{func.attr}() on self state inside a pricing method "
                "mutates cost-model state")


# ----------------------------------------------------------------------
# CFG001 — every TrainerConfig field reachable from the CLI
# ----------------------------------------------------------------------
class ConfigReachability(ProjectRule):
    """Every config-dataclass field must be settable from ``cli.py``."""

    id = "CFG001"
    summary = ("TrainerConfig/ServeConfig fields must be reachable from "
               "the CLI or explicitly allowlisted; unreachable knobs are "
               "dead configuration")

    #: Config dataclasses whose fields the CLI must be able to set.
    CONFIG_CLASSES: tuple[str, ...] = ("TrainerConfig", "ServeConfig")
    #: Fields exempt from CLI reachability (none today; prefer wiring new
    #: fields into the CLI over growing this list).
    ALLOWED: frozenset[str] = frozenset()

    def check_project(self,
                      files: "list[SourceFile]") -> Iterator[Violation]:
        found = self._find_config_classes(files)
        if not found:
            return
        reachable = self._cli_reachable_names(files, found[0][0].path)
        if reachable is None:
            return  # no CLI module found anywhere; nothing to check
        for config_src, config_class in found:
            for name, node in self._dataclass_fields(config_class):
                if name in reachable or name in self.ALLOWED:
                    continue
                yield self.violation(
                    config_src, node,
                    f"{config_class.name}.{name} is not reachable from "
                    "the CLI; add a flag in cli.py, or allowlist it with "
                    "# repro: noqa[CFG001] and a comment")

    # ------------------------------------------------------------------
    def _find_config_classes(
            self, files: "list[SourceFile]",
    ) -> "list[tuple[SourceFile, ast.ClassDef]]":
        found = []
        for src in files:
            for node in ast.walk(src.tree):
                if (isinstance(node, ast.ClassDef)
                        and node.name in self.CONFIG_CLASSES):
                    found.append((src, node))
        return found

    @staticmethod
    def _dataclass_fields(cls: ast.ClassDef,
                          ) -> list[tuple[str, ast.AnnAssign]]:
        fields = []
        for stmt in cls.body:
            if (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and not stmt.target.id.startswith("_")):
                annotation = ast.unparse(stmt.annotation)
                if "ClassVar" in annotation:
                    continue
                fields.append((stmt.target.id, stmt))
        return fields

    def _cli_reachable_names(self, files: "list[SourceFile]",
                             config_path: Path) -> set[str] | None:
        """Names settable from CLI modules: keyword args, dict keys and
        string subscripts anywhere in a ``cli.py``.

        Falls back to ``<package>/cli.py`` next to the config's package
        when the lint set does not include one (e.g. single-file runs).
        """
        trees = [src.tree for src in files if src.path.name == "cli.py"]
        if not trees:
            candidate = config_path.parent.parent / "cli.py"
            if candidate.is_file():
                try:
                    trees = [ast.parse(candidate.read_text())]
                except SyntaxError:
                    return None
        if not trees:
            return None
        names: set[str] = set()
        for tree in trees:
            names |= self._reachable_names(tree)
        return names

    @staticmethod
    def _reachable_names(tree: ast.AST) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.keyword) and node.arg is not None:
                names.add(node.arg)
            elif isinstance(node, ast.Dict):
                for key in node.keys:
                    if (isinstance(key, ast.Constant)
                            and isinstance(key.value, str)):
                        names.add(key.value)
            elif isinstance(node, ast.Subscript):
                sl = node.slice
                if (isinstance(sl, ast.Constant)
                        and isinstance(sl.value, str)):
                    names.add(sl.value)
        return names


#: Registry order is report order for same-position violations.
ALL_RULES: tuple[Rule, ...] = (
    AmbientNondeterminism(),
    UnorderedIteration(),
    ImpureCostModel(),
    ConfigReachability(),
)


def rule_registry() -> dict[str, Rule]:
    """Map rule id -> rule instance for selection by id."""
    return {rule.id: rule for rule in ALL_RULES}
