"""Lint rules tuned to this codebase's reproducibility invariants.

The repo's central promise — same seed, same weights, bit-for-bit, no
matter what faults or refactors happen — is only as strong as the code
paths nobody happened to test.  These rules encode the invariants as
static checks:

* :class:`AmbientNondeterminism` (``DET001``) — no unseeded randomness or
  wall-clock reads anywhere in ``src/repro``; all randomness must arrive
  as a ``numpy.random.Generator`` parameter derived from a
  ``SeedSequence`` (see ``DistributedTrainer._worker_rngs``).  One scoped
  carve-out: the profiling package ``repro/perf/`` *measures* wall-clock
  time by design, so the wall-clock/date diagnostics are suppressed
  there — structurally, by rule scoping, not by ``noqa`` comments — while
  the RNG diagnostics still apply in full.
* :class:`UnorderedIteration` (``DET002``) — no iteration over ``set`` /
  ``frozenset`` values in code that can run inside a collective combine
  or a backend task: float addition is not associative, so a hash-order
  dependent accumulation silently changes the numerics.  The scope is
  **derived from the call graph** (see :mod:`repro.analysis.callgraph`),
  not declared as a file list: every function reachable from a combine
  entry point (the ``collectives``/``ps`` packages) or from a task
  function handed to an execution backend is in scope, wherever it
  lives.
* :class:`ImpureCostModel` (``PURE001``) — cost-model pricing methods
  (``seconds``, ``*_seconds``, ``timing``) must not mutate state; pricing
  a phase twice must cost the same both times.  The check is
  *interprocedural*: a pricing method that calls a helper which mutates
  state or reads ambient RNG/clock is flagged at the call site, with the
  offending path reported (``seconds -> _helper -> list.append``).
  Scoped out of ``repro/perf/``: its timing accessors report *measured*
  wall-clock aggregates, not simulated prices, and accumulate by design.
* :class:`ConfigReachability` (``CFG001``) — every ``TrainerConfig``
  field must be reachable from the CLI (or explicitly allowlisted), so
  new knobs cannot silently become dead code.
* The ``RACE`` family (:mod:`repro.analysis.rules_race`) — backend task
  functions must not touch shared state (``RACE001``) and must be
  picklable module-level callables (``RACE002``).
* :class:`UnusedSuppression` (``NOQA001``) — ``# repro: noqa[RULE]``
  comments that suppress nothing (detected by the engine after the other
  rules run; see :func:`repro.analysis.engine.run_analysis`).

Rules are pluggable: subclass :class:`Rule` (:class:`ProjectRule` for
cross-file checks, :class:`CallGraphRule` for checks scoped by the
project call graph), give it a unique ``id``, and add it to
:data:`ALL_RULES`.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

from .callgraph import CallGraph, FunctionInfo, local_bindings, own_body
from .violations import Violation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .engine import SourceFile

__all__ = ["Rule", "ProjectRule", "CallGraphRule", "ALL_RULES",
           "rule_registry", "AmbientNondeterminism", "UnorderedIteration",
           "ImpureCostModel", "ConfigReachability", "UnusedSuppression",
           "MUTATORS", "shared_state_findings", "ambient_findings"]


class Rule:
    """A single-file lint rule.

    Subclasses set ``id`` / ``summary`` and implement :meth:`check`;
    :meth:`applies_to` narrows the rule to the files whose invariants it
    guards.
    """

    id: str = "RULE000"
    summary: str = ""

    def applies_to(self, path: Path) -> bool:
        return True

    def check(self, src: "SourceFile") -> Iterator[Violation]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def violation(self, src: "SourceFile", node: ast.AST,
                  message: str) -> Violation:
        return Violation(path=src.path, line=node.lineno,
                         col=node.col_offset + 1, rule=self.id,
                         message=message)


class ProjectRule(Rule):
    """A rule that needs to see every linted file at once (cross-file)."""

    def check(self, src: "SourceFile") -> Iterator[Violation]:
        return iter(())

    def check_project(self,
                      files: "list[SourceFile]") -> Iterator[Violation]:
        raise NotImplementedError


class CallGraphRule(Rule):
    """A rule whose scope is derived from the project call graph.

    The engine builds one :class:`~repro.analysis.callgraph.CallGraph`
    per run (over every collected file) and hands it to
    :meth:`check_graph`; per-file dispatch is skipped.
    """

    def check(self, src: "SourceFile") -> Iterator[Violation]:
        return iter(())

    def check_graph(self, graph: CallGraph) -> Iterator[Violation]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------
#: Method names that mutate their receiver in place.
MUTATORS = frozenset({
    "append", "extend", "add", "update", "insert", "remove", "discard",
    "pop", "popitem", "clear", "setdefault", "sort", "reverse",
    "setflags", "fill",
})


def _import_aliases(tree: ast.AST) -> dict[str, str]:
    """Map local names to the dotted module paths they were imported as.

    ``import numpy as np`` maps ``np -> numpy``; ``from datetime import
    datetime`` maps ``datetime -> datetime.datetime``; plain ``import
    random`` maps ``random -> random``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports never bind external modules
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}")
    return aliases


def _dotted_name(node: ast.AST) -> str | None:
    """Flatten ``a.b.c`` attribute chains to ``"a.b.c"`` (else None)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _resolve(dotted: str | None, aliases: dict[str, str]) -> str | None:
    """Rewrite the first component of a dotted name through the imports."""
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    if head not in aliases:
        return None  # a local variable, not an imported module
    resolved = aliases[head]
    return f"{resolved}.{rest}" if rest else resolved


def _attribute_root(node: ast.AST) -> str | None:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


# ----------------------------------------------------------------------
# shared finding helpers (used by PURE001's interprocedural pass and the
# RACE family in rules_race.py)
# ----------------------------------------------------------------------
def shared_state_findings(info: FunctionInfo,
                          module_globals: set[str],
                          check_self: bool = True,
                          ) -> Iterator[tuple[ast.AST, str]]:
    """Mutations of state that outlives one call of ``info``.

    Yields ``(node, detail)`` for: ``global``/``nonlocal`` rebinding,
    assignment to ``self.<attr>``, mutator-method calls on ``self``
    state, and writes into (or mutator calls on) this module's top-level
    globals.  Rebinding a plain local name is never flagged — Python
    scoping makes it function-local.
    """
    locals_ = local_bindings(info)
    writable = {name for name in module_globals if name not in locals_}

    def _shared_root(target: ast.AST) -> str | None:
        root = _attribute_root(target)
        if root is None:
            return None
        if root == "self" and check_self:
            return "self"
        if root in writable:
            return root
        return None

    for node in own_body(info):
        if isinstance(node, ast.Global):
            yield node, (f"'global {'/'.join(node.names)}' rebinds module "
                         "state")
        elif isinstance(node, ast.Nonlocal):
            yield node, (f"'nonlocal {'/'.join(node.names)}' mutates "
                         "closed-over state")
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            if isinstance(node, ast.Assign):
                targets: list[ast.AST] = list(node.targets)
            elif isinstance(node, ast.AnnAssign) and node.value is None:
                continue  # `x: int` alone assigns nothing
            else:
                targets = [node.target]
            for target in targets:
                if not isinstance(target, (ast.Attribute, ast.Subscript)):
                    continue
                root = _shared_root(target)
                if root == "self":
                    attr = (target.attr if isinstance(target, ast.Attribute)
                            else "<item>")
                    yield node, f"assignment to self.{attr}"
                elif root is not None:
                    yield node, f"assignment into module global '{root}'"
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in MUTATORS:
                root = _shared_root(func.value)
                if root == "self":
                    yield node, f".{func.attr}() on self state"
                elif root is not None:
                    yield node, (f".{func.attr}() mutates module global "
                                 f"'{root}'")


def ambient_findings(info: FunctionInfo,
                     aliases: dict[str, str],
                     ) -> Iterator[tuple[ast.AST, str]]:
    """Ambient RNG / wall-clock reads inside ``info``'s own body."""
    checker = AmbientNondeterminism()
    for node in own_body(info):
        if not isinstance(node, ast.Call):
            continue
        name = _resolve(_dotted_name(node.func), aliases)
        if name is None:
            continue
        if checker._diagnose(name, node) is not None:
            yield node, f"reads ambient nondeterminism via '{name}'"


# ----------------------------------------------------------------------
# DET001 — ambient nondeterminism
# ----------------------------------------------------------------------
class AmbientNondeterminism(Rule):
    """No unseeded RNGs or wall-clock reads in ``src/repro``.

    The wall-clock and ambient-date diagnostics are suppressed inside
    ``repro/perf/`` — the profiling package's whole purpose is measuring
    wall-clock time, and confining ``time.perf_counter`` there is exactly
    the invariant this scoping enforces.  The RNG diagnostics still apply
    to ``perf`` files: profiling must never introduce ambient randomness.
    """

    id = "DET001"
    summary = ("ambient nondeterminism: randomness must arrive as a "
               "seeded numpy Generator parameter; wall-clock reads are "
               "forbidden (the simulated clock is the only clock; "
               "measured wall time lives only in repro/perf/)")

    #: Legacy global-state samplers on ``numpy.random`` (the module-level
    #: RandomState, shared and order-dependent).
    LEGACY_NP_RANDOM = frozenset({
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "shuffle", "permutation", "uniform", "normal",
        "standard_normal", "beta", "binomial", "exponential", "poisson",
        "get_state", "set_state", "bytes",
    })
    WALL_CLOCKS = frozenset({
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    })
    AMBIENT_DATES = frozenset({
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    })

    #: The socket backend's transport layer measures wall time by design
    #: (bytes-on-wire + elapsed seconds feed the measured-vs-simulated
    #: network validation).  The exemption names exactly these two files
    #: so the rest of ``repro.engine`` stays under the wall-clock ban.
    MEASURED_TRANSPORT_FILES = frozenset({"wire.py", "daemon.py"})

    @classmethod
    def _wall_clock_exempt(cls, path: Path) -> bool:
        """True for the profiling package (measures wall time by design)
        and for the socket backend's measured transport layer."""
        if "perf" in path.parts:
            return True
        return ("engine" in path.parts
                and path.name in cls.MEASURED_TRANSPORT_FILES)

    def check(self, src: "SourceFile") -> Iterator[Violation]:
        aliases = _import_aliases(src.tree)
        wall_ok = self._wall_clock_exempt(src.path)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _resolve(_dotted_name(node.func), aliases)
            if name is None:
                continue
            if wall_ok and (name in self.WALL_CLOCKS
                            or name in self.AMBIENT_DATES):
                continue
            message = self._diagnose(name, node)
            if message is not None:
                yield self.violation(src, node, message)

    def _diagnose(self, name: str, call: ast.Call) -> str | None:
        if name == "random" or name.startswith("random."):
            return (f"call to stdlib '{name}' uses the ambient global RNG; "
                    "take a numpy Generator parameter spawned from a "
                    "SeedSequence instead")
        if name == "numpy.random.seed":
            return ("numpy.random.seed mutates the global RNG; pass "
                    "seeded Generators explicitly")
        if name == "numpy.random.default_rng" and not (call.args
                                                       or call.keywords):
            return ("default_rng() without a seed is nondeterministic; "
                    "derive the seed from config.seed via SeedSequence")
        if name.startswith("numpy.random."):
            attr = name.rsplit(".", 1)[1]
            if attr in self.LEGACY_NP_RANDOM:
                return (f"numpy.random.{attr} samples from the shared "
                        "legacy RandomState; use a Generator parameter")
        if name in self.WALL_CLOCKS:
            return (f"'{name}' reads the wall clock; simulated time "
                    "(engine.now) is the only clock allowed in repro")
        if name in self.AMBIENT_DATES:
            return (f"'{name}' is wall-clock dependent; thread timestamps "
                    "in explicitly if they are needed")
        return None


# ----------------------------------------------------------------------
# DET002 — unordered iteration on aggregation paths
# ----------------------------------------------------------------------
class UnorderedIteration(CallGraphRule):
    """No iteration over sets where numeric accumulation can happen.

    Scope is *derived*, not declared.  The roots are the code that runs
    inside (or feeds) a reduction:

    * every function, method, and module body defined in a
      ``collectives``, ``ps``, or ``sched`` package — the combine entry
      points of the two aggregation data planes (shuffle-based AllReduce
      and the parameter server) and the cluster scheduler, whose
      schedule log carries a byte-identity replay contract;
    * every task function handed to an execution backend
      (``<backend>.map_partitions(fn, ...)`` / ``.run_one(fn, ...)`` /
      ``.submit(fn, ...)`` sites, resolved through the call graph).

    Everything transitively reachable from a root — helper modules, glm
    kernels, wire formats, wherever they live — is in scope; nothing has
    to be added to a file list when worker-side code grows or moves.
    """

    id = "DET002"
    summary = ("iteration over set/frozenset on an aggregation path: "
               "hash order is not a reduction order — float addition "
               "does not commute bit-exactly; sort first (scope: call "
               "graph from collective/ps entry points and backend tasks)")

    #: Directory names anchoring the combine entry points.
    AGGREGATION_PACKAGES = ("collectives", "ps", "sched")

    def check_graph(self, graph: CallGraph) -> Iterator[Violation]:
        roots: set[str] = set()
        for package in self.AGGREGATION_PACKAGES:
            roots.update(f.qualname for f in graph.functions_under(package))
        roots.update(graph.task_functions())
        for qual, path in graph.reachable(sorted(roots)).items():
            info = graph.functions[qual]
            suffix = ""
            if len(path) > 1:
                suffix = f" [reachable via {graph.call_path_names(path)}]"
            for node in own_body(info):
                iters: list[ast.AST] = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iters.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.DictComp, ast.GeneratorExp)):
                    iters.extend(gen.iter for gen in node.generators)
                for it in iters:
                    if self._is_unordered(it):
                        yield self.violation(
                            info.src, it,
                            "iterating a set here makes the reduction "
                            "order hash-dependent; iterate a sorted() or "
                            "list view instead" + suffix)

    @staticmethod
    def _is_unordered(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False


# ----------------------------------------------------------------------
# PURE001 — cost-model pricing must be pure
# ----------------------------------------------------------------------
class ImpureCostModel(CallGraphRule):
    """``seconds()`` / ``*_seconds()`` / ``timing()`` must not mutate.

    Two layers:

    * **intraprocedural** — the pricing function's own body must not
      rebind globals/nonlocals, assign to ``self`` attributes, or call
      mutating methods on ``self`` state;
    * **interprocedural** — every project function the pricing function
      can reach through the call graph is checked for shared-state
      mutation and ambient RNG/clock reads; an impure helper is flagged
      *at the call site in the pricing function*, with the offending
      path reported (``seconds -> _helper -> .append()``).

    Scoped out of ``repro/perf/`` on both layers: the profiler's timing
    accessors report measured wall-clock aggregates (not simulated
    prices) and accumulate state by design — they are measurements, not
    a cost model.  Constructor bodies (``__init__``/``__post_init__``)
    reached through instantiation are exempt from the self-assignment
    check: a fresh object's initialization is not shared state.
    """

    id = "PURE001"
    summary = ("cost-model pricing methods must be pure: pricing the "
               "same phase twice must return the same seconds; checked "
               "through the call graph (impure helpers are flagged at "
               "the pricing call site with the call path)")

    MUTATORS = MUTATORS

    #: Constructors: self-assignments initialize a fresh object.
    _CONSTRUCTORS = frozenset({"__init__", "__post_init__"})

    @staticmethod
    def _is_pricing_name(name: str) -> bool:
        return (name in ("seconds", "timing")
                or name.endswith("_seconds"))

    @staticmethod
    def _measures_wall_time(info: FunctionInfo) -> bool:
        return "perf" in info.src.path.parts

    def check_graph(self, graph: CallGraph) -> Iterator[Violation]:
        impurity_cache: dict[str, list[tuple[ast.AST, str]]] = {}
        alias_cache: dict[str, dict[str, str]] = {}
        for qual in sorted(graph.functions):
            info = graph.functions[qual]
            if info.is_module_body or not self._is_pricing_name(info.name):
                continue
            if self._measures_wall_time(info):
                continue
            yield from self._check_body(info.src, info.node)
            yield from self._check_call_paths(graph, info, impurity_cache,
                                              alias_cache)

    # -- intraprocedural -----------------------------------------------
    def _check_body(self, src: "SourceFile",
                    func: ast.AST) -> Iterator[Violation]:
        for node in ast.walk(func):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                yield self.violation(
                    src, node, "pricing code must not rebind "
                    f"{'/'.join(node.names)} outside its own scope")
            elif isinstance(node, ast.Assign):
                yield from self._check_targets(src, node, node.targets)
            elif isinstance(node, ast.AugAssign):
                yield from self._check_targets(src, node, [node.target])
            elif isinstance(node, ast.AnnAssign):
                # `self.x: int` with no value declares, never assigns —
                # per the AST grammar the target is always present, so
                # the old `target is not None` guard was dead and the
                # value-less form was wrongly treated as an assignment.
                if node.value is not None:
                    yield from self._check_targets(src, node, [node.target])
            elif isinstance(node, ast.Call):
                yield from self._check_mutator_call(src, node)

    def _check_targets(self, src: "SourceFile", stmt: ast.AST,
                       targets: Iterable[ast.AST]) -> Iterator[Violation]:
        for target in targets:
            for sub in ast.walk(target):
                if (isinstance(sub, ast.Attribute)
                        and _attribute_root(sub) == "self"):
                    yield self.violation(
                        src, stmt,
                        f"assignment to self.{sub.attr} inside a pricing "
                        "method mutates cost-model state")
                    break

    def _check_mutator_call(self, src: "SourceFile",
                            call: ast.Call) -> Iterator[Violation]:
        func = call.func
        if (isinstance(func, ast.Attribute)
                and func.attr in self.MUTATORS
                and _attribute_root(func.value) == "self"):
            yield self.violation(
                src, call,
                f".{func.attr}() on self state inside a pricing method "
                "mutates cost-model state")

    # -- interprocedural -----------------------------------------------
    def _check_call_paths(
            self, graph: CallGraph, root: FunctionInfo,
            impurity_cache: dict[str, list[tuple[ast.AST, str]]],
            alias_cache: dict[str, dict[str, str]],
    ) -> Iterator[Violation]:
        seen = {root.qualname}
        queue: list[tuple[str, ast.AST, tuple[str, ...]]] = [
            (callee, node, (root.qualname, callee))
            for callee, node in graph.calls.get(root.qualname, ())]
        reported: set[tuple[int, str, str]] = set()
        while queue:
            qual, entry, path = queue.pop(0)
            if qual in seen or qual not in graph.functions:
                continue
            seen.add(qual)
            info = graph.functions[qual]
            if self._measures_wall_time(info):
                continue  # measurement code; not a cost model
            for node, detail in self._impurities(graph, info,
                                                 impurity_cache,
                                                 alias_cache):
                key = (entry.lineno, qual, detail)
                if key in reported:
                    continue
                reported.add(key)
                yield Violation(
                    path=root.src.path, line=entry.lineno,
                    col=entry.col_offset + 1, rule=self.id,
                    message=("impure call path "
                             f"{graph.call_path_names(path)}: {detail} "
                             f"({info.src.path.name}:{node.lineno}); "
                             "pricing must stay pure all the way down"))
            for callee, node in graph.calls.get(qual, ()):
                if callee not in seen:
                    queue.append((callee, entry, path + (callee,)))

    def _impurities(self, graph: CallGraph, info: FunctionInfo,
                    impurity_cache: dict[str, list[tuple[ast.AST, str]]],
                    alias_cache: dict[str, dict[str, str]],
                    ) -> list[tuple[ast.AST, str]]:
        if info.qualname not in impurity_cache:
            module = graph.modules.get(info.module)
            module_globals = module.module_globals if module else set()
            check_self = info.name not in self._CONSTRUCTORS
            found = list(shared_state_findings(info, module_globals,
                                               check_self=check_self))
            if info.module not in alias_cache:
                alias_cache[info.module] = _import_aliases(info.src.tree)
            found.extend(ambient_findings(info, alias_cache[info.module]))
            impurity_cache[info.qualname] = found
        return impurity_cache[info.qualname]


# ----------------------------------------------------------------------
# CFG001 — every TrainerConfig field reachable from the CLI
# ----------------------------------------------------------------------
class ConfigReachability(ProjectRule):
    """Every config-dataclass field must be settable from ``cli.py``."""

    id = "CFG001"
    summary = ("TrainerConfig/ServeConfig/SchedConfig fields must be "
               "reachable from the CLI or explicitly allowlisted; "
               "unreachable knobs are dead configuration")

    #: Config dataclasses whose fields the CLI must be able to set.
    CONFIG_CLASSES: tuple[str, ...] = ("TrainerConfig", "ServeConfig",
                                       "SchedConfig")
    #: Fields exempt from CLI reachability (none today; prefer wiring new
    #: fields into the CLI over growing this list).
    ALLOWED: frozenset[str] = frozenset()

    def check_project(self,
                      files: "list[SourceFile]") -> Iterator[Violation]:
        found = self._find_config_classes(files)
        if not found:
            return
        reachable = self._cli_reachable_names(files, found[0][0].path)
        if reachable is None:
            return  # no CLI module found anywhere; nothing to check
        for config_src, config_class in found:
            for name, node in self._dataclass_fields(config_class):
                if name in reachable or name in self.ALLOWED:
                    continue
                yield self.violation(
                    config_src, node,
                    f"{config_class.name}.{name} is not reachable from "
                    "the CLI; add a flag in cli.py, or allowlist it with "
                    "# repro: noqa[CFG001] and a comment")

    # ------------------------------------------------------------------
    def _find_config_classes(
            self, files: "list[SourceFile]",
    ) -> "list[tuple[SourceFile, ast.ClassDef]]":
        found = []
        for src in files:
            for node in ast.walk(src.tree):
                if (isinstance(node, ast.ClassDef)
                        and node.name in self.CONFIG_CLASSES):
                    found.append((src, node))
        return found

    @staticmethod
    def _dataclass_fields(cls: ast.ClassDef,
                          ) -> list[tuple[str, ast.AnnAssign]]:
        fields = []
        for stmt in cls.body:
            if (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and not stmt.target.id.startswith("_")):
                annotation = ast.unparse(stmt.annotation)
                if "ClassVar" in annotation:
                    continue
                fields.append((stmt.target.id, stmt))
        return fields

    def _cli_reachable_names(self, files: "list[SourceFile]",
                             config_path: Path) -> set[str] | None:
        """Names settable from CLI modules: keyword args, dict keys and
        string subscripts anywhere in a ``cli.py``.

        Falls back to ``<package>/cli.py`` next to the config's package
        when the lint set does not include one (e.g. single-file runs).
        """
        trees = [src.tree for src in files if src.path.name == "cli.py"]
        if not trees:
            candidate = config_path.parent.parent / "cli.py"
            if candidate.is_file():
                try:
                    trees = [ast.parse(candidate.read_text())]
                except SyntaxError:
                    return None
        if not trees:
            return None
        names: set[str] = set()
        for tree in trees:
            names |= self._reachable_names(tree)
        return names

    @staticmethod
    def _reachable_names(tree: ast.AST) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.keyword) and node.arg is not None:
                names.add(node.arg)
            elif isinstance(node, ast.Dict):
                for key in node.keys:
                    if (isinstance(key, ast.Constant)
                            and isinstance(key.value, str)):
                        names.add(key.value)
            elif isinstance(node, ast.Subscript):
                sl = node.slice
                if (isinstance(sl, ast.Constant)
                        and isinstance(sl.value, str)):
                    names.add(sl.value)
        return names


# ----------------------------------------------------------------------
# NOQA001 — suppressions must suppress something
# ----------------------------------------------------------------------
class UnusedSuppression(Rule):
    """``# repro: noqa[RULE]`` comments that silence nothing.

    As rules are rescoped by the call graph, old suppressions rot: the
    comment stays, the diagnostic it silenced is long gone, and the next
    *real* violation on that line is silently eaten.  The engine checks
    every suppression after the other rules run and reports the stale
    ones (opt out with ``--no-unused-noqa``).

    This class is a registry marker — the check itself lives in
    :func:`repro.analysis.engine.run_analysis`, because only the engine
    sees which suppressions matched a diagnostic.
    """

    id = "NOQA001"
    summary = ("unused '# repro: noqa[RULE]' suppression: it silences "
               "nothing on its line (stale suppressions eat the next "
               "real diagnostic); remove it or fix the rule id")

    def check(self, src: "SourceFile") -> Iterator[Violation]:
        return iter(())  # engine-implemented; see run_analysis


# NOTE: imported at the bottom so rules_race can use this module's base
# classes and helpers without a circular-import dance.
from .rules_race import SharedStateMutation, UnpicklableTask  # noqa: E402

#: Registry order is report order for same-position violations.
ALL_RULES: tuple[Rule, ...] = (
    AmbientNondeterminism(),
    UnorderedIteration(),
    ImpureCostModel(),
    ConfigReachability(),
    SharedStateMutation(),
    UnpicklableTask(),
    UnusedSuppression(),
)


def rule_registry() -> dict[str, Rule]:
    """Map rule id -> rule instance for selection by id."""
    return {rule.id: rule for rule in ALL_RULES}
