"""The RACE rule family: static enforcement of the backend task contract.

The execution backends (:mod:`repro.engine.backend`) promise bit-identity
across ``serial``/``threads``/``processes`` — but only for tasks that
honour the contract stated in :mod:`repro.core.worker`:

* a task is a **pure function of its arguments** — all state crosses the
  boundary as parameters and return values (the RNG round-trip pattern);
* a task is a **module-level callable** — process pools pickle functions
  by reference, so lambdas, nested functions, and bound methods either
  crash (spawn) or silently capture parent state (fork).

Both clauses were previously enforced only by convention and by the
bit-identity test battery.  With the shared-memory and socket executors
on the roadmap, the contract needs to hold for code *one call away* from
the task too — exactly what the call graph makes checkable:

* :class:`SharedStateMutation` (``RACE001``) — walks every function
  reachable from a task handed to a backend and flags mutation of module
  globals, closed-over state (``nonlocal``), and bound ``self``
  attributes.  Under ``threads`` such a mutation is a data race whose
  interleaving changes the numerics *silently* (no crash — just
  different floats); under ``processes`` each worker mutates its own
  copy and the divergence is from serial, not between runs.  The
  regression test ``tests/test_analysis_race.py`` demonstrates both the
  static catch and the actual divergence.
* :class:`UnpicklableTask` (``RACE002``) — flags submit sites whose task
  argument is a lambda, a nested function, or a bound method/attribute:
  anything that is not a picklable module-level callable.  These work by
  accident under ``threads`` and break (or worse, capture state) under
  ``processes`` — the exact bug class that stays invisible until someone
  flips ``--backend``.

Rule ids are stable; scope is derived from
:meth:`repro.analysis.callgraph.CallGraph.submit_sites` — there is no
file list to forget to extend.

This module is imported at the bottom of :mod:`repro.analysis.rules`
(which provides the base classes and shared finding helpers), so import
it via ``repro.analysis`` rather than directly.
"""

from __future__ import annotations

from typing import Iterator

from .callgraph import CallGraph
from .rules import CallGraphRule, shared_state_findings
from .violations import Violation

__all__ = ["SharedStateMutation", "UnpicklableTask"]


class SharedStateMutation(CallGraphRule):
    """``RACE001`` — no shared-state mutation reachable from a task.

    Roots are the task functions resolved at backend submit sites;
    everything reachable from them through the call graph is checked
    with :func:`repro.analysis.rules.shared_state_findings` (module
    globals, ``global``/``nonlocal`` rebinding, ``self`` attributes).
    The diagnostic lands on the mutating statement and names the call
    path from the task, so the fix — thread the state through arguments
    and return values — is visible at the flagged line.
    """

    id = "RACE001"
    summary = ("backend task functions and scheduler dispatch functions "
               "(and everything they call) must not mutate shared state "
               "— module globals, closed-over names, or self attributes; "
               "parallel backends make the result scheduling-dependent "
               "and impure dispatch breaks schedule replay")

    #: Package whose module-level ``dispatch_*`` policy functions are
    #: purity roots alongside backend tasks: the scheduler's
    #: byte-identical-replay contract folds these over the event
    #: sequence, so hidden state would make two replays diverge.
    DISPATCH_PACKAGE = "sched"
    DISPATCH_PREFIX = "dispatch_"

    def _dispatch_roots(self, graph: CallGraph) -> set[str]:
        return {f.qualname
                for f in graph.functions_under(self.DISPATCH_PACKAGE)
                if f.name.startswith(self.DISPATCH_PREFIX)}

    def check_graph(self, graph: CallGraph) -> Iterator[Violation]:
        tasks = set(graph.task_functions())
        dispatch = self._dispatch_roots(graph)
        roots = tasks | dispatch
        if not roots:
            return
        for qual, path in graph.reachable(sorted(roots)).items():
            info = graph.functions[qual]
            module = graph.modules.get(info.module)
            module_globals = module.module_globals if module else set()
            root = graph.functions[path[0]]
            role = ("scheduler dispatch function"
                    if path[0] in dispatch else "backend task")
            consequence = (
                "two replays of the same schedule diverge"
                if path[0] in dispatch else
                "thread and process backends make this a race")
            # A constructor assigning to `self` is building a fresh,
            # task-local object — not shared state.  (Same carve-out as
            # interprocedural PURE001.)
            check_self = info.name not in {"__init__", "__post_init__"}
            for node, detail in shared_state_findings(
                    info, module_globals, check_self=check_self):
                yield Violation(
                    path=info.src.path, line=node.lineno,
                    col=node.col_offset + 1, rule=self.id,
                    message=(f"{detail} inside code run by {role} "
                             f"'{root.short}' (path: "
                             f"{graph.call_path_names(path)}); "
                             f"{consequence} — pass state via arguments "
                             "and return values"))


class UnpicklableTask(CallGraphRule):
    """``RACE002`` — backend tasks must be module-level callables.

    Checks every submit site the call graph discovered; the argument
    classification (lambda / nested function / bound method or
    attribute) comes from
    :meth:`repro.analysis.callgraph.CallGraph.submit_sites`.  Unresolved
    plain names (a callable parameter forwarded to a pool) are left
    alone — nothing can be proven about them statically.
    """

    id = "RACE002"
    summary = ("functions submitted to an execution backend must be "
               "picklable module-level callables: no lambdas, nested "
               "functions, or bound methods")

    def check_graph(self, graph: CallGraph) -> Iterator[Violation]:
        for site in graph.submit_sites():
            if site.problem is None:
                continue
            yield Violation(
                path=site.caller.src.path, line=site.fn_arg.lineno,
                col=site.fn_arg.col_offset + 1, rule=self.id,
                message=(f"task passed to .{site.method}() is not a "
                         f"picklable module-level callable: "
                         f"{site.problem}"))
