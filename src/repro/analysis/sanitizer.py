"""Runtime barrier sanitizer: the dynamic half of ``repro.analysis``.

The linter catches nondeterminism it can see in the AST; the sanitizer
catches what it cannot — in-place mutation of shared model state.  In a
real cluster, a worker writing into a broadcast buffer is a data race
that silently corrupts every later reader.  In this simulated cluster
all "replicas" of the broadcast model may literally share one ndarray,
so the same bug instead silently couples workers that are supposed to be
independent.  ``--sanitize`` turns both into a hard error at the exact
faulting line:

* **Write-protection.**  At every superstep boundary the global model is
  frozen with ``ndarray.setflags(write=False)`` before workers see it
  (:meth:`BarrierSanitizer.freeze`).  Any in-place mutation then raises
  ``ValueError: assignment destination is read-only`` from the faulting
  statement itself — the simulated-cluster analogue of a write watchpoint
  in a data-race detector.  Parameter-server pulls and async model
  snapshots are frozen the same way.
* **Barrier digests.**  After every step the model's SHA-256 digest is
  recorded (:meth:`BarrierSanitizer.record_barrier`), and collectives
  that materialize per-worker replicas verify all replicas are
  bit-identical (:func:`check_replicas`) — aggregation-path bugs surface
  as :class:`ReplicaDivergenceError` at the barrier where they happen,
  not as golden-test drift three PRs later.

The sanitizer reads array flags and bytes only; it never changes the
numerics or the simulated clock, so a clean ``--sanitize`` run is
bit-identical to a normal run (pinned by the golden-convergence test).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["SanitizerError", "ReplicaDivergenceError", "freeze_array",
           "model_digest", "check_replicas", "BarrierSanitizer"]


class SanitizerError(RuntimeError):
    """Base class for barrier-sanitizer failures."""


class ReplicaDivergenceError(SanitizerError):
    """Replicas of the model that must be bit-identical are not."""


def freeze_array(array: np.ndarray) -> np.ndarray:
    """Return ``array`` write-protected (in place when possible).

    Restricting writeability is always legal for arrays that own their
    data; for non-owning views a read-only copy is returned so freezing
    never reaches through to an unrelated base buffer.
    """
    array = np.asarray(array)
    if not array.flags.writeable:
        return array
    if not array.flags.owndata and array.base is not None:
        array = array.copy()
    array.setflags(write=False)
    return array


def model_digest(array: np.ndarray) -> str:
    """SHA-256 over dtype, shape and bytes — equal iff bit-identical."""
    contiguous = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(str(contiguous.dtype).encode())
    digest.update(str(contiguous.shape).encode())
    digest.update(contiguous.tobytes())
    return digest.hexdigest()


def check_replicas(replicas: list[np.ndarray], context: str = "") -> str:
    """Verify all replicas are bit-identical; return the common digest.

    Raises :class:`ReplicaDivergenceError` naming the diverging replica
    indices otherwise.
    """
    if not replicas:
        raise ValueError("need at least one replica to check")
    digests = [model_digest(replica) for replica in replicas]
    reference = digests[0]
    diverged = [i for i, d in enumerate(digests) if d != reference]
    if diverged:
        where = f" during {context}" if context else ""
        raise ReplicaDivergenceError(
            f"model replicas diverged{where}: replicas {diverged} differ "
            f"from replica 0 (digest {reference[:12]}…); some worker saw "
            "or produced different bits")
    return reference


class BarrierSanitizer:
    """Per-run sanitizer state: freeze hooks plus the digest log.

    Constructed by :class:`~repro.core.trainer.DistributedTrainer` from
    ``config.sanitize``; when disabled every hook is a no-op so the
    default path stays allocation-free.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        #: (step, sha256) per superstep barrier, step 0 = initial model.
        self.barrier_digests: list[tuple[int, str]] = []

    def freeze(self, array: np.ndarray) -> np.ndarray:
        """Write-protect the model at a superstep boundary."""
        if not self.enabled:
            return array
        return freeze_array(array)

    def record_barrier(self, step: int, model: np.ndarray) -> None:
        """Log the model digest at a barrier (monitoring only)."""
        if not self.enabled:
            return
        self.barrier_digests.append((step, model_digest(model)))

    def check_replicas(self, replicas: list[np.ndarray],
                       context: str = "") -> str | None:
        """Replica bit-identity check (no-op when disabled)."""
        if not self.enabled:
            return None
        return check_replicas(replicas, context)
