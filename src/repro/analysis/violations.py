"""Violation record shared by every lint rule and reporter.

A violation pins a rule to an exact ``path:line:col`` so diagnostics are
clickable and ``# repro: noqa[RULE]`` suppressions can be matched to the
physical line they sit on.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

__all__ = ["Violation", "PARSE_RULE_ID"]

#: Pseudo-rule reported when a file cannot be parsed at all.  It is not a
#: registered rule and cannot be suppressed with ``noqa``.
PARSE_RULE_ID = "SYN001"


@dataclass(frozen=True, order=True)
class Violation:
    """One diagnostic: ``path:line:col: RULE message``."""

    path: Path
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": str(self.path),
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
