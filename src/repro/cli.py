"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``datasets``   — list the analog dataset catalog (Table I).
* ``train``      — train one system on one dataset, print the convergence
  curve, optionally export it to CSV/JSON.
* ``compare``    — run several systems on one workload and print time and
  steps to the 0.01-accuracy-loss threshold.
* ``gantt``      — render the ASCII gantt chart for one system.
* ``save``       — train one system and persist the model (artifact file
  or registry version).
* ``predict``    — load a saved model and score a dataset through the
  batched prediction service.
* ``models``     — list a registry's model versions.
* ``serve-bench`` — open-loop arrival-rate sweep against a saved model.
* ``perf``       — wall-clock profiling: per-kernel reference-vs-fast
  speedups and an end-to-end execution-backend sweep, with bit-identity
  asserted before any speedup is reported.
* ``sched``      — multi-tenant cluster scheduler: ``submit``/``list``/
  ``status``/``cancel`` manage a JSON job queue, ``run`` plays it
  through the deterministic event-driven scheduler (FIFO or weighted
  fair share, optional elastic resizing and preemption at superstep
  barriers), and ``run-trace`` does the same over a generated Poisson
  arrival trace.

Examples::

    python -m repro datasets
    python -m repro train --system "MLlib*" --dataset avazu --l2 0.1
    python -m repro compare --dataset url --systems "MLlib,MLlib*" --l2 0
    python -m repro gantt --system MLlib --dataset kddb --steps 4
    python -m repro save --system "MLlib*" --dataset avazu --l2 0.1 \\
        --registry ./models --name avazu-svm --promote
    python -m repro predict --registry ./models --name avazu-svm \\
        --data avazu --head 5
    python -m repro serve-bench --registry ./models --name avazu-svm \\
        --data avazu --out BENCH_serving.json
    python -m repro sched submit --queue jobs.json --name exp1 \\
        --system "MLlib*" --executors 4 --steps 6 --priority 2
    python -m repro sched run --queue jobs.json --policy fair --elastic
    python -m repro sched run-trace --rate 80 --duration 0.25 \\
        --policy fair --elastic --preempt --gantt
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .cluster import cluster1
from .core import (MLlibModelAveragingTrainer, MLlibStarTrainer,
                   MLlibTrainer, SparkMlStarTrainer, SparkMlTrainer,
                   TrainerConfig)
from .data import CATALOG, dataset_names, load, read_libsvm
from .glm import ArtifactError, GLMModel, Objective
from .metrics import (comm_report, evaluate_convergence, format_speedup,
                      format_table, render_ascii, sched_report,
                      serving_report, speedup, summarize,
                      write_histories_json, write_history_csv)
from .ps import (AngelTrainer, AsyncSgdTrainer, PetuumStarTrainer,
                 PetuumTrainer)
from .sched import (SCHED_POLICIES, ClusterScheduler, JobSpec, SchedConfig,
                    poisson_job_trace)
from .serve import (ModelRegistry, PredictionService, RegistryError,
                    ServeConfig, ServingCostModel, dataset_requests,
                    rate_sweep)

__all__ = ["main", "build_parser", "SYSTEMS"]

SYSTEMS = {
    "MLlib": MLlibTrainer,
    "MLlib+MA": MLlibModelAveragingTrainer,
    "MLlib*": MLlibStarTrainer,
    "Petuum": PetuumTrainer,
    "Petuum*": PetuumStarTrainer,
    "Angel": AngelTrainer,
    "ASGD": AsyncSgdTrainer,
    "spark.ml": SparkMlTrainer,
    "spark.ml*": SparkMlStarTrainer,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'MLlib*: Fast Training of GLMs using "
                    "Spark MLlib' (ICDE 2019)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the analog dataset catalog")

    def add_workload_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset", default="avazu",
                       help="catalog name or path to a LIBSVM file")
        p.add_argument("--loss", default="hinge",
                       choices=["hinge", "logistic", "squared"])
        p.add_argument("--l2", type=float, default=0.0,
                       help="L2 strength (0 = unregularized)")
        p.add_argument("--executors", type=int, default=8)
        p.add_argument("--steps", type=int, default=30,
                       help="communication-step cap")
        p.add_argument("--learning-rate", type=float, default=0.5)
        p.add_argument("--schedule", default="inv_sqrt",
                       choices=["constant", "inv_sqrt", "inv_time"])
        p.add_argument("--batch-fraction", type=float, default=0.01)
        p.add_argument("--chunk-size", type=int, default=32)
        p.add_argument("--local-epochs", type=int, default=1,
                       help="SendModel only: local passes over the "
                            "partition per communication step")
        p.add_argument("--local-solver", default="mgd",
                       choices=["mgd", "cocoa", "cocoa+"],
                       help="SendModel local-solve family: 'mgd' runs the "
                            "paper's primal minibatch-gradient passes; "
                            "'cocoa'/'cocoa+' run SDCA epochs over each "
                            "partition's dual variables and sum "
                            "gamma-scaled model deltas, reporting a "
                            "certified duality gap (requires --l2 > 0; "
                            "MLlib* and MLlib+MA only)")
        p.add_argument("--gamma", type=float, default=None,
                       help="dual solvers: outer aggregation weight; "
                            "default 1/K (averaging) for cocoa, 1 "
                            "(adding) for cocoa+")
        p.add_argument("--local-iters", type=int, default=1,
                       help="dual solvers: SDCA passes over the local "
                            "dual block per communication step (the H "
                            "of CoCoA)")
        p.add_argument("--tasks-per-executor", type=int, default=1,
                       help="waves of tasks per executor in SendGradient "
                            "trainers (Section V-C; the paper found 1 "
                            "optimal)")
        p.add_argument("--eager-l2", action="store_true",
                       help="apply L2 decay densely every update instead "
                            "of the Bottou lazy/scaled representation "
                            "(ablation; slower on sparse data)")
        p.add_argument("--divergence-limit", type=float, default=1.0e6,
                       help="abort when the objective exceeds this value")
        p.add_argument("--eval-every", type=int, default=1)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--sanitize", action="store_true",
                       help="barrier sanitizer: freeze broadcast model "
                            "arrays at superstep boundaries and "
                            "digest-check replica bit-identity (in-place "
                            "mutation of shared state raises at the "
                            "faulting line)")
        p.add_argument("--sparse-comm", default="off",
                       choices=["auto", "on", "off"],
                       help="communication wire format: 'off' prices the "
                            "paper's dense 2km exchange, 'auto' switches "
                            "each message to index/value pairs at the "
                            "SparCML break-even point (nnz < m/2), 'on' "
                            "forces sparse encoding; numerics are "
                            "bit-identical across modes")
        p.add_argument("--collective", default="flat",
                       choices=["flat", "hier", "switch"],
                       help="aggregation topology: 'flat' is the paper's "
                            "shuffle AllReduce / treeAggregate, 'hier' "
                            "adds an intra-node combine tier over the "
                            "cluster placement map, 'switch' aggregates "
                            "in-network at line rate with a bounded slot "
                            "pool; a pricing choice only — iterates are "
                            "bit-identical across topologies")
        p.add_argument("--switch-slots", type=int, default=512,
                       help="switch collective: register-pool slots "
                            "(vectors needing more chunks stream in "
                            "extra stall rounds)")
        p.add_argument("--switch-chunk", type=int, default=256,
                       help="switch collective: values per in-flight "
                            "chunk")
        p.add_argument("--backend", default="serial",
                       choices=["serial", "threads", "processes", "shm",
                                "socket"],
                       help="execution backend for the per-worker local "
                            "solves: 'serial' runs them in a loop, "
                            "'threads'/'processes' fan them out across "
                            "cores, 'shm' adds shared-memory partitions "
                            "with a zero-copy broadcast arena, 'socket' "
                            "runs long-lived worker daemons over "
                            "localhost TCP with measured bytes/seconds; "
                            "purely a wall-clock choice — results are "
                            "bit-identical across backends")
        p.add_argument("--failure-rate", type=float, default=0.0,
                       help="per-(step, executor) crash probability "
                            "(0 disables fault injection)")
        p.add_argument("--failure-schedule", default=None, metavar="SPEC",
                       help="scripted crashes, e.g. '3@12' or "
                            "'1@5:reduce_scatter,0@2x5'")
        p.add_argument("--checkpoint-every", type=int, default=0,
                       help="steps between checkpoint writes (switches "
                            "recovery to checkpoint-restore; 0 keeps "
                            "lineage recompute)")
        p.add_argument("--max-retries", type=int, default=2,
                       help="recoveries allowed per crash site before "
                            "the run is declared lost")
        p.add_argument("--restart-seconds", type=float, default=1.0,
                       help="executor restart delay paid per recovery")

    train = sub.add_parser("train", help="train one system")
    add_workload_args(train)
    train.add_argument("--system", default="MLlib*",
                       choices=sorted(SYSTEMS))
    train.add_argument("--export-csv", metavar="PATH",
                       help="write the convergence series to CSV")
    train.add_argument("--export-json", metavar="PATH",
                       help="write the convergence series to JSON")

    compare = sub.add_parser("compare", help="compare several systems")
    add_workload_args(compare)
    compare.add_argument("--systems", default="MLlib,MLlib*",
                         help="comma-separated system names")

    gantt = sub.add_parser("gantt", help="render an ASCII gantt chart")
    add_workload_args(gantt)
    gantt.add_argument("--system", default="MLlib",
                       choices=sorted(SYSTEMS))
    gantt.add_argument("--width", type=int, default=96)

    plan = sub.add_parser(
        "plan", help="analytic per-step cost decomposition per system")
    plan.add_argument("--dataset", default="avazu",
                      help="catalog name or path to a LIBSVM file")
    plan.add_argument("--executors", type=int, default=8)

    tune = sub.add_parser("tune", help="grid-search one system")
    add_workload_args(tune)
    tune.add_argument("--system", default="MLlib*",
                      choices=sorted(SYSTEMS))
    tune.add_argument("--learning-rates", default="0.1,0.5,1.0",
                      help="comma-separated learning-rate candidates")
    tune.add_argument("--chunk-sizes", default="16,64",
                      help="comma-separated local chunk sizes")

    # ------------------------------------------------------------------
    # serving: save / predict / models / serve-bench
    # ------------------------------------------------------------------
    def add_model_source_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--model", metavar="PATH",
                       help="path to a saved model artifact (.npz)")
        p.add_argument("--registry", metavar="DIR",
                       help="model registry root directory")
        p.add_argument("--name", metavar="NAME",
                       help="registry model name (with --registry)")
        p.add_argument("--version", metavar="VID", default=None,
                       help="registry version id, e.g. v0001 (default: "
                            "the promoted version, else the latest)")

    def add_serve_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--serve-max-batch", type=int, default=32,
                       help="flush a batch at this many pending requests")
        p.add_argument("--serve-max-delay-ms", type=float, default=1.0,
                       help="latency deadline: dispatch a partial batch "
                            "once its oldest request has waited this "
                            "long (simulated milliseconds)")
        p.add_argument("--serve-queue-limit", type=int, default=None,
                       help="admission-queue bound; requests beyond it "
                            "are shed (default: 128 for serve-bench, "
                            "the dataset size for predict)")
        p.add_argument("--serve-workers", type=int, default=2,
                       help="simulated worker pool size")

    save = sub.add_parser(
        "save", help="train one system and persist the model")
    add_workload_args(save)
    save.add_argument("--system", default="MLlib*", choices=sorted(SYSTEMS))
    save.add_argument("--out", metavar="PATH",
                      help="write a standalone artifact file")
    save.add_argument("--registry", metavar="DIR",
                      help="save into this registry root instead")
    save.add_argument("--name", metavar="NAME",
                      help="registry model name (default: the dataset "
                           "name)")
    save.add_argument("--promote", action="store_true",
                      help="promote the new version to serving "
                           "(registry mode only)")

    predict = sub.add_parser(
        "predict", help="score a dataset with a saved model through the "
                        "batched prediction service")
    add_model_source_args(predict)
    add_serve_args(predict)
    predict.add_argument("--data", required=True, metavar="DATASET",
                         help="catalog name or path to a LIBSVM file")
    predict.add_argument("--shadow", metavar="VID", default=None,
                         help="also score through this registry version "
                              "(shadow/canary mode; needs --registry)")
    predict.add_argument("--head", type=int, default=0, metavar="N",
                         help="print the first N predictions")
    predict.add_argument("--export-json", metavar="PATH",
                         help="write predictions + metrics to JSON")
    predict.add_argument("--seed", type=int, default=0)

    models = sub.add_parser(
        "models", help="list a registry's models and versions")
    models.add_argument("--registry", required=True, metavar="DIR")
    models.add_argument("--name", default=None,
                        help="limit to one model name")

    bench = sub.add_parser(
        "serve-bench", help="open-loop load sweep: arrival rate vs "
                            "latency percentiles and shed rate")
    add_model_source_args(bench)
    add_serve_args(bench)
    bench.add_argument("--data", required=True, metavar="DATASET",
                       help="catalog name or path to a LIBSVM file "
                            "(request rows are sampled from it)")
    bench.add_argument("--rates", default=None, metavar="R1,R2,...",
                       help="absolute arrival rates to sweep (default: "
                            "0.25/0.5/1.0/1.5/2.0 x the pool's "
                            "saturation throughput)")
    bench.add_argument("--duration", type=float, default=0.2,
                       help="simulated seconds of load per rate")
    bench.add_argument("--shadow", metavar="VID", default=None,
                       help="shadow registry version scored on every "
                            "batch (needs --registry)")
    bench.add_argument("--out", metavar="PATH",
                       help="write the sweep to JSON "
                            "(e.g. BENCH_serving.json)")
    bench.add_argument("--seed", type=int, default=0)

    perf = sub.add_parser(
        "perf", help="wall-clock profiling: reference-vs-fast kernel "
                     "speedups and an execution-backend sweep")
    perf.add_argument("--rows", type=int, default=1500,
                      help="rows in the synthetic kernel workload")
    perf.add_argument("--features", type=int, default=40000,
                      help="features (model size) in the kernel workload")
    perf.add_argument("--repeats", type=int, default=3,
                      help="timing repeats per measurement (best-of-N)")
    perf.add_argument("--executors", type=int, default=4,
                      help="executors for the backend sweep workload")
    perf.add_argument("--steps", type=int, default=4,
                      help="training steps in the backend sweep workload")
    perf.add_argument("--seed", type=int, default=3)
    perf.add_argument("--skip-backends", action="store_true",
                      help="time only the kernels (skip the end-to-end "
                           "backend sweep)")
    perf.add_argument("--validate-network", action="store_true",
                      help="run ONLY the measured-vs-simulated network "
                           "validation: train serial vs socket (gated on "
                           "bit-identity), then compare the socket run's "
                           "measured bytes/seconds against the "
                           "NetworkModel's simulated pricing of the same "
                           "messages, plus a least-squares alpha/"
                           "bandwidth fit of the real transport")
    perf.add_argument("--out", metavar="PATH",
                      help="write the measurements to JSON")

    sched = sub.add_parser(
        "sched", help="multi-tenant cluster scheduler: queue management "
                      "and deterministic schedule playback")
    ssub = sched.add_subparsers(dest="sched_command", required=True)

    def add_sched_run_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--policy", default="fifo",
                       choices=list(SCHED_POLICIES),
                       help="admission order: strict arrival order with "
                            "backfill, or weighted fair share by job "
                            "priority")
        p.add_argument("--elastic", action="store_true",
                       help="grow/shrink elastic jobs between their "
                            "min/max widths at superstep barriers")
        p.add_argument("--preempt", action="store_true",
                       help="let a starved higher-priority job preempt "
                            "the lightest running job (checkpointed at "
                            "its next barrier; 'fair' policy only)")
        p.add_argument("--total-executors", type=int, default=8,
                       help="executors in the shared scheduler pool")
        p.add_argument("--resize-every", type=int, default=1,
                       help="consider elastic width changes only at "
                            "every Nth barrier of a job")
        p.add_argument("--seed", type=int, default=0,
                       help="seed for per-job sub-cluster construction")
        p.add_argument("--gantt", action="store_true",
                       help="render the per-job gantt chart")
        p.add_argument("--show-log", action="store_true",
                       help="print the full schedule event log")
        p.add_argument("--out", metavar="PATH",
                       help="write the run summary (report, per-job "
                            "rows, log digest) to JSON")

    def add_job_spec_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--name", required=True, help="unique job name")
        p.add_argument("--system", default="MLlib*",
                       choices=sorted(SYSTEMS))
        p.add_argument("--arrival", type=float, default=0.0,
                       help="simulated arrival second")
        p.add_argument("--priority", type=int, default=1,
                       help="fair-share weight (>= 1)")
        p.add_argument("--executors", type=int, default=4,
                       help="requested gang width")
        p.add_argument("--min-executors", type=int, default=None,
                       help="elastic lower width bound (default: rigid)")
        p.add_argument("--max-executors", type=int, default=None,
                       help="elastic upper width bound (default: rigid)")
        p.add_argument("--steps", type=int, default=5,
                       help="communication-step budget")
        p.add_argument("--rows", type=int, default=240,
                       help="synthetic dataset rows")
        p.add_argument("--features", type=int, default=64,
                       help="synthetic dataset features (model size)")
        p.add_argument("--nnz-per-row", type=float, default=8.0)
        p.add_argument("--data-seed", type=int, default=17)
        p.add_argument("--loss", default="hinge",
                       choices=["hinge", "logistic", "squared"])
        p.add_argument("--l2", type=float, default=0.1)
        p.add_argument("--learning-rate", type=float, default=0.5)
        p.add_argument("--schedule", default="inv_sqrt",
                       choices=["constant", "inv_sqrt", "inv_time"])
        p.add_argument("--batch-fraction", type=float, default=0.25)
        p.add_argument("--chunk-size", type=int, default=16)
        p.add_argument("--eval-every", type=int, default=1)
        p.add_argument("--seed", type=int, default=0,
                       help="trainer seed")

    submit = ssub.add_parser("submit", help="append one job to the queue")
    submit.add_argument("--queue", required=True, metavar="PATH",
                        help="JSON job-queue file (created if missing)")
    add_job_spec_args(submit)

    slist = ssub.add_parser("list", help="show the queued jobs")
    slist.add_argument("--queue", required=True, metavar="PATH")

    status = ssub.add_parser(
        "status", help="per-job status of the queue's last run (falls "
                       "back to the queue contents)")
    status.add_argument("--queue", required=True, metavar="PATH")
    status.add_argument("--name", default=None,
                        help="show one job only")

    cancel = ssub.add_parser("cancel", help="remove one job from the queue")
    cancel.add_argument("--queue", required=True, metavar="PATH")
    cancel.add_argument("--name", required=True)

    run = ssub.add_parser(
        "run", help="play the queue through the scheduler")
    run.add_argument("--queue", required=True, metavar="PATH")
    add_sched_run_args(run)

    trace = ssub.add_parser(
        "run-trace", help="generate a Poisson arrival trace and play it")
    trace.add_argument("--rate", type=float, default=40.0,
                       help="mean job arrivals per simulated second")
    trace.add_argument("--duration", type=float, default=0.25,
                       help="arrival window in simulated seconds")
    trace.add_argument("--trace-seed", type=int, default=0,
                       help="workload trace seed")
    trace.add_argument("--system", default="MLlib*",
                       choices=sorted(SYSTEMS))
    trace.add_argument("--elastic-jobs", action="store_true",
                       help="give generated jobs elastic width ranges")
    trace.add_argument("--max-width", type=int, default=6,
                       help="cap on any generated job's width")
    add_sched_run_args(trace)
    return parser


def _load_dataset(name: str):
    if name in CATALOG:
        return load(name)
    return read_libsvm(name)


def _make_objective(args) -> Objective:
    if args.l2 > 0:
        return Objective(args.loss, "l2", args.l2)
    return Objective(args.loss)


def _make_config(args, **overrides) -> TrainerConfig:
    base = dict(max_steps=args.steps, learning_rate=args.learning_rate,
                lr_schedule=args.schedule,
                batch_fraction=args.batch_fraction,
                local_chunk_size=args.chunk_size,
                local_epochs=getattr(args, "local_epochs", 1),
                tasks_per_executor=getattr(args, "tasks_per_executor", 1),
                lazy_l2=not getattr(args, "eager_l2", False),
                divergence_limit=getattr(args, "divergence_limit", 1.0e6),
                sanitize=getattr(args, "sanitize", False),
                sparse_comm=getattr(args, "sparse_comm", "off"),
                backend=getattr(args, "backend", "serial"),
                collective=getattr(args, "collective", "flat"),
                switch_slots=getattr(args, "switch_slots", 512),
                switch_chunk=getattr(args, "switch_chunk", 256),
                local_solver=getattr(args, "local_solver", "mgd"),
                gamma=getattr(args, "gamma", None),
                local_iters=getattr(args, "local_iters", 1),
                eval_every=args.eval_every, seed=args.seed,
                failure_rate=getattr(args, "failure_rate", 0.0),
                failure_schedule=getattr(args, "failure_schedule", None),
                checkpoint_every=getattr(args, "checkpoint_every", 0),
                max_retries=getattr(args, "max_retries", 2),
                restart_seconds=getattr(args, "restart_seconds", 1.0))
    if base["checkpoint_every"]:
        base["recovery_strategy"] = "checkpoint"
    base.update(overrides)
    return TrainerConfig(**base)


def _fit(system: str, args, stop_threshold: float | None = None):
    dataset = _load_dataset(args.dataset)
    objective = _make_objective(args)
    cluster = cluster1(executors=args.executors)
    overrides = {} if stop_threshold is None else {
        "stop_threshold": stop_threshold}
    trainer = SYSTEMS[system](objective, cluster,
                              _make_config(args, **overrides))
    return trainer.fit(dataset), dataset


def cmd_datasets(args) -> int:
    rows = []
    for name in dataset_names():
        card = CATALOG[name]
        rows.append([name, f"{card.spec.n_rows:,}",
                     f"{card.spec.n_features:,}",
                     "under" if card.is_underdetermined else "determined",
                     f"{card.paper_size_gb}GB"])
    print(format_table(
        ["name", "rows", "features", "conditioning", "paper size"],
        rows, title="analog dataset catalog (see Table I in the paper)"))
    return 0


def cmd_train(args) -> int:
    result, dataset = _fit(args.system, args)
    print(f"{args.system} on {dataset.name}: "
          f"{result.history.total_steps} steps, "
          f"{result.history.total_seconds:.3f} simulated seconds")
    rows = [[p.step, round(p.seconds, 4), round(p.objective, 6)]
            for p in result.history]
    print(format_table(["step", "sim seconds", "objective"], rows))
    if result.diverged:
        print("WARNING: training diverged")
    if result.failures:
        print(f"recovered from {len(result.failures)} injected "
              f"failure(s); {result.recovery_seconds:.3f} simulated "
              "seconds of recovery downtime")
    if result.duality_gaps:
        g = result.duality_gaps[-1]
        print(f"certified duality gap ({args.local_solver}, "
              f"H={args.local_iters}): {g.gap:.3e} at step {g.step} "
              f"(primal {g.primal:.6f}, dual {g.dual:.6f})")
    if result.comm and (getattr(args, "sparse_comm", "off") != "off"
                        or getattr(args, "collective", "flat") != "flat"):
        parts = []
        if getattr(args, "sparse_comm", "off") != "off":
            parts.append(f"sparse {args.sparse_comm}")
        if getattr(args, "collective", "flat") != "flat":
            parts.append(f"collective {args.collective}")
        print(f"communication ({', '.join(parts)}):")
        print(comm_report(result).describe())
    acc = result.model.accuracy(dataset.X, dataset.y)
    print(f"final objective {result.final_objective:.4f}, "
          f"training accuracy {acc:.1%}")
    if args.export_csv:
        write_history_csv([result.history], args.export_csv)
        print(f"wrote {args.export_csv}")
    if args.export_json:
        write_histories_json([result.history], args.export_json)
        print(f"wrote {args.export_json}")
    return 1 if result.diverged else 0


def cmd_compare(args) -> int:
    systems = [s.strip() for s in args.systems.split(",") if s.strip()]
    unknown = [s for s in systems if s not in SYSTEMS]
    if unknown:
        print(f"unknown systems: {unknown}; choose from {sorted(SYSTEMS)}",
              file=sys.stderr)
        return 2
    histories = []
    for system in systems:
        result, _ = _fit(system, args)
        histories.append(result.history)
    convergence = evaluate_convergence(histories)
    rows = []
    baseline = convergence[systems[0]]
    for system in systems:
        conv = convergence[system]
        rows.append([system, "yes" if conv.converged else "no",
                     conv.steps, None if conv.seconds is None
                     else round(conv.seconds, 3),
                     format_speedup(speedup(baseline, conv, "seconds"))])
    print(format_table(
        ["system", "converged", "steps to 0.01", "sec to 0.01",
         f"speedup vs {systems[0]}"], rows,
        title=f"{args.dataset}, loss={args.loss}, L2={args.l2:g}"))
    return 0


def cmd_gantt(args) -> int:
    result, dataset = _fit(args.system, args)
    print(f"{args.system} on {dataset.name} "
          f"({result.history.total_steps} steps)")
    print(render_ascii(result.trace, width=args.width))
    print(summarize(result.trace).describe())
    return 0


def cmd_plan(args) -> int:
    from .planner import ADVISABLE_SYSTEMS, WorkloadProfile, rank_systems
    dataset = _load_dataset(args.dataset)
    cluster = cluster1(executors=args.executors)
    profile = WorkloadProfile(
        model_size=dataset.n_features,
        nnz_per_step_per_worker=dataset.nnz / cluster.num_executors)
    costs = rank_systems(cluster, profile, ADVISABLE_SYSTEMS)
    rows = [[c.system, round(1000 * c.compute, 3),
             round(1000 * c.communication, 3), round(1000 * c.driver, 3),
             round(1000 * c.total, 3)] for c in costs]
    print(format_table(
        ["system", "compute ms", "comm ms", "driver ms", "total ms"],
        rows, title=f"per-step cost decomposition: {dataset.name}, "
                    f"{args.executors} executors (cheapest first)"))
    print("Note: per-step cost only — SendModel systems also need far "
          "fewer steps (Figure 4).")
    return 0


def cmd_tune(args) -> int:
    from .tuning import GridSearch
    dataset = _load_dataset(args.dataset)
    grid = {
        "learning_rate": [float(v) for v in
                          args.learning_rates.split(",") if v],
        "local_chunk_size": [int(v) for v in
                             args.chunk_sizes.split(",") if v],
    }
    search = GridSearch(
        trainer_cls=SYSTEMS[args.system],
        objective=_make_objective(args),
        cluster=cluster1(executors=args.executors),
        base_config=_make_config(args),
    )
    points = search.run(dataset, grid)
    rows = [[p.params["learning_rate"], p.params["local_chunk_size"],
             round(p.best_objective, 4),
             "yes" if p.converged else "no",
             None if p.seconds_to_target is None
             else round(p.seconds_to_target, 3)] for p in points]
    print(format_table(
        ["learning rate", "chunk size", "best f(w)", "converged",
         "sec to target"], rows,
        title=f"grid search: {args.system} on {dataset.name} "
              "(best first)"))
    print(f"best: {points[0].params}")
    return 0


# ----------------------------------------------------------------------
# serving commands
# ----------------------------------------------------------------------
def _make_serve_config(args, default_queue: int) -> ServeConfig:
    queue_limit = args.serve_queue_limit
    if queue_limit is None:
        queue_limit = default_queue
    return ServeConfig(max_batch=args.serve_max_batch,
                       max_delay=args.serve_max_delay_ms / 1000.0,
                       queue_limit=queue_limit,
                       workers=args.serve_workers,
                       seed=args.seed)


def _resolve_model(args) -> tuple[GLMModel, str]:
    """Load the model named by --model or --registry/--name."""
    if args.model and args.registry:
        raise RegistryError("pass either --model or --registry, not both")
    if args.model:
        return GLMModel.load(args.model), Path(args.model).name
    if not args.registry or not args.name:
        raise RegistryError(
            "need a model source: --model PATH, or --registry DIR "
            "--name NAME")
    registry = ModelRegistry(args.registry)
    path = registry.resolve(args.name, args.version)
    return GLMModel.load(path), f"{args.name}/{path.stem}"


def _resolve_shadow(args) -> tuple[GLMModel, str] | None:
    if args.shadow is None:
        return None
    if not args.registry or not args.name:
        raise RegistryError("--shadow needs --registry and --name")
    registry = ModelRegistry(args.registry)
    return (registry.load_model(args.name, args.shadow),
            f"{args.name}/{args.shadow}")


def cmd_save(args) -> int:
    if not args.out and not args.registry:
        print("save: need --out PATH or --registry DIR", file=sys.stderr)
        return 2
    result, dataset = _fit(args.system, args)
    model = result.model
    provenance = {
        "system": args.system, "dataset": dataset.name,
        "loss": args.loss, "l2": args.l2, "seed": args.seed,
        "steps": result.history.total_steps,
        "final_objective": result.final_objective,
    }
    acc = model.accuracy(dataset.X, dataset.y)
    print(f"{args.system} on {dataset.name}: "
          f"final objective {result.final_objective:.4f}, "
          f"training accuracy {acc:.1%}")
    if args.out:
        path = model.save(args.out, provenance=provenance)
        print(f"wrote artifact {path}")
    if args.registry:
        registry = ModelRegistry(args.registry)
        name = args.name or dataset.name
        version = registry.save_model(model, name, provenance=provenance)
        print(f"registered {name}/{version} in {args.registry}")
        if args.promote:
            registry.promote(name, version)
            print(f"promoted {name}/{version}")
    return 1 if result.diverged else 0


def cmd_predict(args) -> int:
    try:
        model, label = _resolve_model(args)
        shadow = _resolve_shadow(args)
    except (ArtifactError, RegistryError) as exc:
        print(f"predict: {exc}", file=sys.stderr)
        return 2
    dataset = _load_dataset(args.data)
    config = _make_serve_config(args, default_queue=dataset.n_rows)
    service = PredictionService(
        model, config, shadow=None if shadow is None else shadow[0],
        primary_version=label,
        shadow_version="" if shadow is None else shadow[1])
    result = service.process(dataset_requests(dataset))
    if result.shed:
        print(f"WARNING: {len(result.shed)} requests shed (queue limit "
              f"{config.queue_limit}); metrics cover the completed rows",
              file=sys.stderr)

    by_id = result.by_id()
    served = sorted(by_id)
    correct = sum(1 for i in served
                  if by_id[i].label == dataset.y[i])
    print(f"{label} on {dataset.name}: {result.completed} rows scored "
          f"in {len(result.batch_sizes)} batches "
          f"(mean batch {result.mean_batch:.1f})")
    print(f"accuracy {correct / max(1, len(served)):.4f}")
    print(serving_report(result).describe())
    if args.head > 0:
        rows = [[i, round(by_id[i].margin, 6), int(by_id[i].label),
                 int(dataset.y[i]), round(by_id[i].latency, 6)]
                for i in served[:args.head]]
        print(format_table(
            ["row", "margin", "predicted", "label", "latency s"], rows,
            title=f"first {min(args.head, len(rows))} predictions"))
    if args.export_json:
        payload = {
            "model": label, "dataset": dataset.name,
            "serving": result.summary(),
            "accuracy": correct / max(1, len(served)),
            "predictions": [
                {"row": i, "margin": by_id[i].margin,
                 "label": by_id[i].label} for i in served
            ],
        }
        Path(args.export_json).write_text(
            json.dumps(payload, indent=2), encoding="ascii")
        print(f"wrote {args.export_json}")
    return 0


def cmd_models(args) -> int:
    registry = ModelRegistry(args.registry)
    names = [args.name] if args.name else registry.model_names()
    if not names:
        print(f"registry {args.registry} is empty")
        return 0
    code = 0
    for name in names:
        try:
            infos = registry.list_versions(name)
        except (ArtifactError, RegistryError) as exc:
            print(f"models: {exc}", file=sys.stderr)
            code = 2
            continue
        print(format_table(
            ["version", "dim", "objective", "digest", "promoted"],
            [info.row() for info in infos],
            title=f"{name} ({len(infos)} versions)"))
    return code


def cmd_serve_bench(args) -> int:
    try:
        model, label = _resolve_model(args)
        shadow = _resolve_shadow(args)
    except (ArtifactError, RegistryError) as exc:
        print(f"serve-bench: {exc}", file=sys.stderr)
        return 2
    dataset = _load_dataset(args.data)
    config = _make_serve_config(args, default_queue=128)
    cost = ServingCostModel()
    nnz_per_row = dataset.nnz / dataset.n_rows
    saturation = cost.saturation_qps(config.workers, config.max_batch,
                                     nnz_per_row)
    if args.rates:
        rates = [float(v) for v in args.rates.split(",") if v.strip()]
    else:
        rates = [round(saturation * m) for m in (0.25, 0.5, 1.0, 1.5, 2.0)]
    rows = rate_sweep(model, dataset, config, rates, args.duration,
                      cost=cost,
                      shadow=None if shadow is None else shadow[0])
    table = [[r["rate"], r["offered"], r["completed"],
              f"{r['shed_rate']:.1%}", round(r["qps"], 1),
              round(r["mean_batch"], 2),
              round(r["latency"].get("p50", 0.0), 6),
              round(r["latency"].get("p99", 0.0), 6)] for r in rows]
    print(format_table(
        ["rate req/s", "offered", "completed", "shed", "qps",
         "mean batch", "p50 s", "p99 s"], table,
        title=f"open-loop sweep: {label} on {dataset.name} "
              f"({config.workers} workers, batch {config.max_batch}, "
              f"queue {config.queue_limit}; saturation "
              f"~{saturation:.0f} req/s)"))
    if args.out:
        payload = {
            "bench": "serving", "model": label, "dataset": dataset.name,
            "saturation_qps": saturation,
            "config": {
                "max_batch": config.max_batch,
                "max_delay": config.max_delay,
                "queue_limit": config.queue_limit,
                "workers": config.workers,
                "seed": config.seed,
                "duration": args.duration,
            },
            "rows": rows,
        }
        Path(args.out).write_text(json.dumps(payload, indent=2),
                                  encoding="ascii")
        print(f"wrote {args.out}")
    return 0


def _print_netcheck(report: dict) -> None:
    measured = report["measured"]
    simulated = report["simulated"]
    print(f"bit-identity gate: PASSED "
          f"({report['workload']['history_points']} history points, "
          f"{report['workload']['system']} on "
          f"{report['workload']['dataset']}, "
          f"{report['workload']['executors']} executors)")
    print(f"measured wire: {measured['messages']} messages, "
          f"{measured['bytes_on_wire']:,} bytes "
          f"({measured['install_bytes']:,} one-time install), "
          f"{measured['task_comm_seconds']:.4f}s comm / "
          f"{measured['compute_seconds']:.4f}s daemon compute")
    print(f"simulated (NetworkModel alpha={simulated['alpha_seconds']:g}s, "
          f"bandwidth={simulated['bandwidth_bytes_per_second']:g} B/s): "
          f"{simulated['task_seconds']:.4f}s for the same task messages")
    ratio = report["ratio_measured_over_simulated"]
    if ratio is not None:
        print(f"measured / simulated comm seconds: {ratio:.4f} "
              "(localhost TCP vs the paper's 1 Gbps fabric — expect "
              "well under 1)")
    fitted = report["fitted"]
    if fitted["ok"]:
        print(f"fitted localhost transport: "
              f"alpha={fitted['alpha_seconds']:.2e}s, "
              f"bandwidth={fitted['bandwidth_bytes_per_second']:.3g} B/s "
              f"(rms residual {fitted['rms_residual_seconds']:.2e}s over "
              f"{fitted['samples']} supersteps)")
    else:
        print("fitted localhost transport: not identifiable from this "
              f"run — {fitted['reason']}")
    rows = [[r["superstep"], r["messages"], f"{r['bytes']:,}",
             f"{r['measured_comm_seconds']:.5f}",
             f"{r['simulated_seconds']:.5f}"]
            for r in report["per_superstep"]]
    print(format_table(
        ["superstep", "messages", "bytes", "measured comm s",
         "simulated s"], rows,
        title="per-superstep wire accounting (superstep 0 = one-time "
              "partition install)"))


def cmd_perf(args) -> int:
    # Imported here (not at module top): the harness is the one module
    # allowed to read the wall clock, and most CLI commands never need it.
    from .data import SyntheticSpec, generate
    from .perf.harness import backend_sweep, kernel_benchmarks
    from .perf.netcheck import validate_network

    if args.validate_network:
        report = validate_network(executors=args.executors,
                                  steps=args.steps, seed=args.seed)
        _print_netcheck(report)
        if args.out:
            Path(args.out).write_text(json.dumps(report, indent=2),
                                      encoding="ascii")
            print(f"wrote {args.out}")
        return 0

    kernels = kernel_benchmarks(rows=args.rows, features=args.features,
                                repeats=args.repeats)
    print(format_table(
        ["kernel", "reference s", "fast s", "speedup", "bit-identical"],
        [[e["kernel"], f"{e['reference_seconds']:.4f}",
          f"{e['fast_seconds']:.4f}", f"{e['speedup']:.2f}x",
          "yes" if e["bit_identical"] else "NO"] for e in kernels],
        title=f"local-solver kernels: reference vs fast "
              f"({args.rows} rows x {args.features} features, "
              f"best of {args.repeats})"))

    payload = {"bench": "wallclock-cli", "kernels": kernels}
    if not args.skip_backends:
        dataset = generate(SyntheticSpec(n_rows=400, n_features=48,
                                         nnz_per_row=8.0, noise=0.02,
                                         seed=17), name="perf-sweep")
        objective = Objective("hinge", "l2", 0.1)

        def make_trainer(backend: str):
            config = TrainerConfig(max_steps=args.steps, learning_rate=0.3,
                                   lr_schedule="inv_sqrt",
                                   batch_fraction=0.25, local_chunk_size=16,
                                   seed=args.seed, backend=backend)
            return MLlibStarTrainer(
                objective, cluster1(executors=args.executors), config)

        sweep = backend_sweep(make_trainer, dataset, repeats=args.repeats)
        print()
        print(format_table(
            ["backend", "wall s", "speedup vs baseline"],
            [[name, f"{sweep['seconds'][name]:.4f}",
              f"{sweep['speedup_vs_baseline'][name]:.2f}x"]
             for name in sweep["seconds"]],
            title=f"MLlib* end-to-end backends (baseline: "
                  f"{sweep['baseline']}; histories bit-identical)"))
        payload["backends"] = sweep
    if args.out:
        Path(args.out).write_text(json.dumps(payload, indent=2),
                                  encoding="ascii")
        print(f"wrote {args.out}")
    return 0


def _make_sched_config(args) -> SchedConfig:
    return SchedConfig(policy=args.policy, elastic=args.elastic,
                       preempt=args.preempt,
                       total_executors=args.total_executors,
                       resize_every=args.resize_every, seed=args.seed)


def _sched_queue_path(args) -> Path:
    return Path(args.queue)


def _sched_status_path(queue: Path) -> Path:
    return queue.with_suffix(queue.suffix + ".status")


def _sched_load_queue(queue: Path) -> list[JobSpec]:
    if not queue.exists():
        return []
    payload = json.loads(queue.read_text(encoding="ascii"))
    return [JobSpec.from_json(entry) for entry in payload["jobs"]]


def _sched_save_queue(queue: Path, specs: list[JobSpec]) -> None:
    payload = {"jobs": [spec.to_json() for spec in specs]}
    queue.write_text(json.dumps(payload, indent=2, sort_keys=True),
                     encoding="ascii")


_SCHED_JOB_HEADERS = ["job", "state", "prio", "arrival", "steps", "width",
                      "wait s", "jct s", "preempt", "resize", "converged"]


def _sched_job_rows(summaries: list[dict]) -> list[list[object]]:
    return [[s["name"], s["state"], s["priority"], round(s["arrival"], 4),
             f"{s['steps_done']}/{s['steps']}", s["width"],
             round(s["queue_wait"], 4),
             None if s["jct"] is None else round(s["jct"], 4),
             s["preemptions"], s["resizes"],
             "yes" if s["converged"] else "no"]
            for s in summaries]


def _sched_play(args, specs: list[JobSpec], queue: Path | None) -> int:
    try:
        config = _make_sched_config(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    scheduler = ClusterScheduler(config)
    for spec in specs:
        scheduler.submit(spec)
    result = scheduler.run()
    report = sched_report(result)
    summaries = [job.summary() for job in result.jobs]
    print(format_table(_SCHED_JOB_HEADERS, _sched_job_rows(summaries),
                       title=f"schedule ({config.policy}"
                             f"{', elastic' if config.elastic else ''}"
                             f"{', preempt' if config.preempt else ''}, "
                             f"{config.total_executors} executors)"))
    print()
    print(report.describe())
    print(f"schedule log: {len(result.log)} events, "
          f"digest {result.log.digest()[:16]}")
    if args.show_log:
        print()
        print(result.log.text(), end="")
    if args.gantt:
        print()
        print(render_ascii(result.trace, width=72))
    payload = {
        "config": {"policy": config.policy, "elastic": config.elastic,
                   "preempt": config.preempt,
                   "total_executors": config.total_executors,
                   "resize_every": config.resize_every,
                   "seed": config.seed},
        "report": {
            "jobs": report.jobs, "finished": report.finished,
            "preemptions": report.preemptions, "resizes": report.resizes,
            "makespan": report.makespan, "goodput": report.goodput,
            "utilization": report.utilization,
            "mean_queue_wait": report.mean_queue_wait,
            "jct_p50": report.jct_p50, "jct_p95": report.jct_p95},
        "jobs": summaries,
        "log_digest": result.log.digest(),
    }
    if queue is not None:
        _sched_status_path(queue).write_text(
            json.dumps(payload, indent=2, sort_keys=True), encoding="ascii")
    if args.out:
        Path(args.out).write_text(
            json.dumps(payload, indent=2, sort_keys=True), encoding="ascii")
        print(f"wrote {args.out}")
    return 0


def cmd_sched_submit(args) -> int:
    queue = _sched_queue_path(args)
    specs = _sched_load_queue(queue)
    if any(spec.name == args.name for spec in specs):
        print(f"error: job {args.name!r} is already queued",
              file=sys.stderr)
        return 1
    specs.append(JobSpec(
        name=args.name, system=args.system, arrival=args.arrival,
        priority=args.priority, executors=args.executors,
        min_executors=args.min_executors,
        max_executors=args.max_executors, steps=args.steps,
        n_rows=args.rows, n_features=args.features,
        nnz_per_row=args.nnz_per_row, data_seed=args.data_seed,
        loss=args.loss, l2=args.l2, learning_rate=args.learning_rate,
        lr_schedule=args.schedule, batch_fraction=args.batch_fraction,
        local_chunk_size=args.chunk_size, eval_every=args.eval_every,
        seed=args.seed))
    _sched_save_queue(queue, specs)
    print(f"queued {args.name} ({len(specs)} job(s) in {queue})")
    return 0


def cmd_sched_list(args) -> int:
    specs = _sched_load_queue(_sched_queue_path(args))
    if not specs:
        print("queue is empty")
        return 0
    print(format_table(
        ["job", "system", "arrival", "prio", "width", "steps", "rows",
         "features"],
        [[s.name, s.system, round(s.arrival, 4), s.priority,
          (f"{s.width_range[0]}-{s.width_range[1]}" if s.elastic
           else str(s.executors)), s.steps, s.n_rows, s.n_features]
         for s in specs],
        title=f"{len(specs)} queued job(s)"))
    return 0


def cmd_sched_status(args) -> int:
    queue = _sched_queue_path(args)
    status = _sched_status_path(queue)
    if not status.exists():
        print("no run recorded for this queue yet; queued jobs:")
        return cmd_sched_list(args)
    payload = json.loads(status.read_text(encoding="ascii"))
    summaries = payload["jobs"]
    if args.name is not None:
        summaries = [s for s in summaries if s["name"] == args.name]
        if not summaries:
            print(f"error: no job named {args.name!r} in the last run",
                  file=sys.stderr)
            return 1
    print(format_table(_SCHED_JOB_HEADERS, _sched_job_rows(summaries),
                       title=f"last run ({payload['config']['policy']}, "
                             f"digest {payload['log_digest'][:16]})"))
    return 0


def cmd_sched_cancel(args) -> int:
    queue = _sched_queue_path(args)
    specs = _sched_load_queue(queue)
    kept = [spec for spec in specs if spec.name != args.name]
    if len(kept) == len(specs):
        print(f"error: no queued job named {args.name!r}", file=sys.stderr)
        return 1
    _sched_save_queue(queue, kept)
    print(f"cancelled {args.name} ({len(kept)} job(s) remain)")
    return 0


def cmd_sched_run(args) -> int:
    queue = _sched_queue_path(args)
    specs = _sched_load_queue(queue)
    if not specs:
        print("error: queue is empty", file=sys.stderr)
        return 1
    return _sched_play(args, specs, queue)


def cmd_sched_run_trace(args) -> int:
    specs = poisson_job_trace(rate=args.rate, duration=args.duration,
                              seed=args.trace_seed, system=args.system,
                              elastic=args.elastic_jobs,
                              max_width=args.max_width)
    if not specs:
        print("error: trace window produced no arrivals; raise --rate "
              "or --duration", file=sys.stderr)
        return 1
    print(f"generated {len(specs)} job(s) "
          f"(rate {args.rate}/s over {args.duration}s, "
          f"seed {args.trace_seed})")
    return _sched_play(args, specs, None)


SCHED_COMMANDS = {
    "submit": cmd_sched_submit,
    "list": cmd_sched_list,
    "status": cmd_sched_status,
    "cancel": cmd_sched_cancel,
    "run": cmd_sched_run,
    "run-trace": cmd_sched_run_trace,
}


def cmd_sched(args) -> int:
    return SCHED_COMMANDS[args.sched_command](args)


COMMANDS = {
    "datasets": cmd_datasets,
    "train": cmd_train,
    "compare": cmd_compare,
    "gantt": cmd_gantt,
    "plan": cmd_plan,
    "tune": cmd_tune,
    "save": cmd_save,
    "predict": cmd_predict,
    "models": cmd_models,
    "serve-bench": cmd_serve_bench,
    "perf": cmd_perf,
    "sched": cmd_sched,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
