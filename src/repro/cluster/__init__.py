"""Simulated cluster substrate: nodes, network, compute cost, traces.

Training math in this reproduction is *real*; the cluster substrate only
assigns simulated wall-clock time to the work and communication that the
trainers perform, so that experiments at 8 or 128 "machines" run on one
host while preserving the relative timing behaviour the paper analyzes.
"""

from .cluster import ClusterSpec, cluster1, cluster2, tiered_cluster
from .cost import ComputeCostModel
from .faults import (FAILURE_PHASES, CompositeFailures, FailureEvent,
                     FailureModel, FailureRecord, NoFailures, RandomFailures,
                     RecoveryError, RecoveryPolicy, ScheduledFailures,
                     SlowNetworkEpisode, build_failure_model,
                     parse_failure_schedule)
from .network import GIGABIT, TEN_GIGABIT, NetworkModel, TieredNetworkModel
from .node import (LogNormalStragglers, NodeSpec, NoStragglers,
                   StragglerModel, heterogeneous_nodes, homogeneous_nodes)
from .trace import SPAN_KINDS, Span, Trace

__all__ = [
    "ClusterSpec", "cluster1", "cluster2", "tiered_cluster",
    "ComputeCostModel",
    "NetworkModel", "TieredNetworkModel", "GIGABIT", "TEN_GIGABIT",
    "NodeSpec", "StragglerModel", "NoStragglers", "LogNormalStragglers",
    "homogeneous_nodes", "heterogeneous_nodes",
    "Span", "Trace", "SPAN_KINDS",
    "FAILURE_PHASES", "FailureEvent", "FailureRecord", "FailureModel",
    "NoFailures", "RandomFailures", "ScheduledFailures", "CompositeFailures",
    "SlowNetworkEpisode", "RecoveryPolicy", "RecoveryError",
    "build_failure_model", "parse_failure_schedule",
]
