"""Cluster specifications and the two paper testbeds.

A :class:`ClusterSpec` bundles the node list, the network model, the compute
cost model and the straggler model, and exposes the per-(worker, step)
slowdown sampling used by BSP barriers.

Presets reproduce the paper's Section V-A:

* :func:`cluster1` — 9 nodes (1 driver + 8 executors), 2x8-core CPUs,
  24 GB memory, 1 Gbps network, homogeneous.
* :func:`cluster2` — n heterogeneous nodes out of a 953-node production
  cluster, 2x10-core CPUs, ~360 GB memory each, 10 Gbps network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .cost import ComputeCostModel
from .network import (GIGABIT, TEN_GIGABIT, NetworkModel,
                      TieredNetworkModel)
from .node import (LogNormalStragglers, NodeSpec, NoStragglers,
                   StragglerModel, heterogeneous_nodes, homogeneous_nodes)

__all__ = ["ClusterSpec", "cluster1", "cluster2", "tiered_cluster"]


@dataclass
class ClusterSpec:
    """A simulated cluster: nodes + network + cost + straggler models.

    The first node is the driver in driver-based engines; the remaining
    ``len(nodes) - 1`` nodes are executors.  Engines that have no driver
    (pure parameter-server deployments) may use all nodes as workers.
    """

    nodes: list[NodeSpec]
    network: NetworkModel = field(default_factory=NetworkModel)
    compute: ComputeCostModel = field(default_factory=ComputeCostModel)
    stragglers: StragglerModel = field(default_factory=NoStragglers)
    seed: int = 0
    #: Machine placement map for hierarchical collectives:
    #: ``placement[i]`` is the machine id hosting executor ``i``.  ``None``
    #: (the default) means one executor per machine — the flat topology,
    #: under which the hierarchical collective degenerates to the flat one.
    placement: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("cluster must have at least one node")
        ids = [n.node_id for n in self.nodes]
        if len(set(ids)) != len(ids):
            raise ValueError("node ids must be unique")
        if self.placement is not None:
            self.placement = tuple(int(mid) for mid in self.placement)
            if len(self.placement) != self.num_executors:
                raise ValueError(
                    f"placement maps {len(self.placement)} executors, "
                    f"cluster has {self.num_executors}")
            if any(mid < 0 for mid in self.placement):
                raise ValueError("machine ids must be non-negative")
            machines = max(self.placement) + 1
            hosted = [False] * machines
            for mid in self.placement:
                hosted[mid] = True
            if not all(hosted):
                raise ValueError(
                    "machine ids must be contiguous: every id in "
                    f"[0, {machines}) must host at least one executor")
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------
    @property
    def driver(self) -> NodeSpec:
        return self.nodes[0]

    @property
    def executors(self) -> list[NodeSpec]:
        return self.nodes[1:]

    @property
    def num_executors(self) -> int:
        return max(0, len(self.nodes) - 1)

    def executor_groups(self) -> tuple[tuple[int, ...], ...]:
        """Executors grouped by hosting machine, for two-tier collectives.

        Returns one tuple of executor indices per machine, members in
        ascending index order and groups in ascending machine-id order —
        a deterministic traversal order (rule DET002: group membership is
        a reduction order, never hash order).  With no placement map every
        executor is its own machine: singleton groups, the degenerate
        topology under which hierarchical pricing equals flat pricing.
        """
        k = self.num_executors
        if self.placement is None:
            return tuple((i,) for i in range(k))
        machines = max(self.placement) + 1
        members: list[list[int]] = [[] for _ in range(machines)]
        for executor, machine in enumerate(self.placement):
            members[machine].append(executor)
        return tuple(tuple(group) for group in members)

    def slowdown(self, node: NodeSpec, step: int) -> float:
        """Sample the transient slowdown for ``node`` at superstep ``step``."""
        return self.stragglers.slowdown(self._rng, node, step)

    def reset_rng(self) -> None:
        """Reset the straggler RNG so repeated runs are reproducible."""
        self._rng = np.random.default_rng(self.seed)


def cluster1(executors: int = 8, stragglers: StragglerModel | None = None,
             seed: int = 0,
             compute: ComputeCostModel | None = None) -> ClusterSpec:
    """The paper's Cluster 1: homogeneous, 1 Gbps, 1 driver + 8 executors."""
    nodes = homogeneous_nodes(executors + 1, speed=1.0, cores=16,
                              memory_gb=24.0)
    return ClusterSpec(
        nodes=nodes,
        network=NetworkModel(bandwidth=GIGABIT, alpha=1.0e-3),
        compute=compute if compute is not None else ComputeCostModel(),
        stragglers=stragglers if stragglers is not None else NoStragglers(),
        seed=seed,
    )


def cluster2(machines: int = 32, speed_sigma: float = 0.25,
             straggler_sigma: float = 0.35, seed: int = 0,
             compute: ComputeCostModel | None = None) -> ClusterSpec:
    """A slice of the paper's Cluster 2: heterogeneous, 10 Gbps.

    ``machines`` counts executors; one extra node is added as the driver.
    Heterogeneity has two layers (static speed spread + transient
    stragglers), which is what produces the poor 32->128 scaling of
    Figure 6(d).
    """
    if machines < 1:
        raise ValueError("need at least one machine")
    rng = np.random.default_rng(seed)
    nodes = heterogeneous_nodes(machines + 1, rng, speed_sigma=speed_sigma)
    return ClusterSpec(
        nodes=nodes,
        network=NetworkModel(bandwidth=TEN_GIGABIT, alpha=5.0e-4),
        compute=compute if compute is not None else ComputeCostModel(),
        stragglers=LogNormalStragglers(sigma=straggler_sigma),
        seed=seed,
    )


def tiered_cluster(machines: int = 2, executors_per_machine: int = 4,
                   stragglers: StragglerModel | None = None, seed: int = 0,
                   compute: ComputeCostModel | None = None,
                   network: TieredNetworkModel | None = None) -> ClusterSpec:
    """Cluster 1's hardware re-racked into multi-executor machines.

    ``machines * executors_per_machine`` executors (plus a driver) on
    Cluster 1-class nodes, with a :class:`TieredNetworkModel` (1 Gbps
    cross-node fabric, ~100 Gbps shared-memory intra tier) and a block
    placement map: executor ``i`` lives on machine
    ``i // executors_per_machine``.  The topology the hierarchical
    collective exploits — and the one ``bench_ext_topology`` sweeps.
    """
    if machines < 1:
        raise ValueError("need at least one machine")
    if executors_per_machine < 1:
        raise ValueError("need at least one executor per machine")
    k = machines * executors_per_machine
    nodes = homogeneous_nodes(k + 1, speed=1.0, cores=16, memory_gb=24.0)
    return ClusterSpec(
        nodes=nodes,
        network=network if network is not None
        else TieredNetworkModel(bandwidth=GIGABIT, alpha=1.0e-3),
        compute=compute if compute is not None else ComputeCostModel(),
        stragglers=stragglers if stragglers is not None else NoStragglers(),
        seed=seed,
        placement=tuple(i // executors_per_machine for i in range(k)),
    )
