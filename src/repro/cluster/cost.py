"""Compute cost model: converting training work into simulated seconds.

The unit of computational work for sparse GLM training is the *nonzero
processed*: computing a dot product ``w . x`` and the corresponding gradient
contribution touches each stored nonzero of ``x`` a constant number of
times.  The cost model therefore prices a pass over a batch as::

    seconds = nnz(batch) * sec_per_nnz * update_factor / node.speed

``update_factor`` lets trainers express that their inner loop does more work
per nonzero — e.g. SendModel workers apply the update immediately after the
gradient (roughly 2x the FLOPs of gradient-only), and eager dense L2 decay
touches every model coordinate per update, which is what the Bottou lazy
trick avoids.

A separate dense term prices operations that touch every model coordinate
(dense regularization, model averaging itself) at ``sec_per_coord``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .node import NodeSpec

__all__ = ["ComputeCostModel"]


@dataclass(frozen=True)
class ComputeCostModel:
    """Prices local computation in simulated seconds.

    Parameters
    ----------
    sec_per_nnz:
        Seconds per nonzero processed on the reference (speed=1) node.
        The default corresponds to ~50M sparse FLOP-pairs per second, a
        realistic figure for JVM sparse kernels circa the paper's testbed.
    sec_per_coord:
        Seconds per dense model coordinate touched (vector axpy/scale).
    task_launch_seconds:
        Fixed scheduling/dispatch cost per task launched on an executor
        (Spark task serialization, scheduling RPC).  Only multi-wave
        execution pays it more than once per superstep.
    """

    sec_per_nnz: float = 2.0e-8
    sec_per_coord: float = 2.0e-9
    task_launch_seconds: float = 5.0e-3

    def __post_init__(self) -> None:
        if self.sec_per_nnz <= 0:
            raise ValueError("sec_per_nnz must be positive")
        if self.sec_per_coord <= 0:
            raise ValueError("sec_per_coord must be positive")
        if self.task_launch_seconds < 0:
            raise ValueError("task_launch_seconds must be non-negative")

    def sparse_pass_seconds(self, nnz: float, node: NodeSpec,
                            update_factor: float = 1.0) -> float:
        """Cost of one pass over ``nnz`` stored nonzeros on ``node``."""
        if nnz < 0:
            raise ValueError("nnz must be non-negative")
        if update_factor <= 0:
            raise ValueError("update_factor must be positive")
        return node.compute_seconds(nnz * self.sec_per_nnz * update_factor)

    def dense_op_seconds(self, coords: float, node: NodeSpec) -> float:
        """Cost of touching ``coords`` dense model coordinates on ``node``."""
        if coords < 0:
            raise ValueError("coords must be non-negative")
        return node.compute_seconds(coords * self.sec_per_coord)
