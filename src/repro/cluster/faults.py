"""Fault injection and recovery policies for the simulated cluster.

Spark's headline robustness claim — surviving executor loss via lineage
recomputation and checkpointing — is absent from the paper's evaluation,
which assumes failure-free runs.  This module supplies the missing failure
models so the engines can price recovery and answer the obvious question:
does MLlib*'s driver-free AllReduce stay ahead of driver-centric
SendGradient once recovery costs are included?

Design rules, mirroring the straggler machinery:

* **Failures change the clock, never the weights.**  A crashed executor's
  work for the superstep is voided and deterministically redone, so every
  run produces the same iterates with and without injected failures — only
  simulated time and the trace differ.
* **Everything is seeded.**  :class:`RandomFailures` derives each draw
  from ``(seed, step, executor, attempt)``, so outcomes are reproducible
  and independent of evaluation order; :class:`ScheduledFailures` scripts
  exact "executor e dies at step s" scenarios for tests and benchmarks.
* **Recovery is a policy.**  :class:`RecoveryPolicy` caps retries and
  chooses between lineage recomputation (Spark's default) and restoring
  from a periodic checkpoint; exceeding the retry cap raises
  :class:`RecoveryError` — the run is lost, as it would be on a real
  cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FAILURE_PHASES",
    "FailureEvent",
    "FailureRecord",
    "FailureModel",
    "NoFailures",
    "RandomFailures",
    "ScheduledFailures",
    "CompositeFailures",
    "SlowNetworkEpisode",
    "RecoveryPolicy",
    "RecoveryError",
    "parse_failure_schedule",
    "build_failure_model",
]

#: Phases a crash can be attributed to.  ``compute`` covers local work in
#: both engines; ``aggregate`` is MLlib's fan-in; the two shuffle phases
#: belong to MLlib*'s AllReduce.
FAILURE_PHASES = ("compute", "aggregate", "reduce_scatter", "all_gather")


class RecoveryError(RuntimeError):
    """An executor kept failing past the policy's retry budget."""


@dataclass(frozen=True)
class FailureEvent:
    """One scripted (or sampled) executor crash.

    ``at_fraction`` places the crash within the phase's work: 0.5 means
    half the attempt's time was spent (and wasted) before the crash.
    ``repeats`` makes the same crash recur on consecutive retry attempts,
    which is how retry exhaustion is scripted.
    """

    executor: int
    step: int
    phase: str = "compute"
    at_fraction: float = 0.5
    repeats: int = 1

    def __post_init__(self) -> None:
        if self.executor < 0:
            raise ValueError("executor index must be non-negative")
        if self.step < 1:
            raise ValueError("steps are 1-based; got step "
                             f"{self.step}")
        if self.phase not in FAILURE_PHASES:
            raise ValueError(f"unknown failure phase {self.phase!r}; "
                             f"expected one of {FAILURE_PHASES}")
        if not 0.0 <= self.at_fraction <= 1.0:
            raise ValueError("at_fraction must be in [0, 1]")
        if self.repeats < 1:
            raise ValueError("repeats must be at least 1")


@dataclass(frozen=True)
class FailureRecord:
    """One materialized failure, logged by an engine as it happens.

    ``time`` is the simulated second at which the crash hit; tests assert
    that every ``recovery`` span in the trace starts at a logged crash.
    """

    node: str
    step: int
    phase: str
    time: float
    attempt: int


@dataclass(frozen=True)
class SlowNetworkEpisode:
    """A transient network degradation over a step interval (inclusive)."""

    start_step: int
    end_step: int
    factor: float

    def __post_init__(self) -> None:
        if self.start_step < 1 or self.end_step < self.start_step:
            raise ValueError("need 1 <= start_step <= end_step")
        if self.factor < 1.0:
            raise ValueError("slowdown factor must be >= 1")

    def active(self, step: int) -> bool:
        return self.start_step <= step <= self.end_step


class FailureModel:
    """Base class: decides whether an attempt crashes, and network health.

    ``crash_event(step, phase, executor, attempt)`` is consulted by the
    engines before *every* attempt (attempt 0 is the first try, attempt
    ``n`` the n-th retry); returning an event voids that attempt's work.
    """

    #: False only for :class:`NoFailures`; lets engines skip the
    #: failure path entirely so default runs stay bit-identical.
    enabled = True

    def crash_event(self, step: int, phase: str, executor: int,
                    attempt: int) -> FailureEvent | None:
        raise NotImplementedError

    def network_slowdown(self, step: int) -> float:
        """Multiplicative factor on network transfer times at ``step``."""
        return 1.0

    def validate_executors(self, num_executors: int) -> None:
        """Reject scripted events that can never fire on this cluster.

        The engines consult ``crash_event`` per *existing* executor, so a
        schedule like ``"9@3"`` on an 8-executor cluster used to be
        silently inert — the scripted crash just never happened and the
        bench measured a failure-free run.  Models carrying explicit
        events override this to raise :class:`ValueError` instead;
        sampled/empty models have nothing to check.
        """
        if num_executors < 1:
            raise ValueError("cluster must have at least one executor")


class NoFailures(FailureModel):
    """The default: nothing ever fails (pre-fault-injection behaviour)."""

    enabled = False

    def crash_event(self, step: int, phase: str, executor: int,
                    attempt: int) -> FailureEvent | None:
        return None


@dataclass(frozen=True)
class RandomFailures(FailureModel):
    """Independent per-(step, executor) crash probability.

    Draws are keyed by ``(seed, step, executor, attempt)`` through a
    :class:`numpy.random.SeedSequence`, so the outcome for any attempt is
    a pure function of those four integers — reproducible run-to-run and
    unaffected by how many other draws happened first.  Crashes land in
    the compute phase (where most of a step's time is spent).
    """

    rate: float
    seed: int = 0
    at_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise ValueError("failure rate must be in [0, 1)")
        if not 0.0 <= self.at_fraction <= 1.0:
            raise ValueError("at_fraction must be in [0, 1]")

    def crash_event(self, step: int, phase: str, executor: int,
                    attempt: int) -> FailureEvent | None:
        if phase != "compute" or self.rate <= 0.0:
            return None
        entropy = (abs(int(self.seed)), step, executor, attempt)
        draw = np.random.default_rng(
            np.random.SeedSequence(entropy)).random()
        if draw >= self.rate:
            return None
        return FailureEvent(executor=executor, step=step, phase="compute",
                            at_fraction=self.at_fraction)


class ScheduledFailures(FailureModel):
    """A fixed failure script ("executor 3 dies at step 12").

    Optionally carries :class:`SlowNetworkEpisode` entries so one model
    can script both crash and slow-network scenarios.
    """

    def __init__(self, events: list[FailureEvent] | tuple[FailureEvent, ...],
                 slow_network: tuple[SlowNetworkEpisode, ...] = ()) -> None:
        self.events = tuple(events)
        self.slow_network = tuple(slow_network)

    def crash_event(self, step: int, phase: str, executor: int,
                    attempt: int) -> FailureEvent | None:
        for event in self.events:
            if (event.executor == executor and event.step == step
                    and event.phase == phase and attempt < event.repeats):
                return event
        return None

    def network_slowdown(self, step: int) -> float:
        factor = 1.0
        for episode in self.slow_network:
            if episode.active(step):
                factor *= episode.factor
        return factor

    def validate_executors(self, num_executors: int) -> None:
        super().validate_executors(num_executors)
        for event in self.events:
            if event.executor >= num_executors:
                raise ValueError(
                    f"failure schedule targets executor {event.executor} "
                    f"at step {event.step}, but the cluster has only "
                    f"{num_executors} executors (indices 0.."
                    f"{num_executors - 1}); the event could never fire")


class CompositeFailures(FailureModel):
    """Union of several failure models (first crash wins; slowdowns stack)."""

    def __init__(self, models: list[FailureModel]) -> None:
        self.models = tuple(models)

    def crash_event(self, step: int, phase: str, executor: int,
                    attempt: int) -> FailureEvent | None:
        for model in self.models:
            event = model.crash_event(step, phase, executor, attempt)
            if event is not None:
                return event
        return None

    def network_slowdown(self, step: int) -> float:
        factor = 1.0
        for model in self.models:
            factor *= model.network_slowdown(step)
        return factor

    def validate_executors(self, num_executors: int) -> None:
        for model in self.models:
            model.validate_executors(num_executors)


@dataclass(frozen=True)
class RecoveryPolicy:
    """How an engine responds to a crash.

    Parameters
    ----------
    max_retries:
        Recoveries allowed per (executor, step, phase).  A crash on the
        attempt after the last permitted retry raises
        :class:`RecoveryError` — the training run is lost.
    strategy:
        ``recompute`` — Spark's lineage story: the restarted executor
        rebuilds its cached partition from source (priced by the engine's
        per-executor reload cost) before redoing the step's work.
        ``checkpoint`` — restore from the most recent checkpoint instead;
        cheaper after a crash, but checkpoints cost time to write.
    checkpoint_every:
        Write a checkpoint every this many steps (``checkpoint`` strategy
        only; 0 disables writing, in which case restores fall back to
        lineage recomputation until a checkpoint exists).
    restart_seconds:
        Fixed executor restart/reschedule delay paid on every recovery
        (container re-launch, task rescheduling, backoff).
    """

    max_retries: int = 2
    strategy: str = "recompute"
    checkpoint_every: int = 0
    restart_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.strategy not in ("recompute", "checkpoint"):
            raise ValueError("recovery strategy must be 'recompute' or "
                             "'checkpoint'")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        if self.restart_seconds < 0:
            raise ValueError("restart_seconds must be non-negative")

    @property
    def writes_checkpoints(self) -> bool:
        return self.strategy == "checkpoint" and self.checkpoint_every > 0


def parse_failure_schedule(spec: str) -> list[FailureEvent]:
    """Parse a schedule string into :class:`FailureEvent` entries.

    Grammar (comma-separated entries)::

        EXECUTOR@STEP[:PHASE][xREPEATS]

    Examples::

        "3@12"                  executor 3 dies at step 12 (compute phase)
        "1@5:reduce_scatter"    executor 1 dies mid Reduce-Scatter
        "0@2x5"                 executor 0 dies 5 attempts in a row at
                                step 2 (exhausts a max_retries < 5 budget)
    """
    events: list[FailureEvent] = []
    for raw in spec.split(","):
        entry = raw.strip()
        if not entry:
            continue
        head, sep, rest = entry.partition("@")
        if not sep:
            raise ValueError(
                f"bad failure schedule entry {entry!r}: expected "
                "EXECUTOR@STEP[:PHASE][xREPEATS]")
        repeats = 1
        phase = "compute"
        if "x" in rest:
            rest, _, repeat_text = rest.rpartition("x")
            repeats = int(repeat_text)
        if ":" in rest:
            rest, _, phase = rest.partition(":")
        try:
            executor = int(head)
            step = int(rest)
        except ValueError:
            raise ValueError(
                f"bad failure schedule entry {entry!r}: executor and "
                "step must be integers") from None
        events.append(FailureEvent(executor=executor, step=step,
                                   phase=phase, repeats=repeats))
    return events


def build_failure_model(rate: float = 0.0, schedule: str | None = None,
                        seed: int = 0,
                        num_executors: int | None = None) -> FailureModel:
    """Compose a failure model from trainer-config primitives.

    ``num_executors`` (when known at build time) validates scripted
    events against the cluster size immediately — a schedule targeting a
    nonexistent executor raises :class:`ValueError` here rather than
    being silently inert.  The engines re-validate at setup regardless,
    covering models constructed directly.
    """
    models: list[FailureModel] = []
    if schedule:
        models.append(ScheduledFailures(parse_failure_schedule(schedule)))
    if rate > 0.0:
        models.append(RandomFailures(rate=rate, seed=seed))
    if not models:
        return NoFailures()
    model = models[0] if len(models) == 1 else CompositeFailures(models)
    if num_executors is not None:
        model.validate_executors(num_executors)
    return model
