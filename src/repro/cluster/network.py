"""Alpha-beta network cost model for the simulated cluster.

Transfers are priced with the classic alpha-beta model from the collective
communication literature (Thakur et al., the paper's reference [16]):

    seconds(b bytes) = alpha + b / bandwidth

``alpha`` is the per-message latency (network round-trip + serialization
setup) and ``bandwidth`` is the point-to-point link bandwidth in bytes per
second.

Two details matter for reproducing the paper's bottleneck analysis:

* **Ingress serialization.**  A node receiving messages from many peers
  receives them one after another — the driver's downlink is a single
  shared link.  :meth:`NetworkModel.fan_in_seconds` prices an m-way fan-in
  as the *sum* of the transfers (plus one latency per message).  This is
  bottleneck B2: with k executors pushing gradients of size m, the driver
  pays k transfers back to back.
* **Concurrent pairwise exchange.**  In a shuffle (and therefore in
  Reduce-Scatter / AllGather), *every* node sends and receives
  simultaneously on its own links.  :meth:`NetworkModel.round_seconds`
  prices one communication round of a balanced exchange as the *maximum*
  cost over nodes, not the sum — this is why removing the driver from the
  data path shortens latency even though total traffic is unchanged
  (Section IV-B2's ``2 k m`` invariant).

:class:`TieredNetworkModel` adds the second rung of the aggregation
ladder (Snap ML's hierarchical scheme): executors co-located on one
machine talk over a shared-memory/NVLink-class *intra-node* tier that is
far faster than the cross-node fabric, so a two-tier collective can
combine locally first and put only one message per machine on the slow
tier.  The intra tier is priced by :meth:`intra_transfer_seconds`
(the base :class:`NetworkModel` degenerates it to the single cross-node
tier, so flat clusters are unchanged).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NetworkModel", "TieredNetworkModel", "GIGABIT", "TEN_GIGABIT"]

GIGABIT = 1.0e9 / 8.0  # bytes/second on a 1 Gbps link
TEN_GIGABIT = 1.0e10 / 8.0  # bytes/second on a 10 Gbps link


@dataclass(frozen=True)
class NetworkModel:
    """Prices point-to-point and collective transfers in simulated seconds.

    Parameters
    ----------
    bandwidth:
        Point-to-point bandwidth in bytes/second.
    alpha:
        Per-message latency in seconds.
    bytes_per_value:
        Wire size of one model/gradient coordinate.  Spark ships doubles
        (8 bytes); serialization overhead can be folded in here.
    """

    bandwidth: float = GIGABIT
    alpha: float = 1.0e-3
    bytes_per_value: float = 8.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        if self.bytes_per_value <= 0:
            raise ValueError("bytes_per_value must be positive")

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def transfer_seconds(self, values: float) -> float:
        """Cost of one point-to-point message of ``values`` coordinates."""
        if values < 0:
            raise ValueError("cannot transfer a negative number of values")
        if values == 0:
            return 0.0
        return self.alpha + values * self.bytes_per_value / self.bandwidth

    # ------------------------------------------------------------------
    # aggregate patterns
    # ------------------------------------------------------------------
    def fan_in_seconds(self, senders: int, values_each: float) -> float:
        """Cost of ``senders`` nodes each pushing a message to ONE receiver.

        The receiver's downlink serializes the transfers, so the cost is the
        sum of the individual messages.  This is the driver-side pattern of
        MLlib's SendGradient (and of the root of ``treeAggregate``).
        """
        if senders < 0:
            raise ValueError("senders must be non-negative")
        return senders * self.transfer_seconds(values_each)

    def fan_in_varied_seconds(self, values_by_message: tuple[float, ...] | list[float]) -> float:
        """Cost of a fan-in whose messages differ in size.

        Same serialized-downlink pattern as :meth:`fan_in_seconds`, but
        each message is priced individually — the shape sparse payloads
        produce, where every sender ships its own support.  Equal-sized
        messages reduce to ``fan_in_seconds(len(values), size)`` exactly.

        An *empty* message list is rejected: a fan-in with no senders is
        a caller bug (a singleton aggregation group or a one-executor
        shuffle has no ingress and must not price one), and silently
        returning 0.0 used to mask exactly that confusion.
        """
        if len(values_by_message) == 0:
            raise ValueError(
                "fan_in_varied_seconds needs at least one message; a "
                "fan-in with no senders is not a fan-in — handle the "
                "zero-sender case at the call site")
        total = 0.0
        for values in values_by_message:
            total += self.transfer_seconds(values)
        return total

    def fan_out_seconds(self, receivers: int, values_each: float) -> float:
        """Cost of ONE node pushing a message to ``receivers`` nodes.

        The sender's uplink serializes the copies (Spark's driver-side
        broadcast behaves this way for the first hop).
        """
        return self.fan_in_seconds(receivers, values_each)

    def round_seconds(self, values_per_node: float) -> float:
        """Cost of one balanced all-pairs round.

        Every node simultaneously sends and receives ``values_per_node``
        coordinates on its own links; the round costs what the busiest node
        pays, i.e. a single transfer.  Used for shuffle-based collectives.
        """
        return self.transfer_seconds(values_per_node)

    # ------------------------------------------------------------------
    # intra-node tier (degenerate in the flat model)
    # ------------------------------------------------------------------
    def intra_transfer_seconds(self, values: float) -> float:
        """Cost of one message between executors on the *same* machine.

        The flat model has no second tier: intra-node transfers cost the
        same as cross-node ones, so a hierarchical collective run on a
        flat cluster prices identically to the flat collective.
        :class:`TieredNetworkModel` overrides this with the fast tier.
        """
        return self.transfer_seconds(values)


@dataclass(frozen=True)
class TieredNetworkModel(NetworkModel):
    """Two-tier network: fast intra-node links under the cross-node fabric.

    Models the placement-aware topology of Snap ML's hierarchical scheme
    (and of any rack with multi-executor machines): executors sharing a
    machine exchange data over shared memory / a local bus at
    ``intra_bandwidth`` with per-message latency ``intra_alpha``, while
    messages between machines pay the inherited cross-node ``bandwidth``
    and ``alpha``.

    The intra tier must be at least as fast as the cross tier
    (``intra_bandwidth >= bandwidth``) — a "shared-memory" tier slower
    than the network would silently invert every two-tier cost comparison.
    """

    #: Intra-node link bandwidth in bytes/second (default ~100 Gbps, a
    #: conservative shared-memory/NVLink-class figure).
    intra_bandwidth: float = 1.25e10
    #: Intra-node per-message latency in seconds.
    intra_alpha: float = 5.0e-6

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.intra_bandwidth <= 0:
            raise ValueError("intra_bandwidth must be positive")
        if self.intra_bandwidth < self.bandwidth:
            raise ValueError(
                f"intra-node bandwidth ({self.intra_bandwidth:g} B/s) must "
                f"be at least the cross-node bandwidth "
                f"({self.bandwidth:g} B/s): a shared-memory tier slower "
                "than the network fabric is not a tier")
        if self.intra_alpha < 0:
            raise ValueError("intra_alpha must be non-negative")

    def intra_transfer_seconds(self, values: float) -> float:
        """Cost of one same-machine message over the fast tier."""
        if values < 0:
            raise ValueError("cannot transfer a negative number of values")
        if values == 0:
            return 0.0
        return (self.intra_alpha
                + values * self.bytes_per_value / self.intra_bandwidth)
