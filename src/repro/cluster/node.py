"""Simulated cluster nodes and heterogeneity models.

A :class:`NodeSpec` describes a single machine of the simulated cluster: its
relative computational speed and the number of cores it exposes to the
execution engine.  Real training math runs on the local host; the node specs
only drive the *cost model* that converts work (nonzeros processed, bytes
transferred) into simulated seconds.

The paper evaluates on two clusters:

* Cluster 1 — 9 homogeneous nodes (1 driver + 8 executors), 1 Gbps network.
* Cluster 2 — 953 heterogeneous nodes, 10 Gbps network, where "the
  computational power of individual machines exhibits a high variance"
  (Section V-C).  Heterogeneity is what makes BSP scale poorly: every
  superstep waits for the slowest worker.

Heterogeneity is modelled in two parts:

* a *static* per-node speed multiplier, drawn once when the cluster is built
  (some machines are simply slower than others), and
* a *dynamic* per-(node, step) slowdown sampled from a
  :class:`StragglerModel` (interference from co-located jobs, GC pauses...).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "NodeSpec",
    "StragglerModel",
    "NoStragglers",
    "LogNormalStragglers",
    "homogeneous_nodes",
    "heterogeneous_nodes",
]


@dataclass(frozen=True)
class NodeSpec:
    """One simulated machine.

    Parameters
    ----------
    node_id:
        Unique identifier within the cluster.  The driver is, by convention,
        node 0 in driver-based engines.
    speed:
        Relative computational speed.  ``speed=1.0`` is the reference
        machine; ``speed=0.5`` takes twice as long for the same work.
    cores:
        Number of cores.  The engine uses this to decide how many concurrent
        tasks a node could run (the paper found 1 task per executor optimal,
        but the ablation bench varies this).
    memory_gb:
        Memory capacity, used only for dataset-fit sanity checks.
    """

    node_id: int
    speed: float = 1.0
    cores: int = 16
    memory_gb: float = 24.0

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError(f"node speed must be positive, got {self.speed}")
        if self.cores < 1:
            raise ValueError(f"node needs at least one core, got {self.cores}")

    def compute_seconds(self, work_units: float) -> float:
        """Convert abstract work units into seconds on this node."""
        return work_units / self.speed


class StragglerModel:
    """Base class for dynamic per-step slowdown sampling.

    Subclasses implement :meth:`slowdown`, returning a multiplicative factor
    ``>= 1.0`` applied to a node's compute time for one superstep.
    """

    def slowdown(self, rng: np.random.Generator, node: NodeSpec, step: int) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class NoStragglers(StragglerModel):
    """Every node always runs at its static speed (ideal cluster)."""

    def slowdown(self, rng: np.random.Generator, node: NodeSpec, step: int) -> float:
        return 1.0


@dataclass(frozen=True)
class LogNormalStragglers(StragglerModel):
    """Log-normal transient slowdowns.

    Each (node, step) draws ``exp(N(0, sigma))`` clipped below at 1.0.  With
    ``sigma`` around 0.3-0.5 the *maximum* over k workers grows with k, which
    is exactly the paper's second explanation for poor scalability at 128
    machines (Section V-C, reason 2).
    """

    sigma: float = 0.35

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    def slowdown(self, rng: np.random.Generator, node: NodeSpec, step: int) -> float:
        return float(max(1.0, np.exp(rng.normal(0.0, self.sigma))))


def homogeneous_nodes(count: int, speed: float = 1.0, cores: int = 16,
                      memory_gb: float = 24.0) -> list[NodeSpec]:
    """Build ``count`` identical nodes (Cluster 1 style)."""
    if count < 1:
        raise ValueError("cluster needs at least one node")
    return [NodeSpec(node_id=i, speed=speed, cores=cores, memory_gb=memory_gb)
            for i in range(count)]


def heterogeneous_nodes(count: int, rng: np.random.Generator,
                        speed_sigma: float = 0.25, cores: int = 20,
                        memory_gb: float = 360.0) -> list[NodeSpec]:
    """Build ``count`` nodes with log-normally distributed static speeds.

    Mimics Cluster 2: a large shared production cluster where machine
    generations and co-located load make per-node throughput vary.
    """
    if count < 1:
        raise ValueError("cluster needs at least one node")
    speeds = np.exp(rng.normal(0.0, speed_sigma, size=count))
    return [NodeSpec(node_id=i, speed=float(s), cores=cores, memory_gb=memory_gb)
            for i, s in enumerate(speeds)]
