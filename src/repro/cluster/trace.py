"""Simulated-time execution traces (the substrate for gantt charts).

Figure 3 of the paper is a gantt chart: one row per cluster node, colored
bars for activities over time.  We reproduce it by having every trainer emit
:class:`Span` records into a :class:`Trace` as the simulation advances.

Span kinds follow the activities visible in the paper's charts:

* ``compute``   — local gradient / model-update work on an executor,
* ``aggregate`` — combining gradients or models (driver, intermediate
  aggregator of treeAggregate, or partition owner in MLlib*),
* ``send`` / ``recv`` — time attributable to network transfers,
* ``wait``      — idle time at a BSP barrier (the bottleneck made visible),
* ``update``    — the driver applying a gradient to the global model,
* ``barrier``   — zero-or-more bookkeeping marker for stage boundaries,
* ``recovery``  — downtime after an injected executor crash (restart +
  lineage recompute or checkpoint restore; see :mod:`repro.cluster.faults`),
* ``checkpoint`` — writing periodic recovery checkpoints to stable storage.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

__all__ = ["Span", "Trace", "SPAN_KINDS"]

SPAN_KINDS = frozenset(
    {"compute", "aggregate", "send", "recv", "wait", "update", "barrier",
     "recovery", "checkpoint"}
)


@dataclass(frozen=True)
class Span:
    """One colored bar in the gantt chart.

    ``node`` is the node label (``"driver"`` or ``"executor-3"``); times are
    simulated seconds since the start of training.
    """

    node: str
    start: float
    end: float
    kind: str
    step: int = -1
    #: Wire volume (in model/gradient values) the span moved; 0.0 for
    #: non-transfer spans.  Sparse-comm sends record their actual encoded
    #: size here, so traffic counters can be read straight off the trace.
    values: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in SPAN_KINDS:
            raise ValueError(f"unknown span kind {self.kind!r}; "
                             f"expected one of {sorted(SPAN_KINDS)}")
        if self.end < self.start:
            raise ValueError(
                f"span ends ({self.end}) before it starts ({self.start})")
        if self.values < 0:
            raise ValueError("span wire values must be non-negative")

    @property
    def duration(self) -> float:
        return self.end - self.start


class Trace:
    """An append-only collection of spans with summary helpers."""

    def __init__(self) -> None:
        self._spans: list[Span] = []

    def add(self, node: str, start: float, end: float, kind: str,
            step: int = -1, values: float = 0.0) -> Span:
        """Record one span and return it."""
        span = Span(node=node, start=start, end=end, kind=kind, step=step,
                    values=values)
        self._spans.append(span)
        return span

    def traffic_values(self, node: str | None = None,
                       step: int | None = None) -> float:
        """Total wire volume recorded on spans, optionally filtered."""
        return sum(s.values for s in self._spans
                   if (node is None or s.node == node)
                   and (step is None or s.step == step))

    @property
    def spans(self) -> tuple[Span, ...]:
        return tuple(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def nodes(self) -> list[str]:
        """Node labels in first-appearance order."""
        seen: dict[str, None] = {}
        for span in self._spans:
            seen.setdefault(span.node, None)
        return list(seen)

    def end_time(self) -> float:
        """Simulated time at which the last span ends."""
        return max((s.end for s in self._spans), default=0.0)

    def spans_for(self, node: str) -> list[Span]:
        return [s for s in self._spans if s.node == node]

    def busy_seconds(self, node: str,
                     kinds: frozenset[str] | None = None) -> float:
        """Total span time on ``node``, optionally restricted to ``kinds``.

        ``wait`` and ``barrier`` spans are never counted as busy, and
        neither is ``recovery`` — it is downtime, not useful work.
        """
        busy_kinds = kinds if kinds is not None else (
            SPAN_KINDS - {"wait", "barrier", "recovery"})
        return sum(s.duration for s in self._spans
                   if s.node == node and s.kind in busy_kinds)

    def wait_seconds(self, node: str) -> float:
        """Total barrier-wait time on ``node``."""
        return sum(s.duration for s in self._spans
                   if s.node == node and s.kind == "wait")

    def recovery_seconds(self, node: str | None = None) -> float:
        """Total failure-recovery downtime, for one node or all nodes."""
        return sum(s.duration for s in self._spans
                   if s.kind == "recovery"
                   and (node is None or s.node == node))

    def utilization(self, node: str) -> float:
        """Busy fraction of the makespan for ``node`` (0 if empty trace)."""
        total = self.end_time()
        if total <= 0:
            return 0.0
        return self.busy_seconds(node) / total

    def kind_totals(self) -> dict[str, float]:
        """Total seconds per span kind across all nodes."""
        totals: dict[str, float] = defaultdict(float)
        for span in self._spans:
            totals[span.kind] += span.duration
        return dict(totals)
