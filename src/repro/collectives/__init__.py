"""MPI-style collectives (Reduce-Scatter, AllGather, AllReduce) on shuffle."""

from .allreduce import (all_gather, all_reduce_average, all_reduce_weighted,
                        partition_slices, reduce_scatter, traffic_values)

__all__ = ["partition_slices", "reduce_scatter", "all_gather",
           "all_reduce_average", "all_reduce_weighted", "traffic_values"]
