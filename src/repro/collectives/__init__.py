"""MPI-style collectives (Reduce-Scatter, AllGather, AllReduce) on shuffle.

Three pluggable aggregation topologies share one data plane (the flat
combine kernels in :mod:`.allreduce`), so every mode is bit-identical:

* ``flat`` — the shuffle-based AllReduce of the paper (:mod:`.allreduce`),
  optionally with the SparCML sparse wire format (:mod:`.sparse`).
* ``hier`` — two-tier, placement-aware aggregation (:mod:`.hierarchical`).
* ``switch`` — SwitchML-style in-network aggregation (:mod:`.innetwork`).
"""

from .allreduce import (all_gather, all_reduce_average, all_reduce_weighted,
                        combine_weight_scale, partition_slices,
                        reduce_scatter, traffic_values)
from .hierarchical import (HierWire, hier_all_gather, hier_dense_wire,
                           hier_reduce_scatter, hier_tree_fan_in)
from .innetwork import (SwitchWire, switch_all_gather, switch_dense_wire,
                        switch_reduce_scatter, switch_rounds,
                        switch_stream_seconds, switch_tree_fan_in)
from .sparse import (SPARSE_COMM_MODES, CommStats, SparsePayload, TreeWire,
                     encode, materialize, payload_wire_values,
                     sparse_all_gather, sparse_reduce_scatter,
                     tree_fan_in_wire, wire_values)

COLLECTIVES = ("flat", "hier", "switch")

__all__ = ["partition_slices", "combine_weight_scale", "reduce_scatter",
           "all_gather", "all_reduce_average", "all_reduce_weighted",
           "traffic_values", "SPARSE_COMM_MODES", "SparsePayload",
           "CommStats", "TreeWire", "encode", "materialize",
           "payload_wire_values", "wire_values", "sparse_reduce_scatter",
           "sparse_all_gather", "tree_fan_in_wire",
           "COLLECTIVES",
           "HierWire", "hier_reduce_scatter", "hier_all_gather",
           "hier_tree_fan_in", "hier_dense_wire",
           "SwitchWire", "switch_rounds", "switch_stream_seconds",
           "switch_reduce_scatter", "switch_all_gather",
           "switch_tree_fan_in", "switch_dense_wire"]
