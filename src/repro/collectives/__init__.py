"""MPI-style collectives (Reduce-Scatter, AllGather, AllReduce) on shuffle."""

from .allreduce import (all_gather, all_reduce_average, all_reduce_weighted,
                        combine_weight_scale, partition_slices,
                        reduce_scatter, traffic_values)
from .sparse import (SPARSE_COMM_MODES, CommStats, SparsePayload, TreeWire,
                     encode, materialize, payload_wire_values,
                     sparse_all_gather, sparse_reduce_scatter,
                     tree_fan_in_wire, wire_values)

__all__ = ["partition_slices", "combine_weight_scale", "reduce_scatter",
           "all_gather", "all_reduce_average", "all_reduce_weighted",
           "traffic_values", "SPARSE_COMM_MODES", "SparsePayload",
           "CommStats", "TreeWire", "encode", "materialize",
           "payload_wire_values", "wire_values", "sparse_reduce_scatter",
           "sparse_all_gather", "tree_fan_in_wire"]
