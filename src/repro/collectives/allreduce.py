"""AllReduce = Reduce-Scatter + AllGather, built on the shuffle operator.

This is the data plane of MLlib*'s distributed model averaging (Section
IV-B2, Algorithm 3).  With ``k`` workers and a size-``m`` model:

* :func:`partition_slices` splits the model coordinates into ``k`` logical
  partitions; worker ``i`` *owns* partition ``i`` (ownership is logical —
  every worker keeps a full physical copy).
* :func:`reduce_scatter` — every worker sends each non-owned partition of
  its local model to that partition's owner; owners combine (here:
  average) the ``k`` copies of their partition.
* :func:`all_gather` — every owner sends its combined partition to all
  peers; every worker reassembles the full model.
* :func:`all_reduce_average` — the composition; for every worker the result
  equals ``mean(local_models)`` exactly.

The traffic invariant the paper stresses: each worker sends and receives
the model **twice** per AllReduce, so total traffic is ``2 k m`` values —
identical to the driver-centric scheme, but with the latency of a balanced
all-to-all instead of a serialized fan-in (costs are priced by
:class:`~repro.engine.shuffle.ShuffleModel` /
:meth:`~repro.engine.driver.BspEngine.reduce_scatter_phase`).
"""

from __future__ import annotations

import math

import numpy as np

from ..analysis.sanitizer import check_replicas as _check_replicas
from ..engine.shuffle import exchange

__all__ = ["partition_slices", "combine_weight_scale", "reduce_scatter",
           "all_gather", "all_reduce_average", "all_reduce_weighted",
           "traffic_values"]


def partition_slices(model_size: int, num_workers: int) -> list[slice]:
    """Split ``model_size`` coordinates into ``num_workers`` owner slices.

    Sizes differ by at most one; concatenating the slices in order covers
    ``[0, model_size)`` exactly.
    """
    if num_workers < 1:
        raise ValueError("need at least one worker")
    if model_size < num_workers:
        raise ValueError(
            f"model of size {model_size} cannot be split across "
            f"{num_workers} workers with non-empty partitions")
    bounds = np.linspace(0, model_size, num_workers + 1).astype(int)
    return [slice(int(bounds[i]), int(bounds[i + 1]))
            for i in range(num_workers)]


def combine_weight_scale(combine: str, weights: list[float] | None,
                         num_workers: int) -> np.ndarray | None:
    """Validate a combine/weights pairing; return the normalized scale.

    Returns the normalized weight vector for ``combine='weighted'`` and
    ``None`` for the unweighted schemes.  Raises :class:`ValueError` when
    ``weights`` is passed with a combine that ignores it (previously a
    silent no-op) or when any weight is non-positive or non-finite (NaN
    and inf used to slip past the positivity check and poison the
    combined model).
    """
    if combine != "weighted":
        if weights is not None:
            raise ValueError(
                f"weights are only valid with combine='weighted', "
                f"not combine={combine!r}")
        return None
    if weights is None or len(weights) != num_workers:
        raise ValueError("weighted combine needs one weight per model")
    if any(not math.isfinite(w) or w <= 0 for w in weights):
        raise ValueError("weights must be positive and finite")
    scale = np.asarray(weights, dtype=np.float64)
    return scale / scale.sum()


def reduce_scatter(models: list[np.ndarray], combine: str = "average",
                   weights: list[float] | None = None) -> list[np.ndarray]:
    """Phase 1: each worker ends up with the combined partition it owns.

    ``models[r]`` is worker ``r``'s full local model.  Returns
    ``partitions`` where ``partitions[r]`` is the combined slice owned by
    worker ``r``.  Combination schemes:

    * ``average`` — plain model averaging (MLlib*'s default);
    * ``sum`` — model summation (original Petuum; can diverge);
    * ``weighted`` — sample-weighted averaging, the reweighting
      improvement the paper attributes to Zhang & Jordan [15]
      (Section IV-B1 remark).  ``weights[r]`` is typically worker ``r``'s
      local example count, making the combined model the unbiased global
      mean when partitions are unbalanced.
    """
    if combine not in ("average", "sum", "weighted"):
        raise ValueError("combine must be 'average', 'sum' or 'weighted'")
    k = len(models)
    if k == 0:
        raise ValueError("need at least one model")
    m = models[0].shape[0]
    if any(w.shape != (m,) for w in models):
        raise ValueError("all local models must have the same shape")
    scale = combine_weight_scale(combine, weights, k)
    slices = partition_slices(m, k)

    # Worker r routes slice i of its local model to owner i (including the
    # slice it owns, which "travels" locally for free).
    outboxes = [{owner: model[slices[owner]] for owner in range(k)}
                for model in models]
    inboxes = exchange(outboxes, k)

    partitions: list[np.ndarray] = []
    for owner, pieces in enumerate(inboxes):
        stacked = np.vstack(pieces)
        if scale is not None:
            combined = scale @ stacked
        else:
            combined = stacked.sum(axis=0)
            if combine == "average":
                combined = combined / k
        partitions.append(combined)
    return partitions


def all_gather(partitions: list[np.ndarray], model_size: int,
               check_replicas: bool = False) -> np.ndarray:
    """Phase 2: reassemble the full model from owner partitions.

    Every worker receives every partition; since the reassembled vector is
    identical on all workers, one array is returned.  With
    ``check_replicas`` (the ``--sanitize`` barrier digest check) every
    worker's reassembled replica is materialized and verified
    bit-identical first — a diverging replica raises
    :class:`~repro.analysis.sanitizer.ReplicaDivergenceError` at this
    barrier instead of surfacing as unexplained drift later.
    """
    k = len(partitions)
    if k == 0:
        raise ValueError("need at least one partition")
    slices = partition_slices(model_size, k)
    expected = [s.stop - s.start for s in slices]
    actual = [p.shape[0] for p in partitions]
    if expected != actual:
        raise ValueError(
            f"partition sizes {actual} do not match owner slices {expected}")
    # The broadcast fan-out is a shuffle where owner i sends its partition
    # to every worker; routing is exercised via `exchange` for fidelity.
    outboxes = [{dst: partitions[owner] for dst in range(k)}
                for owner in range(k)]
    inboxes = exchange(outboxes, k)
    # Every inbox holds the k partitions in owner order.
    if check_replicas:
        replicas = [np.concatenate(inbox) for inbox in inboxes]
        _check_replicas(replicas, context="all_gather")
        return replicas[0]
    return np.concatenate(inboxes[0])


def all_reduce_average(models: list[np.ndarray]) -> np.ndarray:
    """Reduce-Scatter + AllGather; equals ``np.mean(models, axis=0)``."""
    if not models:
        raise ValueError("need at least one model")
    partitions = reduce_scatter(models, combine="average")
    return all_gather(partitions, models[0].shape[0])


def all_reduce_weighted(models: list[np.ndarray],
                        weights: list[float]) -> np.ndarray:
    """Weighted AllReduce: ``sum(w_i * model_i) / sum(w_i)``."""
    if not models:
        raise ValueError("need at least one model")
    partitions = reduce_scatter(models, combine="weighted", weights=weights)
    return all_gather(partitions, models[0].shape[0])


def traffic_values(model_size: int, num_workers: int) -> float:
    """Total values moved by one AllReduce (the paper's ``2 k m`` figure).

    Each worker sends ``(k-1)/k * m`` in each phase and receives the same,
    so total send volume is ``2 k m (k-1)/k = 2 (k-1) m``; the paper rounds
    this to ``2 k m`` ("the model is sent and received by each executor
    twice").  We return the exact value.
    """
    if num_workers < 1:
        raise ValueError("need at least one worker")
    return 2.0 * (num_workers - 1) * model_size
