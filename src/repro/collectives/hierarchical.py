"""Hierarchical (two-tier) AllReduce: intra-node combine, cross-node RS/AG.

The third rung of the aggregation ladder (after the driver fan-in and the
flat shuffle AllReduce): Snap ML-style placement-aware aggregation.  With
``k`` executors packed onto ``n`` machines (``ClusterSpec.placement`` /
:meth:`~repro.cluster.ClusterSpec.executor_groups`):

1. **Intra tier** — on every machine, the group members ship their local
   models to the group *leader* (the lowest-indexed member) over the
   shared-memory tier; the leader combines them into one per-machine
   partial.
2. **Cross tier** — the ``n`` leaders run the flat Reduce-Scatter /
   AllGather among themselves over ``n`` node-level partitions, putting
   only one message stream per machine on the slow fabric.
3. **Intra tier again** — each leader fans the reassembled model out to
   its members.

Cross-tier traffic shrinks from ``2 (k-1) m`` to ``2 (n-1) m``; the
displaced ``2 (k-n) m`` values ride the fast intra tier instead.

**Bit-identity by construction.**  This module prices that schedule but
does *not* re-implement its arithmetic: the data plane below calls the
existing flat combine kernels (:func:`repro.collectives.reduce_scatter` /
:func:`all_gather`) verbatim, so iterates under ``--collective hier`` are
bit-identical to ``--collective flat`` for every combine scheme, density
and node shape — the property ``tests/test_topology_collectives.py``
hammers and the topology bench asserts before reporting any speedup.

With singleton groups (no placement map) the priced schedule degenerates
to the flat collective: no intra messages, and the cross tier *is* the
flat exchange — message-for-message, so the priced seconds match the flat
wire pricing exactly.

Determinism: groups arrive as ordered tuples from ``executor_groups()``;
supports come from ``np.flatnonzero`` (ascending); nothing here iterates
a set (rule DET002 applies to this module).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .allreduce import all_gather, partition_slices, reduce_scatter
from .sparse import wire_values

__all__ = ["HierWire", "hier_reduce_scatter", "hier_all_gather",
           "hier_tree_fan_in", "hier_dense_wire"]


def _check_groups(groups: tuple[tuple[int, ...], ...], k: int) -> None:
    """Groups must partition ``range(k)`` with ascending members."""
    if not groups:
        raise ValueError("need at least one executor group")
    seen = [False] * k
    for group in groups:
        if not group:
            raise ValueError("executor groups must be non-empty")
        if list(group) != sorted(group):
            raise ValueError("group members must be in ascending order")
        for e in group:
            if not 0 <= e < k:
                raise ValueError(
                    f"group member {e} is not an executor index in "
                    f"[0, {k})")
            if seen[e]:
                raise ValueError(f"executor {e} appears in two groups")
            seen[e] = True
    if not all(seen):
        raise ValueError("groups must cover every executor exactly once")


def _slice_counts(indices: np.ndarray, slices: list[slice]) -> list[int]:
    """How many (sorted) support indices fall in each owner slice."""
    bounds = [s.start for s in slices] + [slices[-1].stop]
    positions = np.searchsorted(indices, bounds)
    return [int(positions[i + 1] - positions[i])
            for i in range(len(slices))]


@dataclass(frozen=True)
class HierWire:
    """Wire accounting of one two-tier collective phase.

    ``intra_sends[i]`` lists the message sizes executor ``i`` puts on the
    *intra-node* tier (members' uploads in Reduce-Scatter / the tree
    fan-in; the leader's fan-out copies in AllGather).  ``cross_sends[i]``
    lists what it puts on the *cross-node* fabric — non-empty only for
    group leaders.  ``intra_dense`` / ``cross_dense`` are what the same
    messages would have moved dense, so per-tier compression is visible.
    """

    phase: str
    model_size: int
    groups: tuple[tuple[int, ...], ...]
    intra_sends: tuple[tuple[float, ...], ...]
    cross_sends: tuple[tuple[float, ...], ...]
    intra_dense: float
    cross_dense: float
    #: Tree fan-in only: task-wave messages per executor.
    messages_per_executor: int = 1

    def __post_init__(self) -> None:
        k = len(self.intra_sends)
        if len(self.cross_sends) != k:
            raise ValueError("intra_sends and cross_sends must cover the "
                             "same executors")
        _check_groups(self.groups, k)
        if self.phase not in ("reduce_scatter", "all_gather",
                              "tree_aggregate"):
            raise ValueError(f"unknown hierarchical phase {self.phase!r}")

    # ------------------------------------------------------------------
    @property
    def num_executors(self) -> int:
        return len(self.intra_sends)

    @property
    def leaders(self) -> tuple[int, ...]:
        """The first (lowest-index) member of each group, in group order."""
        return tuple(group[0] for group in self.groups)

    @property
    def intra_values(self) -> float:
        return float(sum(v for row in self.intra_sends for v in row))

    @property
    def cross_values(self) -> float:
        return float(sum(v for row in self.cross_sends for v in row))

    @property
    def wire_values(self) -> float:
        return self.intra_values + self.cross_values

    @property
    def dense_values(self) -> float:
        return self.intra_dense + self.cross_dense

    @property
    def compression(self) -> float:
        if self.wire_values <= 0:
            return 1.0
        return self.dense_values / self.wire_values


# ----------------------------------------------------------------------
# wire builders (sizing only — the data plane is the flat kernel)
# ----------------------------------------------------------------------
def _rs_wire(supports: list[np.ndarray], model_size: int,
             groups: tuple[tuple[int, ...], ...],
             mode: str) -> HierWire:
    """Reduce-Scatter sizing: members upload, leaders exchange slices."""
    k = len(supports)
    n = len(groups)
    slices = partition_slices(model_size, n)
    intra: list[tuple[float, ...]] = [()] * k
    cross: list[tuple[float, ...]] = [()] * k
    intra_dense = 0.0
    cross_dense = 0.0
    for j, group in enumerate(groups):
        leader = group[0]
        # Members ship their full local model to the leader (one message
        # each, sized by the model's support).
        for e in group[1:]:
            intra[e] = (wire_values(int(supports[e].size), model_size,
                                    mode),)
            intra_dense += float(model_size)
        # The leader's per-machine partial is supported on the *union* of
        # member supports — computed from the inputs, never from the
        # combined float values, so sizing is immune to cancellation.
        union = (np.unique(np.concatenate([supports[e] for e in group]))
                 if len(group) > 1 else supports[leader])
        counts = _slice_counts(union, slices)
        row: list[float] = []
        for i in range(n):
            if i == j:
                continue
            size = slices[i].stop - slices[i].start
            row.append(wire_values(counts[i], size, mode))
            cross_dense += float(size)
        cross[leader] = tuple(row)
    return HierWire(phase="reduce_scatter", model_size=model_size,
                    groups=groups, intra_sends=tuple(intra),
                    cross_sends=tuple(cross), intra_dense=intra_dense,
                    cross_dense=cross_dense)


def _ag_wire(full: np.ndarray, groups: tuple[tuple[int, ...], ...],
             mode: str) -> HierWire:
    """AllGather sizing: leaders exchange slices, then fan out locally."""
    model_size = int(full.shape[0])
    k = sum(len(group) for group in groups)
    n = len(groups)
    slices = partition_slices(model_size, n)
    nnz_full = int(np.count_nonzero(full))
    full_msg = wire_values(nnz_full, model_size, mode)
    intra: list[tuple[float, ...]] = [()] * k
    cross: list[tuple[float, ...]] = [()] * k
    intra_dense = 0.0
    cross_dense = 0.0
    for i, group in enumerate(groups):
        leader = group[0]
        size = slices[i].stop - slices[i].start
        nnz = int(np.count_nonzero(full[slices[i]]))
        cross[leader] = tuple(wire_values(nnz, size, mode)
                              for _ in range(n - 1))
        cross_dense += float(size) * (n - 1)
        # The leader fans the reassembled model to its members over the
        # intra tier (one full-model message per member).
        intra[leader] = tuple(full_msg for _ in range(len(group) - 1))
        intra_dense += float(model_size) * (len(group) - 1)
    return HierWire(phase="all_gather", model_size=model_size,
                    groups=groups, intra_sends=tuple(intra),
                    cross_sends=tuple(cross), intra_dense=intra_dense,
                    cross_dense=cross_dense)


# ----------------------------------------------------------------------
# data plane + wire, in one call (what the trainers use)
# ----------------------------------------------------------------------
def hier_reduce_scatter(models: list[np.ndarray],
                        groups: tuple[tuple[int, ...], ...],
                        combine: str = "average",
                        weights: list[float] | None = None,
                        mode: str = "off",
                        ) -> tuple[list[np.ndarray], HierWire]:
    """Two-tier Reduce-Scatter: flat arithmetic, hierarchical pricing.

    The returned partitions come from the *flat*
    :func:`~repro.collectives.reduce_scatter` kernel — bit-identical to
    every other collective mode by construction.  The second return value
    prices the two-tier schedule (``mode`` applies the SparCML break-even
    per message on both tiers).
    """
    _check_groups(groups, len(models))
    partitions = reduce_scatter(models, combine=combine, weights=weights)
    supports = [np.flatnonzero(model) for model in models]
    wire = _rs_wire(supports, int(models[0].shape[0]), groups, mode)
    return partitions, wire


def hier_all_gather(partitions: list[np.ndarray], model_size: int,
                    groups: tuple[tuple[int, ...], ...],
                    mode: str = "off", check_replicas: bool = False,
                    ) -> tuple[np.ndarray, HierWire]:
    """Two-tier AllGather: flat arithmetic, hierarchical pricing."""
    _check_groups(groups, len(partitions))
    full = all_gather(partitions, model_size,
                      check_replicas=check_replicas)
    return full, _ag_wire(full, groups, mode)


def hier_tree_fan_in(vectors_by_executor: list[list[np.ndarray]],
                     groups: tuple[tuple[int, ...], ...],
                     model_size: int, mode: str = "off") -> HierWire:
    """Two-tier treeAggregate sizing for the SendGradient/SendModel path.

    Machine leaders replace MLlib's ``sqrt(k)`` round-robin aggregators:
    members ship their task vectors to their machine's leader over the
    intra tier; each leader ships one partial (union support of its
    group's vectors) to the driver over the fabric.  Arithmetic is
    untouched — the trainer still combines the same vectors the same way.
    """
    k = len(vectors_by_executor)
    _check_groups(groups, k)
    if k == 0:
        raise ValueError("need at least one executor")
    mpe = len(vectors_by_executor[0])
    if mpe < 1 or any(len(row) != mpe for row in vectors_by_executor):
        raise ValueError("every executor must ship the same number of "
                         "task vectors")
    supports = [[np.flatnonzero(v) for v in vectors]
                for vectors in vectors_by_executor]
    intra: list[tuple[float, ...]] = [()] * k
    cross: list[tuple[float, ...]] = [()] * k
    intra_dense = 0.0
    cross_dense = 0.0
    for group in groups:
        leader = group[0]
        for e in group[1:]:
            intra[e] = tuple(wire_values(int(idx.size), model_size, mode)
                             for idx in supports[e])
            intra_dense += float(model_size) * mpe
        member_supports = [idx for e in group for idx in supports[e]]
        union = np.unique(np.concatenate(member_supports))
        cross[leader] = (wire_values(int(union.size), model_size, mode),)
        cross_dense += float(model_size)
    return HierWire(phase="tree_aggregate", model_size=model_size,
                    groups=groups, intra_sends=tuple(intra),
                    cross_sends=tuple(cross), intra_dense=intra_dense,
                    cross_dense=cross_dense, messages_per_executor=mpe)


def hier_dense_wire(phase: str, model_size: int,
                    groups: tuple[tuple[int, ...], ...],
                    messages_per_executor: int = 1) -> HierWire:
    """Dense-sized two-tier wire, for trainers that ship dense vectors.

    The spark.ml L-BFGS gradients are dense, so there is nothing to size
    from supports; this builds the same schedule with every message at
    its dense size (equivalently, any of the builders above under
    ``mode='off'`` — without needing the vectors).
    """
    k = sum(len(group) for group in groups)
    _check_groups(groups, k)
    mpe = messages_per_executor
    if mpe < 1:
        raise ValueError("messages_per_executor must be at least 1")
    n = len(groups)
    intra: list[tuple[float, ...]] = [()] * k
    cross: list[tuple[float, ...]] = [()] * k
    intra_dense = 0.0
    cross_dense = 0.0
    if phase == "tree_aggregate":
        for group in groups:
            for e in group[1:]:
                intra[e] = tuple(float(model_size) for _ in range(mpe))
                intra_dense += float(model_size) * mpe
            cross[group[0]] = (float(model_size),)
            cross_dense += float(model_size)
    elif phase in ("reduce_scatter", "all_gather"):
        slices = partition_slices(model_size, n)
        for j, group in enumerate(groups):
            leader = group[0]
            members = len(group) - 1
            own = float(slices[j].stop - slices[j].start)
            if phase == "reduce_scatter":
                for e in group[1:]:
                    intra[e] = (float(model_size),)
                cross[leader] = tuple(
                    float(slices[i].stop - slices[i].start)
                    for i in range(n) if i != j)
                cross_dense += float(model_size) - own
            else:
                cross[leader] = tuple(own for _ in range(n - 1))
                intra[leader] = tuple(float(model_size)
                                      for _ in range(members))
                cross_dense += own * (n - 1)
            intra_dense += float(model_size) * members
    else:
        raise ValueError(f"unknown hierarchical phase {phase!r}")
    return HierWire(phase=phase, model_size=model_size, groups=groups,
                    intra_sends=tuple(intra), cross_sends=tuple(cross),
                    intra_dense=intra_dense, cross_dense=cross_dense,
                    messages_per_executor=mpe)
