"""In-network aggregation: a SwitchML-style switch with bounded pool slots.

The top rung of the aggregation ladder (SwitchML, Sapio et al.): a
programmable switch on the executors' fabric aggregates *dense* payloads
at line rate.  Every executor streams its full vector up in fixed-size
chunks; the switch adds corresponding chunks in its register pool and
multicasts completed results down.  Two properties shape the cost model:

* **Line rate, one alpha per round.**  All ``k`` uplinks stream
  concurrently, so a phase costs one endpoint's transfer — not ``k - 1``
  separate messages.  The per-message latency is paid once per *slot
  round* rather than once per peer, which is where the switch beats both
  the flat shuffle (``(k-1) alpha``) and the hierarchical scheme
  (``(n-1) alpha``) when the model is latency-dominated.
* **Bounded slot pool.**  The switch holds ``pool_slots`` in-flight
  chunks of ``chunk_values`` values.  A vector needing more chunks than
  slots streams in multiple rounds, *stalling* at each pool drain — an
  extra alpha per round (:func:`switch_stream_seconds`).  Slot exhaustion
  stretches simulated seconds only; it never touches the numerics (the
  invariant ``tests/test_topology_collectives.py`` pins).

**Sparse fallback.**  A switch adds fixed-position registers: it cannot
aggregate index/value payloads.  When the sparse wire format is enabled
and strictly cheaper for the phase (the SparCML break-even: sparse wire
volume ``< `` dense volume, ties stay dense — and therefore stay on the
switch), the collective deterministically *falls back to host
aggregation* and prices exactly as the PR 4 sparse path; ``mode='on'``
always falls back (the user forced a wire format the switch cannot
carry).  The fallback decision changes pricing only — the returned
arrays are bit-identical either way, because every path runs the same
flat combine kernels.

Determinism: chunk/round arithmetic is integer; no set iteration
anywhere (rule DET002 applies to this module).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.network import NetworkModel
from .allreduce import all_gather, reduce_scatter
from .sparse import (CommStats, TreeWire, sparse_all_gather,
                     sparse_reduce_scatter, tree_fan_in_wire)

__all__ = ["SwitchWire", "switch_stream_seconds", "switch_rounds",
           "switch_reduce_scatter", "switch_all_gather",
           "switch_tree_fan_in", "switch_dense_wire"]


def switch_rounds(values: float, chunk_values: int, pool_slots: int) -> int:
    """Slot rounds needed to stream ``values`` through the switch pool.

    ``ceil(ceil(values / chunk) / slots)``: the vector is cut into
    chunks, and at most ``pool_slots`` chunks are in flight per round.
    Zero values need zero rounds.
    """
    if chunk_values < 1:
        raise ValueError("chunk_values must be at least 1")
    if pool_slots < 1:
        raise ValueError("pool_slots must be at least 1")
    if values < 0:
        raise ValueError("cannot stream a negative number of values")
    if values == 0:
        return 0
    chunks = -(-int(values) // chunk_values)
    return -(-chunks // pool_slots)


def switch_stream_seconds(net: NetworkModel, values: float,
                          chunk_values: int, pool_slots: int) -> float:
    """Cost of one endpoint streaming ``values`` through the switch.

    Line-rate bandwidth plus one latency per slot round: the first alpha
    covers the stream setup, and every pool drain beyond it stalls the
    stream for one more alpha.  With a pool large enough for the whole
    vector this is exactly ``transfer_seconds(values)``.
    """
    rounds = switch_rounds(values, chunk_values, pool_slots)
    if rounds == 0:
        return 0.0
    return (rounds * net.alpha
            + values * net.bytes_per_value / net.bandwidth)


@dataclass(frozen=True)
class SwitchWire:
    """Wire accounting of one in-network collective phase.

    ``values_per_link`` is what each of the ``num_senders`` endpoints
    streams on its own link (up in Reduce-Scatter / the tree fan-in,
    down in AllGather) — always dense: the switch carries raw vectors.
    When ``fallback`` is set the switch was bypassed for this phase; the
    engine prices the wrapped host-aggregation stats instead and the
    slot pool never enters the picture.
    """

    phase: str
    model_size: int
    num_senders: int
    pool_slots: int
    chunk_values: int
    values_per_link: float
    #: Tree fan-in only: task-wave messages per executor.
    messages_per_executor: int = 1
    #: Host-aggregation pricing when the sparse break-even bypassed the
    #: switch (a :class:`CommStats` for RS/AG, a :class:`TreeWire` for
    #: the tree fan-in); ``None`` means the switch carried the phase.
    fallback: "CommStats | TreeWire | None" = None

    def __post_init__(self) -> None:
        if self.phase not in ("reduce_scatter", "all_gather",
                              "tree_aggregate"):
            raise ValueError(f"unknown switch phase {self.phase!r}")
        if self.num_senders < 1:
            raise ValueError("need at least one sender")
        if self.values_per_link < 0:
            raise ValueError("values_per_link must be non-negative")
        # Validate the pool geometry eagerly.
        switch_rounds(self.values_per_link, self.chunk_values,
                      self.pool_slots)

    # ------------------------------------------------------------------
    @property
    def rounds(self) -> int:
        """Slot rounds per endpoint stream."""
        return switch_rounds(self.values_per_link, self.chunk_values,
                             self.pool_slots)

    @property
    def wire_values(self) -> float:
        if self.fallback is not None:
            return self.fallback.wire_values
        total = self.num_senders * self.values_per_link
        if self.phase == "tree_aggregate":
            total += float(self.model_size)  # switch -> driver result
        return total

    @property
    def dense_values(self) -> float:
        if self.fallback is not None:
            return self.fallback.dense_values
        total = self.num_senders * self.values_per_link
        if self.phase == "tree_aggregate":
            total += float(self.model_size)
        return total

    @property
    def compression(self) -> float:
        if self.wire_values <= 0:
            return 1.0
        return self.dense_values / self.wire_values


def _fallback_to_host(mode: str, wire_total: float,
                      dense_total: float) -> bool:
    """The deterministic sparse bypass rule (the tested contract).

    ``mode='off'`` never leaves the switch.  ``mode='on'`` always does
    (sparse is forced and the switch cannot carry it).  ``mode='auto'``
    falls back iff the host sparse exchange is *strictly* cheaper —
    exactly the SparCML break-even, so ``2 * nnz == m`` messages price
    dense and stay in-network.
    """
    if mode == "off":
        return False
    if mode == "on":
        return True
    return wire_total < dense_total


# ----------------------------------------------------------------------
# data plane + wire, in one call (what the trainers use)
# ----------------------------------------------------------------------
def switch_reduce_scatter(models: list[np.ndarray],
                          combine: str = "average",
                          weights: list[float] | None = None,
                          mode: str = "off", pool_slots: int = 512,
                          chunk_values: int = 256,
                          ) -> tuple[list[np.ndarray], SwitchWire]:
    """In-network Reduce-Scatter: flat arithmetic, switch pricing.

    Every executor streams its full model up; the switch folds the ``k``
    streams at line rate.  The returned partitions come from the flat
    :func:`~repro.collectives.reduce_scatter` kernel — bit-identical to
    every other collective, fallback or not.
    """
    k = len(models)
    if k == 0:
        raise ValueError("need at least one model")
    m = int(models[0].shape[0])
    fallback: CommStats | None = None
    if mode != "off":
        partitions, stats = sparse_reduce_scatter(
            models, combine=combine, weights=weights, mode=mode)
        if _fallback_to_host(mode, stats.wire_values, stats.dense_values):
            fallback = stats
    if fallback is None:
        partitions = reduce_scatter(models, combine=combine,
                                    weights=weights)
    return partitions, SwitchWire(
        phase="reduce_scatter", model_size=m, num_senders=k,
        pool_slots=pool_slots, chunk_values=chunk_values,
        values_per_link=float(m), fallback=fallback)


def switch_all_gather(partitions: list[np.ndarray], model_size: int,
                      mode: str = "off", pool_slots: int = 512,
                      chunk_values: int = 256,
                      check_replicas: bool = False,
                      ) -> tuple[np.ndarray, SwitchWire]:
    """In-network AllGather: the switch multicasts the result down.

    Each executor receives the full reassembled model on its own link at
    line rate (the downstream half of the SwitchML AllReduce).
    """
    k = len(partitions)
    if k == 0:
        raise ValueError("need at least one partition")
    fallback: CommStats | None = None
    if mode != "off":
        full, stats = sparse_all_gather(partitions, model_size, mode=mode,
                                        check_replicas=check_replicas)
        if _fallback_to_host(mode, stats.wire_values, stats.dense_values):
            fallback = stats
    if fallback is None:
        full = all_gather(partitions, model_size,
                          check_replicas=check_replicas)
    return full, SwitchWire(
        phase="all_gather", model_size=model_size, num_senders=k,
        pool_slots=pool_slots, chunk_values=chunk_values,
        values_per_link=float(model_size), fallback=fallback)


def switch_tree_fan_in(vectors_by_executor: list[list[np.ndarray]],
                       plan: dict[int, int], model_size: int,
                       mode: str = "off", pool_slots: int = 512,
                       chunk_values: int = 256) -> SwitchWire:
    """In-network treeAggregate sizing for SendGradient/SendModel.

    All task vectors stream through the switch (replacing both
    aggregation levels); the driver receives one aggregated vector.
    ``plan`` is only consulted for the host-fallback pricing, which
    reproduces the PR 4 sparse treeAggregate exactly.
    """
    k = len(vectors_by_executor)
    if k == 0:
        raise ValueError("need at least one executor")
    mpe = len(vectors_by_executor[0])
    if mpe < 1 or any(len(row) != mpe for row in vectors_by_executor):
        raise ValueError("every executor must ship the same number of "
                         "task vectors")
    fallback: TreeWire | None = None
    if mode != "off":
        tree = tree_fan_in_wire(vectors_by_executor, plan, model_size,
                                mode)
        if _fallback_to_host(mode, tree.wire_values, tree.dense_values):
            fallback = tree
    return SwitchWire(
        phase="tree_aggregate", model_size=model_size, num_senders=k,
        pool_slots=pool_slots, chunk_values=chunk_values,
        values_per_link=float(model_size) * mpe,
        messages_per_executor=mpe, fallback=fallback)


def switch_dense_wire(phase: str, model_size: int, num_senders: int,
                      pool_slots: int = 512, chunk_values: int = 256,
                      messages_per_executor: int = 1) -> SwitchWire:
    """Dense-sized switch wire for trainers that ship dense vectors."""
    return SwitchWire(
        phase=phase, model_size=model_size, num_senders=num_senders,
        pool_slots=pool_slots, chunk_values=chunk_values,
        values_per_link=float(model_size) * (
            messages_per_executor if phase == "tree_aggregate" else 1),
        messages_per_executor=messages_per_executor)
