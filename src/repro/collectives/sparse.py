"""Sparse-aware wire formats for the collectives (SparCML-style).

The paper's ``2 k m`` AllReduce traffic invariant (Section IV-B2) prices a
*dense* model exchange, but every target dataset (avazu, url, kddb, kdd12)
is extremely sparse: a worker's local model is supported on its partition's
column support, and a mini-batch gradient on the batch's column support —
both typically a small fraction of ``m``.  SparCML (Renggli et al.) shows
that switching to an index/value wire format in exactly this regime cuts
communication volume by orders of magnitude.

This module adds that layer:

* :class:`SparsePayload` — the index/value wire format.  One sparse
  coordinate costs **two** wire values (its index and its value), which
  gives the SparCML break-even point: sparse is cheaper iff
  ``2 * nnz < m``, i.e. ``nnz < m / 2``.
* :func:`encode` / :func:`materialize` — the deterministic dense<->sparse
  switch.  ``mode='auto'`` picks the cheaper representation per message;
  ``'on'`` forces sparse (useful to demonstrate the crossover); ``'off'``
  passes the dense array through untouched.
* :func:`sparse_reduce_scatter` / :func:`sparse_all_gather` — sparse
  variants of the shuffle collectives.  Payloads are materialized before
  combining, so the arithmetic (and therefore every iterate) is
  **bit-identical** to the dense path; only the priced wire volume
  changes.  Each returns a :class:`CommStats` for the engine to price.
* :func:`tree_fan_in_wire` — nnz-aware wire sizes for the SendGradient
  paradigm's treeAggregate fan-in (leaf messages carry batch-support
  gradients; aggregator partials carry the union support of their group).

Determinism note: coordinate supports are computed with
``np.flatnonzero`` (ascending index order) and groups are iterated in
sorted order — never via set iteration (rule DET002 applies to this
module).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.sanitizer import check_replicas as _check_replicas
from ..engine.shuffle import exchange
from .allreduce import combine_weight_scale, partition_slices

__all__ = ["SPARSE_COMM_MODES", "SparsePayload", "CommStats", "TreeWire",
           "encode", "materialize", "payload_wire_values", "wire_values",
           "sparse_reduce_scatter", "sparse_all_gather", "tree_fan_in_wire"]

#: Valid values of ``TrainerConfig.sparse_comm`` / ``--sparse-comm``.
SPARSE_COMM_MODES = ("auto", "on", "off")


def _check_mode(mode: str) -> None:
    if mode not in SPARSE_COMM_MODES:
        raise ValueError(
            f"sparse-comm mode must be one of {SPARSE_COMM_MODES}, "
            f"got {mode!r}")


@dataclass(frozen=True)
class SparsePayload:
    """A vector in index/value wire format.

    ``indices`` must be strictly increasing — the support order is part of
    the wire format, so reassembly is deterministic regardless of how the
    payload was produced (rule DET002: no hash-order anywhere).
    """

    indices: np.ndarray
    values: np.ndarray
    length: int

    def __post_init__(self) -> None:
        if self.indices.ndim != 1 or self.values.ndim != 1:
            raise ValueError("indices and values must be 1-D")
        if self.indices.shape != self.values.shape:
            raise ValueError("indices and values must have the same length")
        if self.length < 0:
            raise ValueError("dense length must be non-negative")
        if self.indices.size:
            if int(self.indices[0]) < 0 or int(self.indices[-1]) >= self.length:
                raise ValueError("indices must lie in [0, length)")
            if np.any(np.diff(self.indices) <= 0):
                raise ValueError("indices must be strictly increasing")

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    @property
    def wire_values(self) -> float:
        """Values moved on the wire: one index + one value per coordinate."""
        return 2.0 * self.nnz

    def to_dense(self) -> np.ndarray:
        """Materialize the dense vector (exact: scatter into zeros)."""
        out = np.zeros(self.length)
        out[self.indices] = self.values
        return out

    @classmethod
    def from_dense(cls, vec: np.ndarray) -> "SparsePayload":
        """Encode a dense vector (support in ascending index order)."""
        idx = np.flatnonzero(vec)
        return cls(indices=idx, values=vec[idx], length=int(vec.shape[0]))


def wire_values(nnz: int, dense_size: int, mode: str) -> float:
    """Wire volume (in values) of one message under ``mode``.

    ``auto`` applies the SparCML break-even rule: index/value pairs iff
    ``nnz < dense_size / 2``, dense otherwise.
    """
    _check_mode(mode)
    if nnz < 0 or dense_size < 0:
        raise ValueError("nnz and dense_size must be non-negative")
    if mode == "off":
        return float(dense_size)
    if mode == "on":
        return 2.0 * nnz
    return 2.0 * nnz if 2 * nnz < dense_size else float(dense_size)


def encode(vec: np.ndarray, mode: str) -> "SparsePayload | np.ndarray":
    """Deterministic dense<->sparse switch for one message.

    Returns the original array under ``'off'`` (the dense path must stay
    bit-for-bit untouched), a :class:`SparsePayload` under ``'on'``, and
    whichever is cheaper on the wire under ``'auto'``.
    """
    _check_mode(mode)
    if mode == "off":
        return vec
    nnz = int(np.count_nonzero(vec))
    if mode == "auto" and 2 * nnz >= vec.shape[0]:
        return vec
    return SparsePayload.from_dense(vec)


def materialize(payload: "SparsePayload | np.ndarray") -> np.ndarray:
    """The dense vector a payload represents (identity for dense arrays)."""
    if isinstance(payload, SparsePayload):
        return payload.to_dense()
    return payload


def payload_wire_values(payload: "SparsePayload | np.ndarray") -> float:
    """Wire volume (in values) of one encoded message."""
    if isinstance(payload, SparsePayload):
        return payload.wire_values
    return float(payload.shape[0])


# ----------------------------------------------------------------------
# wire statistics the engines price
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CommStats:
    """Wire accounting of one collective phase.

    ``per_sender[r]`` lists the wire sizes (in values) of worker ``r``'s
    off-node messages in destination order; ``dense_values`` is what the
    dense exchange would have moved; ``wire_values`` is what actually
    moved.
    """

    phase: str
    dense_values: float
    wire_values: float
    per_sender: tuple[tuple[float, ...], ...]

    @property
    def compression(self) -> float:
        """Dense-over-wire volume ratio (1.0 for an empty exchange)."""
        if self.wire_values <= 0:
            return 1.0
        return self.dense_values / self.wire_values


@dataclass(frozen=True)
class TreeWire:
    """Wire accounting of one treeAggregate fan-in.

    ``leaf_values[i]`` lists executor ``i``'s message sizes (one per task
    wave); ``partial_values[j]`` is the size of the ``j``-th aggregator's
    partial (aggregators in ascending executor order).  Totals count only
    messages that cross the network (an aggregator's own vectors are
    local, as is every leaf of a depth-1 plan's... no: depth-1 leaves all
    cross to the driver).
    """

    leaf_values: tuple[tuple[float, ...], ...]
    partial_values: tuple[float, ...]
    dense_values: float
    wire_values: float

    @property
    def compression(self) -> float:
        if self.wire_values <= 0:
            return 1.0
        return self.dense_values / self.wire_values


# ----------------------------------------------------------------------
# sparse shuffle collectives
# ----------------------------------------------------------------------
def sparse_reduce_scatter(models: list[np.ndarray], combine: str = "average",
                          weights: list[float] | None = None,
                          mode: str = "auto",
                          ) -> tuple[list[np.ndarray], CommStats]:
    """Reduce-Scatter with per-message sparse encoding.

    Identical semantics to :func:`repro.collectives.reduce_scatter` —
    every payload is materialized before the combine, so owner partitions
    are bit-identical to the dense path under every ``mode``.  The second
    return value prices the wire.
    """
    _check_mode(mode)
    if combine not in ("average", "sum", "weighted"):
        raise ValueError("combine must be 'average', 'sum' or 'weighted'")
    k = len(models)
    if k == 0:
        raise ValueError("need at least one model")
    m = models[0].shape[0]
    if any(w.shape != (m,) for w in models):
        raise ValueError("all local models must have the same shape")
    scale = combine_weight_scale(combine, weights, k)
    slices = partition_slices(m, k)
    sizes = [s.stop - s.start for s in slices]

    # Worker r encodes slice i of its local model for owner i; the slice
    # it owns travels locally and pays no wire cost.
    outboxes = [{owner: encode(model[slices[owner]], mode)
                 for owner in range(k)}
                for model in models]
    per_sender = tuple(
        tuple(payload_wire_values(outboxes[src][owner])
              for owner in range(k) if owner != src)
        for src in range(k))
    dense_values = float(sum(sizes[owner]
                             for src in range(k)
                             for owner in range(k) if owner != src))
    stats = CommStats(
        phase="reduce_scatter", dense_values=dense_values,
        wire_values=float(sum(v for row in per_sender for v in row)),
        per_sender=per_sender)

    inboxes = exchange(outboxes, k)
    partitions: list[np.ndarray] = []
    for owner, pieces in enumerate(inboxes):
        stacked = np.vstack([materialize(p) for p in pieces])
        if scale is not None:
            combined = scale @ stacked
        else:
            combined = stacked.sum(axis=0)
            if combine == "average":
                combined = combined / k
        partitions.append(combined)
    return partitions, stats


def sparse_all_gather(partitions: list[np.ndarray], model_size: int,
                      mode: str = "auto", check_replicas: bool = False,
                      ) -> tuple[np.ndarray, CommStats]:
    """AllGather with per-message sparse encoding.

    The reassembled model is bit-identical to
    :func:`repro.collectives.all_gather`; the second return value prices
    the wire (each owner ships its encoded partition to ``k - 1`` peers).
    """
    _check_mode(mode)
    k = len(partitions)
    if k == 0:
        raise ValueError("need at least one partition")
    slices = partition_slices(model_size, k)
    expected = [s.stop - s.start for s in slices]
    actual = [p.shape[0] for p in partitions]
    if expected != actual:
        raise ValueError(
            f"partition sizes {actual} do not match owner slices {expected}")

    encoded = [encode(p, mode) for p in partitions]
    per_sender = tuple(
        tuple(payload_wire_values(encoded[owner])
              for dst in range(k) if dst != owner)
        for owner in range(k))
    dense_values = float(sum(expected[owner] * (k - 1)
                             for owner in range(k)))
    stats = CommStats(
        phase="all_gather", dense_values=dense_values,
        wire_values=float(sum(v for row in per_sender for v in row)),
        per_sender=per_sender)

    outboxes = [{dst: encoded[owner] for dst in range(k)}
                for owner in range(k)]
    inboxes = exchange(outboxes, k)
    if check_replicas:
        replicas = [np.concatenate([materialize(p) for p in inbox])
                    for inbox in inboxes]
        _check_replicas(replicas, context="all_gather")
        return replicas[0], stats
    full = np.concatenate([materialize(p) for p in inboxes[0]])
    return full, stats


# ----------------------------------------------------------------------
# SendGradient fan-in (treeAggregate)
# ----------------------------------------------------------------------
def tree_fan_in_wire(vectors_by_executor: list[list[np.ndarray]],
                     plan: dict[int, int], model_size: int,
                     mode: str) -> TreeWire:
    """nnz-aware wire sizes for one treeAggregate of sparse vectors.

    ``vectors_by_executor[i]`` holds executor ``i``'s per-task vectors (a
    mini-batch gradient's support is the batch's column support, far
    smaller than ``m``).  ``plan`` is
    :meth:`repro.engine.TreeAggregateModel.plan`'s group assignment
    (empty for depth-1 flat aggregation).  An aggregator's partial to the
    driver carries the union support of its group's vectors.
    """
    _check_mode(mode)
    k = len(vectors_by_executor)
    if k == 0:
        raise ValueError("need at least one executor")
    supports = [[np.flatnonzero(v) for v in vectors]
                for vectors in vectors_by_executor]
    leaf_values = tuple(
        tuple(wire_values(int(idx.size), model_size, mode) for idx in row)
        for row in supports)

    aggregators = sorted(plan)
    a = len(aggregators)
    partial_values: list[float] = []
    for agg in aggregators:
        member_supports = [idx for e in range(k) if e % a == agg
                           for idx in supports[e]]
        union = (np.unique(np.concatenate(member_supports))
                 if member_supports else np.empty(0, dtype=np.int64))
        partial_values.append(wire_values(int(union.size), model_size, mode))

    if a == 0:
        # Depth 1: every leaf message crosses to the driver.
        network_leaves = [(e, t) for e in range(k)
                          for t in range(len(leaf_values[e]))]
    else:
        # Depth 2: members ship to their aggregator; an aggregator's own
        # vectors are local (executor e's aggregator is e % a).
        network_leaves = [(e, t) for e in range(k) if e % a != e
                          for t in range(len(leaf_values[e]))]
    wire_total = (sum(leaf_values[e][t] for e, t in network_leaves)
                  + sum(partial_values))
    dense_total = float(model_size) * (len(network_leaves) + a)
    return TreeWire(leaf_values=leaf_values,
                    partial_values=tuple(partial_values),
                    dense_values=dense_total, wire_values=wire_total)
