"""The paper's systems: MLlib baseline, MLlib + model averaging, MLlib*."""

from .config import TrainerConfig
from .local import send_model_update
from .mllib import MLlibTrainer
from .mllib_ma import MLlibModelAveragingTrainer
from .mllib_star import MLlibStarTrainer
from .spark_ml import SparkMlStarTrainer, SparkMlTrainer
from .trainer import DistributedTrainer, TrainingSession, TrainResult

__all__ = [
    "TrainerConfig",
    "DistributedTrainer", "TrainingSession", "TrainResult",
    "MLlibTrainer", "MLlibModelAveragingTrainer", "MLlibStarTrainer",
    "SparkMlTrainer", "SparkMlStarTrainer",
    "send_model_update",
]
