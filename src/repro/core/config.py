"""Trainer configuration shared by all systems.

One config object covers every trainer; fields that a given paradigm does
not use are simply ignored (e.g. ``batch_fraction`` drives SendGradient
batch sampling and PS batch sizes, while SendModel trainers use
``local_epochs`` and ``local_chunk_size``).  The paper tunes batch size and
learning rate per (system, dataset) by grid search; the benches do a small
grid over these fields.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["TrainerConfig"]


@dataclass(frozen=True)
class TrainerConfig:
    """Hyperparameters and run control for distributed MGD.

    Parameters
    ----------
    learning_rate:
        Base step size (eta).
    lr_schedule:
        ``constant``, ``inv_sqrt`` (MLlib's default decay) or ``inv_time``.
    batch_fraction:
        Mini-batch size as a fraction of each worker's partition
        (MLlib's ``miniBatchFraction``; also Petuum/Angel batch size).
    local_epochs:
        SendModel only: local passes over the partition per communication
        step (the ``T'`` of Algorithm 2).
    local_chunk_size:
        SendModel only: examples per local SGD update.  1 is textbook
        per-example SGD; larger values vectorize the same schedule.
    lazy_l2:
        Use the Bottou lazy/scaled representation for L2 decay in local
        SGD (Section IV-B1).  Eager mode exists for the ablation bench.
    max_steps:
        Hard cap on communication steps.
    eval_every:
        Evaluate the full-dataset objective every this many steps
        (monitoring only; costs no simulated time).  The final step is
        always evaluated.  Raise this for systems that take thousands of
        cheap steps (MLlib, Petuum) to keep host-side runtime down.
    tasks_per_executor:
        Waves of tasks per executor in SendGradient trainers
        (Section V-C).  Each wave pays a task-launch overhead and ships
        its own gradient into the aggregation; the paper found 1 optimal.
    stop_threshold:
        Stop early once the full-dataset objective is at or below this
        value (None disables early stopping).
    divergence_limit:
        Abort when the objective exceeds this value (catches model
        summation blowing up).
    seed:
        Seed for batch sampling / shuffling; runs are deterministic.
    failure_rate:
        Per-(step, executor) crash probability (0 disables fault
        injection).  Draws are seeded and order-independent; see
        :class:`repro.cluster.faults.RandomFailures`.
    failure_schedule:
        Scripted failures, e.g. ``"3@12"`` (executor 3 dies at step 12),
        ``"1@5:reduce_scatter"``, ``"0@2x5"`` (five crashes in a row).
        See :func:`repro.cluster.faults.parse_failure_schedule`.
    max_retries:
        Recoveries allowed per crash site before the run is declared
        lost with :class:`repro.cluster.faults.RecoveryError`.
    recovery_strategy:
        ``recompute`` (Spark lineage) or ``checkpoint`` (periodic
        checkpoints are written and restored from).
    checkpoint_every:
        Steps between checkpoint writes (``checkpoint`` strategy only;
        0 disables writing).
    restart_seconds:
        Fixed executor restart/reschedule delay paid per recovery.
    sanitize:
        Enable the barrier sanitizer: broadcast/pulled model arrays are
        frozen (``ndarray.setflags(write=False)``) at superstep
        boundaries so in-place mutation of shared state raises at the
        faulting line, and barrier-time digests verify model replicas
        stay bit-identical.  Monitoring only — a clean run is
        bit-identical with or without it.  See
        :mod:`repro.analysis.sanitizer`.
    sparse_comm:
        Communication wire format: ``off`` (the paper's dense ``2 k m``
        exchange — the default, keeping priced seconds bit-identical to
        the dense engine), ``auto`` (SparCML-style index/value encoding
        per message whenever ``nnz < m / 2``), or ``on`` (force sparse
        encoding, useful to demonstrate the crossover).  Sparsity changes
        priced communication cost only, never the numerics — iterates are
        bit-identical across all three modes.  See
        :mod:`repro.collectives.sparse`.
    backend:
        Host-side execution backend for the per-worker local solves:
        ``serial`` (in-process reference loop), ``threads`` (thread pool;
        NumPy kernels release the GIL), ``processes`` (process pool with
        pickle-once — under fork, pickle-never — partitions), ``shm``
        (process pool over shared-memory CSR shards with a zero-copy
        broadcast arena) or ``socket`` (long-lived worker daemons over
        localhost TCP whose bytes-on-wire and wall seconds are measured
        for ``repro perf --validate-network``).  A *wall-clock* knob
        only: every backend produces bit-identical iterates, histories
        and simulated seconds (fixed per-worker RNG streams, fixed
        combine order).  See :mod:`repro.engine.backend` and
        ``docs/performance.md``.
    collective:
        Aggregation topology: ``flat`` (the paper's shuffle AllReduce /
        treeAggregate — the default, bit-identical to the seed pricing),
        ``hier`` (two-tier intra-node combine + cross-node exchange over
        ``ClusterSpec.placement``) or ``switch`` (SwitchML-style
        in-network aggregation with a bounded slot pool).  A *pricing*
        knob only: every topology runs the same flat combine kernels, so
        iterates are bit-identical across all three.  See
        ``docs/communication.md``.
    switch_slots:
        ``switch`` only: aggregation slots in the switch register pool.
        Vectors needing more chunks than slots stream in multiple
        rounds, paying one extra latency per stall.
    switch_chunk:
        ``switch`` only: values per in-flight chunk in the switch pool.
    local_solver:
        SendModel local-solve family: ``mgd`` (the paper's primal
        minibatch-gradient passes — the default, bit-identical to the
        seed) or the dual coordinate-ascent family ``cocoa`` /
        ``cocoa+`` (SDCA epochs over each partition's dual variables;
        workers ship gamma-scaled model *deltas* that are summed, and a
        certified duality gap is reported per evaluation).  Requires L2
        regularization and a loss with an implemented conjugate.  See
        :mod:`repro.glm.dual` and ``docs/algorithms.md``.
    gamma:
        Dual solvers only: outer aggregation weight applied to every
        worker's delta (and, identically, to its retained dual block).
        ``None`` picks the family default — ``1/K`` (averaging) for
        ``cocoa``, ``1`` (adding) for ``cocoa+``.  The local subproblem
        scaling ``sigma' = gamma * K`` keeps any choice in ``(0, 1]``
        safe.
    local_iters:
        Dual solvers only: the local-iteration budget ``H`` — SDCA
        passes over the worker's dual block per communication step (the
        compute-vs-communication lever of Duenner et al.).
    """

    learning_rate: float = 0.1
    lr_schedule: str = "constant"
    batch_fraction: float = 0.01
    local_epochs: int = 1
    local_chunk_size: int = 32
    lazy_l2: bool = True
    max_steps: int = 100
    eval_every: int = 1
    tasks_per_executor: int = 1
    stop_threshold: float | None = None
    divergence_limit: float = 1.0e6
    seed: int = 0
    failure_rate: float = 0.0
    failure_schedule: str | None = None
    max_retries: int = 2
    recovery_strategy: str = "recompute"
    checkpoint_every: int = 0
    restart_seconds: float = 1.0
    sanitize: bool = False
    sparse_comm: str = "off"
    backend: str = "serial"
    collective: str = "flat"
    switch_slots: int = 512
    switch_chunk: int = 256
    local_solver: str = "mgd"
    gamma: float | None = None
    local_iters: int = 1

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0 < self.batch_fraction <= 1:
            raise ValueError("batch_fraction must be in (0, 1]")
        if self.local_epochs < 1:
            raise ValueError("local_epochs must be at least 1")
        if self.local_chunk_size < 1:
            raise ValueError("local_chunk_size must be at least 1")
        if self.max_steps < 1:
            raise ValueError("max_steps must be at least 1")
        if self.eval_every < 1:
            raise ValueError("eval_every must be at least 1")
        if self.tasks_per_executor < 1:
            raise ValueError("tasks_per_executor must be at least 1")
        if self.divergence_limit <= 0:
            raise ValueError("divergence_limit must be positive")
        if not 0.0 <= self.failure_rate < 1.0:
            raise ValueError("failure_rate must be in [0, 1)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.recovery_strategy not in ("recompute", "checkpoint"):
            raise ValueError("recovery_strategy must be 'recompute' or "
                             "'checkpoint'")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        if self.restart_seconds < 0:
            raise ValueError("restart_seconds must be non-negative")
        if self.sparse_comm not in ("auto", "on", "off"):
            raise ValueError("sparse_comm must be 'auto', 'on' or 'off'")
        if self.backend not in ("serial", "threads", "processes", "shm",
                                "socket"):
            raise ValueError("backend must be 'serial', 'threads', "
                             "'processes', 'shm' or 'socket'")
        if self.collective not in ("flat", "hier", "switch"):
            raise ValueError("collective must be 'flat', 'hier' or "
                             "'switch'")
        if self.switch_slots < 1:
            raise ValueError("switch_slots must be at least 1")
        if self.switch_chunk < 1:
            raise ValueError("switch_chunk must be at least 1")
        if self.local_solver not in ("mgd", "cocoa", "cocoa+"):
            raise ValueError("local_solver must be 'mgd', 'cocoa' or "
                             "'cocoa+'")
        if self.gamma is not None and not 0.0 < self.gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        if self.local_iters < 1:
            raise ValueError("local_iters must be at least 1")

    def with_overrides(self, **kwargs) -> "TrainerConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)
