"""Shared SendModel worker computation.

Every SendModel system (MLlib + model averaging, MLlib*, Petuum*, Angel)
starts a communication step by running local updates from the current
global model.  This helper runs the configured number of local SGD passes
and reports the work stats the cost model needs.
"""

from __future__ import annotations

import numpy as np

from ..data import Partition
from ..glm import LocalStats, Objective, sgd_epoch
from .config import TrainerConfig

__all__ = ["send_model_update"]


def send_model_update(objective: Objective, w: np.ndarray,
                      partition: Partition, lr: float, config: TrainerConfig,
                      rng: np.random.Generator,
                      ) -> tuple[np.ndarray, LocalStats]:
    """Algorithm 3's ``UpdateModel``: local SGD passes from the global model.

    Runs ``config.local_epochs`` shuffled passes of chunked SGD (chunk size
    ``config.local_chunk_size``) over the worker's partition, using the lazy
    L2 representation when configured.  Returns the worker's local model and
    merged work stats.
    """
    current = w
    total = LocalStats()
    for _ in range(config.local_epochs):
        current, stats = sgd_epoch(
            objective, current, partition.X, partition.y, lr, rng,
            chunk_size=config.local_chunk_size, lazy=config.lazy_l2)
        total = total.merge(stats)
    return current, total
