"""Baseline MLlib: the SendGradient paradigm (Figure 2(a)).

One communication step of MLlib's ``GradientDescent``:

1. the driver broadcasts the current model (priced at the *end* of the
   previous step here, so step 1 starts from the initial broadcast-free
   state as in Spark, where the initial zero model is part of the closure);
2. every executor samples a mini-batch from its cached partition and
   computes the gradient at the received model;
3. gradients are combined hierarchically via ``treeAggregate``;
4. the driver applies one (1) update to the global model;
5. the driver broadcasts the updated model for the next step.

Bottlenecks B1 (one update per step) and B2 (driver + intermediate
aggregators serialize while executors wait) both live here, and both are
visible in the emitted trace.
"""

from __future__ import annotations

import numpy as np

from ..cluster import ClusterSpec, Trace
from ..collectives import (hier_tree_fan_in, switch_tree_fan_in,
                           tree_fan_in_wire)
from ..engine import (BroadcastModel, BspEngine, PartitionedDataset,
                      TreeAggregateModel)
from ..glm import Objective, apply_update
from .config import TrainerConfig
from .trainer import DistributedTrainer
from .worker import gradient_wave_task

__all__ = ["MLlibTrainer"]


class MLlibTrainer(DistributedTrainer):
    """Spark MLlib's distributed MGD (SendGradient + treeAggregate)."""

    system = "MLlib"

    def __init__(self, objective: Objective, cluster: ClusterSpec,
                 config: TrainerConfig | None = None,
                 tree: TreeAggregateModel | None = None,
                 broadcast: BroadcastModel | None = None) -> None:
        super().__init__(objective, cluster, config)
        self._tree = tree
        self._broadcast = broadcast
        self._engine: BspEngine | None = None
        self._rngs: list[np.random.Generator] = []

    # ------------------------------------------------------------------
    def _prepare(self, data: PartitionedDataset) -> None:
        self._engine = BspEngine(self.cluster, tree=self._tree,
                                 broadcast=self._broadcast,
                                 faults=self.faults, recovery=self.recovery)
        self._install_recovery_costs(self._engine, data)
        self._rngs = self._worker_rngs(data.num_partitions)

    def _clock(self) -> float:
        assert self._engine is not None, "fit() not started"
        return self._engine.now

    def _trace(self) -> Trace:
        assert self._engine is not None, "fit() not started"
        return self._engine.trace

    # ------------------------------------------------------------------
    def _run_step(self, step: int, w: np.ndarray,
                  data: PartitionedDataset) -> np.ndarray:
        engine = self._engine
        assert engine is not None
        m = data.n_features
        lr = self.schedule.at(step)

        # Phase 1: executors compute batch gradients at the current model.
        # With multiple waves, each executor runs its tasks sequentially
        # (one core slot per the paper's setting), each task sampling a
        # share of the batch, paying a launch overhead, and later shipping
        # its own gradient (Section V-C).  Executors are independent, so
        # the per-executor work fans out across the execution backend;
        # pricing stays in the parent against the returned nnz counts.
        waves = self.config.tasks_per_executor
        launch = self.cluster.compute.task_launch_seconds
        task_args = []
        for i, part in enumerate(data.partitions):
            batch = self._batch_size(part.n_rows)
            per_task = max(1, batch // waves)
            task_args.append((w, self.objective, waves, per_task,
                              self._rngs[i]))
        results = self._backend.map_partitions(gradient_wave_task, task_args)
        gradients: list[np.ndarray] = []
        task_grads_by_executor: list[list[np.ndarray]] = []
        durations: list[float] = []
        for i, (task_grads, nnz_list, rng) in enumerate(results):
            self._rngs[i] = rng
            seconds = 0.0
            for nnz in nnz_list:
                seconds += launch + self._compute_seconds(2 * nnz, 0, i)
            gradients.append(np.mean(task_grads, axis=0))
            task_grads_by_executor.append(task_grads)
            durations.append(seconds)
        engine.compute_phase(durations, step)

        # Phase 2: hierarchical aggregation — one message per task.  An
        # executor crashing here recomputes its batch gradients (the
        # in-memory vectors die with it) before resending.  Under
        # --sparse-comm each task's message is priced at its gradient's
        # support (the batch's column support, far smaller than m).
        mode = self.config.sparse_comm
        wire = None
        if self.config.collective == "hier":
            wire = hier_tree_fan_in(task_grads_by_executor,
                                    self.cluster.executor_groups(), m,
                                    mode)
        elif self.config.collective == "switch":
            wire = switch_tree_fan_in(
                task_grads_by_executor,
                engine.tree.plan(data.num_partitions), m, mode,
                pool_slots=self.config.switch_slots,
                chunk_values=self.config.switch_chunk)
        elif mode != "off":
            wire = tree_fan_in_wire(
                task_grads_by_executor,
                engine.tree.plan(data.num_partitions), m, mode)
        engine.tree_aggregate_phase(m, step, messages_per_executor=waves,
                                    redo_seconds=durations, wire=wire)

        # Phase 3: the single model update at the driver (bottleneck B1).
        mean_grad = np.mean(gradients, axis=0)
        new_w = apply_update(w, mean_grad, lr, self.objective)
        update_coords = 2 * m if self.objective.regularizer.is_dense else m
        update_seconds = self.cluster.compute.dense_op_seconds(
            update_coords, self.cluster.driver)
        engine.driver_update_phase(update_seconds, step)

        # Phase 4: broadcast the updated model for the next step.
        engine.broadcast_phase(m, step)
        return new_w
