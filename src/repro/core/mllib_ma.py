"""MLlib + model averaging: B1 fixed, B2 still present (Figure 3(b)).

The first of the paper's two improvements in isolation: workers run local
SGD (SendModel) so each communication step contains many model updates, but
models are still combined through the driver with ``treeAggregate`` and
broadcast back — the communication pattern is unchanged from MLlib.

The paper uses this intermediate system to separate the contribution of
model averaging (fewer steps to converge) from that of AllReduce (cheaper
steps); bench Fig. 3(b) and the Fig. 4 speedup decomposition rely on it.
"""

from __future__ import annotations

import numpy as np

from ..cluster import ClusterSpec, Trace
from ..collectives import (hier_tree_fan_in, switch_tree_fan_in,
                           tree_fan_in_wire)
from ..engine import (BroadcastModel, BspEngine, PartitionedDataset,
                      TreeAggregateModel)
from ..glm import Objective
from .config import TrainerConfig
from .trainer import DistributedTrainer
from .worker import run_dual_on_partition, send_model_task

__all__ = ["MLlibModelAveragingTrainer"]


class MLlibModelAveragingTrainer(DistributedTrainer):
    """SendModel through the unchanged MLlib aggregation path."""

    system = "MLlib+MA"
    supports_dual_solver = True

    def __init__(self, objective: Objective, cluster: ClusterSpec,
                 config: TrainerConfig | None = None,
                 tree: TreeAggregateModel | None = None,
                 broadcast: BroadcastModel | None = None) -> None:
        super().__init__(objective, cluster, config)
        self._tree = tree
        self._broadcast = broadcast
        self._engine: BspEngine | None = None
        self._rngs: list[np.random.Generator] = []

    # ------------------------------------------------------------------
    def _prepare(self, data: PartitionedDataset) -> None:
        self._engine = BspEngine(self.cluster, tree=self._tree,
                                 broadcast=self._broadcast,
                                 faults=self.faults, recovery=self.recovery)
        self._install_recovery_costs(self._engine, data)
        self._rngs = self._worker_rngs(data.num_partitions)
        self._init_dual_state(data)

    def _clock(self) -> float:
        assert self._engine is not None, "fit() not started"
        return self._engine.now

    def _trace(self) -> Trace:
        assert self._engine is not None, "fit() not started"
        return self._engine.trace

    # ------------------------------------------------------------------
    def _run_step(self, step: int, w: np.ndarray,
                  data: PartitionedDataset) -> np.ndarray:
        engine = self._engine
        assert engine is not None
        m = data.n_features
        dual = self.config.local_solver != "mgd"

        # Phase 1: every executor updates a local model over its
        # partition (independent local solves; fanned out across the
        # backend).  Under a dual solver the local work is H SDCA epochs
        # over the executor's dual block and the shipped vector is a
        # gamma-scaled model *delta* — the communication pattern (one
        # m-vector per executor up the tree, broadcast back) and its
        # pricing are unchanged.
        locals_: list[np.ndarray] = []
        durations: list[float] = []
        if dual:
            results = self._backend.map_partitions(
                run_dual_on_partition,
                [(w, self.objective, self._dual_spec, self._duals[i],
                  self._rngs[i]) for i in range(data.num_partitions)])
            for i, (delta_w, alpha, stats, rng) in enumerate(results):
                self._rngs[i] = rng
                self._duals[i] = alpha
                locals_.append(delta_w)
                durations.append(self._compute_seconds(
                    stats.nnz_processed, stats.dense_ops, i))
        else:
            lr = self.schedule.at(step)
            results = self._backend.map_partitions(
                send_model_task,
                [(w, self.objective, lr, self.config, self._rngs[i])
                 for i in range(data.num_partitions)])
            for i, (local_w, stats, rng) in enumerate(results):
                self._rngs[i] = rng
                locals_.append(local_w)
                durations.append(self._compute_seconds(
                    stats.nnz_processed, stats.dense_ops, i))
        engine.compute_phase(durations, step)

        # Phase 2: unchanged MLlib communication — models (not gradients)
        # flow through treeAggregate to the driver...  A crash here costs
        # the executor its local model, so it redoes its local SGD passes
        # before resending.  Under --sparse-comm each local model's
        # message is priced at its support (the coordinates local SGD
        # touched — the partition's column support at most).
        mode = self.config.sparse_comm
        wire = None
        if self.config.collective == "hier":
            wire = hier_tree_fan_in([[local] for local in locals_],
                                    self.cluster.executor_groups(), m,
                                    mode)
        elif self.config.collective == "switch":
            wire = switch_tree_fan_in(
                [[local] for local in locals_],
                engine.tree.plan(data.num_partitions), m, mode,
                pool_slots=self.config.switch_slots,
                chunk_values=self.config.switch_chunk)
        elif mode != "off":
            wire = tree_fan_in_wire(
                [[local] for local in locals_],
                engine.tree.plan(data.num_partitions), m, mode)
        engine.tree_aggregate_phase(m, step, redo_seconds=durations,
                                    wire=wire)

        # ...which combines them on the driver (one dense pass): model
        # averaging for the primal path, delta summation (applied to the
        # broadcast iterate, in fixed partition order) for the dual path.
        if dual:
            total = locals_[0].copy()
            for delta in locals_[1:]:
                total += delta
            new_w = w + total
        else:
            new_w = np.mean(locals_, axis=0)
        average_seconds = self.cluster.compute.dense_op_seconds(
            m, self.cluster.driver)
        engine.driver_update_phase(average_seconds, step)

        # ...and broadcasts the averaged model back (bottleneck B2 intact).
        engine.broadcast_phase(m, step)
        return new_w
