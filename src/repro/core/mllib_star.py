"""MLlib*: model averaging + distributed aggregation (Algorithm 3).

The paper's full system.  Each communication step:

1. ``UpdateModel``   — every executor runs local SGD from its copy of the
   global model (many updates per step: B1 fixed);
2. ``Reduce-Scatter`` — the model is logically partitioned, executor ``r``
   owns partition ``r``; everyone ships non-owned partitions to their
   owners via shuffle, and owners average the ``k`` copies they now hold;
3. ``AllGather``      — owners ship their averaged partition to all peers;
   every executor reassembles the identical full global model.

The driver only schedules; it touches no model data (B2 fixed).  Total
traffic per step stays ~``2 k m`` (the same as the driver round-trip), but
the latency is that of two balanced shuffle rounds instead of a serialized
fan-in + fan-out through one node.
"""

from __future__ import annotations

import numpy as np

from ..cluster import ClusterSpec, Trace
from ..collectives import (hier_all_gather, hier_reduce_scatter,
                           sparse_all_gather, sparse_reduce_scatter,
                           switch_all_gather, switch_reduce_scatter)
from ..engine import BspEngine, PartitionedDataset
from ..glm import Objective
from .config import TrainerConfig
from .trainer import DistributedTrainer
from .worker import run_dual_on_partition, send_model_task

__all__ = ["MLlibStarTrainer"]


class MLlibStarTrainer(DistributedTrainer):
    """The paper's MLlib*: SendModel + shuffle-based AllReduce."""

    system = "MLlib*"
    supports_dual_solver = True

    def __init__(self, objective: Objective, cluster: ClusterSpec,
                 config: TrainerConfig | None = None,
                 combine: str = "average") -> None:
        super().__init__(objective, cluster, config)
        if combine not in ("average", "sum", "weighted"):
            raise ValueError(
                "combine must be 'average', 'sum' or 'weighted'")
        #: 'average' is MLlib*'s scheme; 'sum' exists for the
        #: aggregation-scheme ablation (model summation can diverge);
        #: 'weighted' is the Zhang & Jordan [15] reweighting the paper's
        #: Section IV-B1 remark suggests, weighting each worker's model
        #: by its local sample count (matters for unbalanced partitions).
        self.combine = combine
        self._engine: BspEngine | None = None
        self._rngs: list[np.random.Generator] = []

    # ------------------------------------------------------------------
    def _prepare(self, data: PartitionedDataset) -> None:
        if data.n_features < data.num_partitions:
            raise ValueError(
                f"model of size {data.n_features} cannot be partitioned "
                f"across {data.num_partitions} executors for AllReduce: "
                "every owner needs at least one coordinate "
                "(num_executors > model_size)")
        self._engine = BspEngine(self.cluster, faults=self.faults,
                                 recovery=self.recovery)
        self._install_recovery_costs(self._engine, data)
        self._rngs = self._worker_rngs(data.num_partitions)
        self._init_dual_state(data)

    def _clock(self) -> float:
        assert self._engine is not None, "fit() not started"
        return self._engine.now

    def _trace(self) -> Trace:
        assert self._engine is not None, "fit() not started"
        return self._engine.trace

    # ------------------------------------------------------------------
    def _run_step(self, step: int, w: np.ndarray,
                  data: PartitionedDataset) -> np.ndarray:
        engine = self._engine
        assert engine is not None
        m = data.n_features

        if self.config.local_solver != "mgd":
            # Dual path (CoCoA/CoCoA+): every executor runs H SDCA
            # epochs over its dual block and ships a gamma-scaled model
            # *delta*; deltas are summed through the exact same
            # AllReduce and applied to the broadcast iterate.  Dual
            # blocks round-trip through the parent like the RNGs.
            results = self._backend.map_partitions(
                run_dual_on_partition,
                [(w, self.objective, self._dual_spec, self._duals[i],
                  self._rngs[i]) for i in range(data.num_partitions)])
            deltas: list[np.ndarray] = []
            durations: list[float] = []
            for i, (delta_w, alpha, stats, rng) in enumerate(results):
                self._rngs[i] = rng
                self._duals[i] = alpha
                deltas.append(delta_w)
                durations.append(self._compute_seconds(
                    stats.nnz_processed, stats.dense_ops, i))
            engine.compute_phase(durations, step)
            total = self._exchange(deltas, m, step, durations,
                                   combine="sum", weights=None)
            return w + total

        lr = self.schedule.at(step)

        # Phase 1: UpdateModel on every executor — independent local SGD
        # passes, fanned out across the execution backend (the combining
        # below stays in the parent, in fixed order).
        results = self._backend.map_partitions(
            send_model_task,
            [(w, self.objective, lr, self.config, self._rngs[i])
             for i in range(data.num_partitions)])
        locals_: list[np.ndarray] = []
        durations: list[float] = []
        for i, (local_w, stats, rng) in enumerate(results):
            self._rngs[i] = rng
            locals_.append(local_w)
            durations.append(self._compute_seconds(
                stats.nnz_processed, stats.dense_ops, i))
        engine.compute_phase(durations, step)
        weights = None
        if self.combine == "weighted":
            weights = [float(p.n_rows) for p in data.partitions]
        return self._exchange(locals_, m, step, durations,
                              combine=self.combine, weights=weights)

    def _exchange(self, locals_: list[np.ndarray], m: int, step: int,
                  durations: list[float], combine: str,
                  weights: list[float] | None) -> np.ndarray:
        """Reduce-Scatter + AllGather of one vector per executor.

        The priced shuffle AllReduce shared by the primal path (combine
        local *models*, usually averaging) and the dual path (``sum``
        the gamma-scaled *deltas*) — both exchange exactly one m-vector
        per executor, so topology and sparse-wire pricing compose
        identically.
        """
        engine = self._engine
        assert engine is not None

        # Phase 2: Reduce-Scatter — owners combine their partition.  A
        # crashed owner loses its local model *and* every piece peers
        # shipped it, so recovery redoes the local SGD passes and pulls a
        # refill fan-in from all peers — the whole barrier stalls on it.
        # The sparse wire format changes what the messages cost, never
        # what they say: payloads are materialized before combining, so
        # iterates are bit-identical across all --sparse-comm modes.
        # --collective picks the aggregation topology (flat shuffle,
        # two-tier hier, or in-network switch); every topology calls the
        # same flat combine kernels underneath, so iterates are
        # bit-identical across --collective values too.
        mode = self.config.sparse_comm
        collective = self.config.collective
        if collective == "hier":
            groups = self.cluster.executor_groups()
            partitions, rs_wire = hier_reduce_scatter(
                locals_, groups, combine=combine, weights=weights,
                mode=mode)
            engine.reduce_scatter_phase(m, step, redo_seconds=durations,
                                        wire=rs_wire)
            new_w, ag_wire = hier_all_gather(
                partitions, m, groups, mode=mode,
                check_replicas=self.sanitizer.enabled)
            engine.all_gather_phase(m, step, redo_seconds=durations,
                                    wire=ag_wire)
            return new_w
        if collective == "switch":
            partitions, rs_wire = switch_reduce_scatter(
                locals_, combine=combine, weights=weights,
                mode=mode, pool_slots=self.config.switch_slots,
                chunk_values=self.config.switch_chunk)
            engine.reduce_scatter_phase(m, step, redo_seconds=durations,
                                        wire=rs_wire)
            new_w, ag_wire = switch_all_gather(
                partitions, m, mode=mode,
                pool_slots=self.config.switch_slots,
                chunk_values=self.config.switch_chunk,
                check_replicas=self.sanitizer.enabled)
            engine.all_gather_phase(m, step, redo_seconds=durations,
                                    wire=ag_wire)
            return new_w
        partitions, rs_stats = sparse_reduce_scatter(
            locals_, combine=combine, weights=weights, mode=mode)
        engine.reduce_scatter_phase(
            m, step, redo_seconds=durations,
            wire=rs_stats if mode != "off" else None)

        # Phase 3: AllGather — everyone reassembles the global model.
        # Under --sanitize every worker's reassembled replica is
        # digest-checked for bit-identity at this barrier.
        new_w, ag_stats = sparse_all_gather(
            partitions, m, mode=mode,
            check_replicas=self.sanitizer.enabled)
        engine.all_gather_phase(
            m, step, redo_seconds=durations,
            wire=ag_stats if mode != "off" else None)
        return new_w
