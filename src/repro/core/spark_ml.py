"""spark.ml-style L-BFGS trainers: the paper's Section VII open question.

Spark's second-generation ``spark.ml`` library trains GLMs with L-BFGS
instead of mini-batch gradient descent.  The paper asks "whether the
techniques we have developed for speeding up MLlib could also be used for
improving spark.ml" and leaves it as future work; these trainers answer it
within the reproduction:

* :class:`SparkMlTrainer` — faithful spark.ml communication: every
  objective/gradient evaluation (one per strong-Wolfe line-search trial,
  exactly as breeze's ``StrongWolfeLineSearch`` does) broadcasts the
  candidate model from the driver, runs a distributed pass, and combines
  the gradient back through ``treeAggregate``; the driver then runs the
  two-loop recursion.  The driver round-trip happens several times per
  iteration.
* :class:`SparkMlStarTrainer` — the MLlib* treatment applied to L-BFGS:
  gradients are combined with Reduce-Scatter + AllGather, and every
  executor replicates the (deterministic) L-BFGS state and line search,
  so candidate models never cross the network.

Both trainers produce *identical iterates* (the math is unchanged); the
difference is purely the communication pattern, mirroring the
MLlib+MA-vs-MLlib* relationship.  Smooth objectives only (logistic or
squared loss, or hinge + L2 at your own risk — spark.ml smooths its SVM).
"""

from __future__ import annotations

import numpy as np

from ..cluster import ClusterSpec, Trace
from ..collectives import hier_dense_wire, switch_dense_wire
from ..engine import BspEngine, PartitionedDataset
from ..glm import Objective
from ..glm.lbfgs import LbfgsState, wolfe_line_search
from .config import TrainerConfig
from .trainer import DistributedTrainer
from .worker import full_pass_task

__all__ = ["SparkMlTrainer", "SparkMlStarTrainer"]


class SparkMlTrainer(DistributedTrainer):
    """spark.ml: driver-centric distributed L-BFGS."""

    system = "spark.ml"

    #: Curvature pairs kept by L-BFGS (spark.ml's default is 10).
    memory = 10
    #: Maximum strong-Wolfe evaluations per line search.
    max_line_search_evals = 12

    def __init__(self, objective: Objective, cluster: ClusterSpec,
                 config: TrainerConfig | None = None) -> None:
        super().__init__(objective, cluster, config)
        self._engine: BspEngine | None = None
        self._state: LbfgsState | None = None
        self._grad: np.ndarray | None = None
        self._fval: float = 0.0

    # ------------------------------------------------------------------
    def _prepare(self, data: PartitionedDataset) -> None:
        self._engine = BspEngine(self.cluster, faults=self.faults,
                                 recovery=self.recovery)
        self._install_recovery_costs(self._engine, data)
        self._state = LbfgsState(memory=self.memory)
        self._grad = None

    def _clock(self) -> float:
        assert self._engine is not None, "fit() not started"
        return self._engine.now

    def _trace(self) -> Trace:
        assert self._engine is not None, "fit() not started"
        return self._engine.trace

    # ------------------------------------------------------------------
    def _local_fg(self, w: np.ndarray, data: PartitionedDataset,
                  ) -> tuple[float, np.ndarray, list[float]]:
        """Full-batch objective and gradient: one pass per executor.

        The per-partition passes fan out across the execution backend;
        the weighted accumulation runs in the parent, in partition order
        — the serial loop's exact float-op sequence.
        """
        results = self._backend.map_partitions(
            full_pass_task, [(w, self.objective) for _ in data.partitions])
        total_rows = sum(p.n_rows for p in data.partitions)
        fval = self.objective.regularizer.value(w)
        grad = self.objective.regularizer.gradient(w)
        durations = []
        for i, part in enumerate(data.partitions):
            weight = part.n_rows / total_rows
            loss_value, loss_grad = results[i]
            fval += weight * loss_value
            grad = grad + weight * loss_grad
            durations.append(self._compute_seconds(2 * part.nnz, 0, i))
        return fval, grad, durations

    # ------------------------------------------------------------------
    # communication accounting hooks (overridden by the Star variant)
    # ------------------------------------------------------------------
    def _charge_evaluation(self, m: int, step: int,
                           durations: list[float],
                           candidate_shipped: bool) -> None:
        """One distributed (f, grad) evaluation.

        spark.ml ships the candidate model driver -> executors (unless the
        executors already hold it, e.g. the first evaluation of the run),
        runs the pass, and tree-aggregates the gradient back.
        """
        engine = self._engine
        assert engine is not None
        if candidate_shipped:
            engine.broadcast_phase(m, step)
        engine.compute_phase(durations, step)
        engine.tree_aggregate_phase(m, step, redo_seconds=durations,
                                    wire=self._topology_wire(
                                        "tree_aggregate", m))

    def _topology_wire(self, phase: str, m: int):
        """Non-flat collective pricing for the dense L-BFGS messages.

        spark.ml ships dense gradients, so hier/switch wires carry every
        message at its dense size; under the default ``flat`` collective
        this returns ``None`` and pricing is bit-identical to the seed.
        """
        collective = self.config.collective
        if collective == "hier":
            return hier_dense_wire(phase, m,
                                   self.cluster.executor_groups())
        if collective == "switch":
            return switch_dense_wire(
                phase, m, self.cluster.num_executors,
                pool_slots=self.config.switch_slots,
                chunk_values=self.config.switch_chunk)
        return None

    def _charge_direction(self, m: int, step: int) -> None:
        """The two-loop recursion over the curvature history."""
        engine = self._engine
        assert engine is not None
        state = self._state
        coords = (4 * len(state) + 2) * m if state else 2 * m
        engine.driver_update_phase(
            self.cluster.compute.dense_op_seconds(coords,
                                                  self.cluster.driver),
            step)

    # ------------------------------------------------------------------
    def _run_step(self, step: int, w: np.ndarray,
                  data: PartitionedDataset) -> np.ndarray:
        engine = self._engine
        assert engine is not None
        m = data.n_features

        if self._grad is None:
            fval, grad, durations = self._local_fg(w, data)
            self._charge_evaluation(m, step, durations,
                                    candidate_shipped=False)
        else:
            # Cached from the accepted line-search point of the last step.
            fval, grad = self._fval, self._grad

        assert self._state is not None
        direction = self._state.direction(grad)
        self._charge_direction(m, step)

        def fg_probe(candidate: np.ndarray) -> tuple[float, np.ndarray]:
            value, gradient, durations = self._local_fg(candidate, data)
            self._charge_evaluation(m, step, durations,
                                    candidate_shipped=True)
            return value, gradient

        search = wolfe_line_search(fg_probe, w, direction, fval, grad,
                                   max_evals=self.max_line_search_evals)
        if not search.success:
            # Reset curvature and retry along steepest descent.
            self._state = LbfgsState(memory=self.memory)
            direction = -grad
            search = wolfe_line_search(fg_probe, w, direction, fval, grad,
                                       max_evals=self.max_line_search_evals)
            if not search.success:
                # Stuck (e.g. at a kink of a nonsmooth loss); keep the
                # iterate and let the step cap end the run.
                self._fval, self._grad = fval, grad
                return w

        new_w = w + search.step * direction
        assert search.grad is not None
        self._state.push(new_w - w, search.grad - grad)
        self._fval, self._grad = search.fval, search.grad
        return new_w


class SparkMlStarTrainer(SparkMlTrainer):
    """spark.ml + the MLlib* treatment: AllReduce, replicated line search.

    Every executor holds the same L-BFGS state and runs the same line
    search (deterministic functions of the shared gradient), so candidate
    models never cross the network — each evaluation costs one local pass
    plus one gradient AllReduce, and the driver is out of the data path.
    """

    system = "spark.ml*"

    def _prepare(self, data: PartitionedDataset) -> None:
        if data.n_features < data.num_partitions:
            raise ValueError(
                f"model of size {data.n_features} cannot be partitioned "
                f"across {data.num_partitions} executors for AllReduce: "
                "every owner needs at least one coordinate "
                "(num_executors > model_size)")
        super()._prepare(data)

    def _charge_evaluation(self, m: int, step: int,
                           durations: list[float],
                           candidate_shipped: bool) -> None:
        engine = self._engine
        assert engine is not None
        # No model broadcast: every executor builds the candidate locally.
        engine.compute_phase(durations, step)
        engine.reduce_scatter_phase(m, step, redo_seconds=durations,
                                    wire=self._topology_wire(
                                        "reduce_scatter", m))
        engine.all_gather_phase(m, step, redo_seconds=durations,
                                wire=self._topology_wire("all_gather", m))

    def _charge_direction(self, m: int, step: int) -> None:
        engine = self._engine
        assert engine is not None
        state = self._state
        coords = (4 * len(state) + 2) * m if state else 2 * m
        durations = [
            self.cluster.compute.dense_op_seconds(coords, node)
            for node in self.cluster.executors
        ]
        engine.compute_phase(durations, step)
