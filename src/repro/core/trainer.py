"""Distributed trainer base class and result container.

Every system in the study — MLlib, MLlib + model averaging, MLlib*,
Petuum, Petuum* and Angel — extends :class:`DistributedTrainer`.  The base
class owns the training loop skeleton shared by Algorithm 2 and
Algorithm 3:

1. partition the data across workers (``LoadData``),
2. initialize the global model (``InitialModel``),
3. repeat communication steps until convergence or the step cap,
4. after every step, evaluate the full-dataset objective (the paper's
   y-axis) against the *simulated* clock (the paper's x-axis).

Subclasses implement :meth:`_prepare` (engine/state construction) and
:meth:`_run_step` (one communication step: local work + communication,
returning the new global model).  Objective evaluation is monitoring and
costs no simulated time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..analysis.sanitizer import BarrierSanitizer
from ..cluster import ClusterSpec, Trace
from ..cluster.faults import (FailureRecord, RecoveryPolicy,
                              build_failure_model)
from ..data import SparseDataset
from ..engine import CommRecord, PartitionedDataset
from ..engine.backend import ExecutionBackend, SerialBackend, make_backend
from ..glm import GLMModel, Objective, get_schedule
from ..metrics import TrainingHistory
from ..perf.profiler import NullProfiler, PhaseProfiler
from .config import TrainerConfig

__all__ = ["TrainResult", "DistributedTrainer"]


@dataclass(frozen=True)
class TrainResult:
    """Everything a training run produced."""

    model: GLMModel
    history: TrainingHistory
    trace: Trace
    converged: bool
    diverged: bool
    #: Injected executor crashes the run recovered from (empty unless
    #: fault injection was configured).
    failures: tuple[FailureRecord, ...] = ()
    #: Wire accounting, one record per priced communication phase (empty
    #: for trainers without a comm-recording engine).
    comm: tuple[CommRecord, ...] = ()

    @property
    def final_objective(self) -> float:
        return self.history.final_objective

    @property
    def recovery_seconds(self) -> float:
        """Total failure-recovery downtime across all nodes."""
        return self.trace.recovery_seconds()

    @property
    def comm_seconds(self) -> float:
        """Total priced communication seconds across recorded phases."""
        return sum(r.seconds for r in self.comm)

    @property
    def comm_compression(self) -> float:
        """Overall dense-over-wire volume ratio of the run."""
        wire = sum(r.wire_values for r in self.comm)
        if wire <= 0:
            return 1.0
        return sum(r.dense_values for r in self.comm) / wire


class DistributedTrainer:
    """Template for distributed MGD systems.

    Parameters
    ----------
    objective:
        The GLM objective (loss + regularizer) to minimize.
    cluster:
        Simulated cluster the system runs on.
    config:
        Hyperparameters and run control.
    """

    #: Human-readable system name, overridden by subclasses.
    system = "abstract"

    def __init__(self, objective: Objective, cluster: ClusterSpec,
                 config: TrainerConfig | None = None) -> None:
        self.objective = objective
        self.cluster = cluster
        self.config = config if config is not None else TrainerConfig()
        self.schedule = get_schedule(self.config.lr_schedule,
                                     self.config.learning_rate)
        #: Fault-injection model and recovery policy derived from the
        #: config; engines consult them so failures stretch the simulated
        #: clock without ever touching the numerics.
        self.faults = build_failure_model(self.config.failure_rate,
                                          self.config.failure_schedule,
                                          self.config.seed)
        self.recovery = RecoveryPolicy(
            max_retries=self.config.max_retries,
            strategy=self.config.recovery_strategy,
            checkpoint_every=self.config.checkpoint_every,
            restart_seconds=self.config.restart_seconds)
        #: Barrier sanitizer (``--sanitize``): freezes the model at every
        #: superstep boundary and logs barrier digests.  Disabled (all
        #: hooks no-ops) unless ``config.sanitize`` is set.
        self.sanitizer = BarrierSanitizer(enabled=self.config.sanitize)
        #: Execution backend for the per-worker local solves
        #: (``config.backend``).  A fresh pool is built per ``fit`` and
        #: torn down when it returns; between fits a serial stub keeps
        #: direct ``_run_step`` calls working.  Purely a wall-clock
        #: choice — results are bit-identical across backends.
        self._backend: ExecutionBackend = SerialBackend()
        #: Wall-clock profiler hook (:mod:`repro.perf.profiler`).  The
        #: default records nothing; install a ``PhaseProfiler`` before
        #: ``fit`` to collect ``superstep`` / ``evaluate`` /
        #: ``local_solve`` phase timings.
        self.profiler: PhaseProfiler = NullProfiler()

    # ------------------------------------------------------------------
    # subclass contract
    # ------------------------------------------------------------------
    def _prepare(self, data: PartitionedDataset) -> None:
        """Build engine/state for a run.  Called once per ``fit``."""
        raise NotImplementedError

    def _run_step(self, step: int, w: np.ndarray,
                  data: PartitionedDataset) -> np.ndarray:
        """Execute communication step ``step`` (1-based); return new model."""
        raise NotImplementedError

    def _clock(self) -> float:
        """Current simulated time; subclasses expose their engine's clock."""
        raise NotImplementedError

    def _trace(self) -> Trace:
        """The trace collected so far."""
        raise NotImplementedError

    def _on_initial_model(self, w: np.ndarray,
                          data: PartitionedDataset) -> None:
        """Hook invoked once with the initial model (after ``_prepare``).

        Trainers that keep internal per-worker state seeded from the
        initial model (e.g. the asynchronous trainer) override this; the
        default is a no-op because most trainers receive the model through
        ``_run_step``.
        """

    def _failures(self) -> list[FailureRecord]:
        """Crash records collected by the engine (empty without one)."""
        engine = getattr(self, "_engine", None)
        return list(getattr(engine, "failures", []))

    def _comm_records(self) -> list[CommRecord]:
        """Comm accounting collected by the engine (empty without one)."""
        engine = getattr(self, "_engine", None)
        return list(getattr(engine, "comm_records", []))

    def _checkpoint_phase(self, step: int, model_size: int) -> None:
        """Write a recovery checkpoint (engines price it; no-op without
        an engine, e.g. the event-driven async trainer)."""
        engine = getattr(self, "_engine", None)
        if engine is not None:
            engine.checkpoint_phase(model_size, step)

    def _install_recovery_costs(self, engine,
                                data: PartitionedDataset) -> None:
        """Price lineage recomputation of each executor's cached partition
        (one sparse pass) for the engine's crash-recovery accounting."""
        engine.set_recovery_costs([
            self.cluster.compute.sparse_pass_seconds(
                part.nnz, self.cluster.executors[i])
            for i, part in enumerate(data.partitions)])

    # ------------------------------------------------------------------
    def _worker_rngs(self, num_workers: int) -> list[np.random.Generator]:
        """Independent, reproducible per-worker RNG streams."""
        root = np.random.SeedSequence(self.config.seed)
        return [np.random.default_rng(s) for s in root.spawn(num_workers)]

    def _batch_size(self, partition_rows: int) -> int:
        """Mini-batch rows for a partition under ``batch_fraction``."""
        return max(1, int(round(self.config.batch_fraction * partition_rows)))

    def _compute_seconds(self, nnz_processed: int, dense_ops: int,
                         executor_index: int) -> float:
        """Price local work on executor ``executor_index``."""
        node = self.cluster.executors[executor_index]
        cm = self.cluster.compute
        return (cm.sparse_pass_seconds(nnz_processed, node)
                + cm.dense_op_seconds(dense_ops, node))

    # ------------------------------------------------------------------
    def fit(self, dataset: SparseDataset,
            partition_strategy: str = "random",
            initial_weights: np.ndarray | None = None) -> TrainResult:
        """Train on ``dataset``; returns model + history + trace.

        ``initial_weights`` warm-starts from a previous model (e.g.
        ``previous_result.model.weights``) instead of the zero vector —
        Algorithm 2's ``InitialModel(w0)`` with a non-trivial ``w0``.
        """
        data = PartitionedDataset.load(dataset, self.cluster,
                                       strategy=partition_strategy,
                                       seed=self.config.seed)
        # Build the local-solve execution pool for this run.  Partitions
        # are installed exactly once (pickle-once for process pools); the
        # pool is torn down in the ``finally`` below, leaving a serial
        # stub so post-fit introspection keeps working.
        self._backend = make_backend(self.config.backend)
        self._backend.profiler = self.profiler
        self._backend.install_partitions(data.partitions)
        try:
            return self._fit_prepared(dataset, data, initial_weights)
        finally:
            self._backend.close()
            stub = SerialBackend()
            stub.install_partitions(data.partitions)
            self._backend = stub

    def _fit_prepared(self, dataset: SparseDataset, data: PartitionedDataset,
                      initial_weights: np.ndarray | None) -> TrainResult:
        """The training loop proper (backend lifecycle handled by fit)."""
        self._prepare(data)

        if initial_weights is None:
            w = np.zeros(dataset.n_features)
        else:
            if initial_weights.shape != (dataset.n_features,):
                raise ValueError(
                    f"initial_weights has shape {initial_weights.shape}, "
                    f"expected ({dataset.n_features},)")
            w = np.array(initial_weights, dtype=np.float64, copy=True)
        # Under --sanitize the model handed to workers is read-only; any
        # in-place mutation of broadcast state raises at the faulting
        # line instead of silently coupling workers.
        w = self.sanitizer.freeze(w)
        self.sanitizer.record_barrier(0, w)
        self._on_initial_model(w, data)
        history = TrainingHistory(system=self.system, dataset=dataset.name,
                                  detail=self.objective.describe())
        with self.profiler.phase("evaluate"):
            objective_value = self.objective.value(w, dataset.X, dataset.y)
        history.record(0, self._clock(), objective_value)

        converged = False
        diverged = False
        for step in range(1, self.config.max_steps + 1):
            with self.profiler.phase("superstep"):
                w = self._run_step(step, w, data)
            w = self.sanitizer.freeze(w)
            self.sanitizer.record_barrier(step, w)
            is_last = step == self.config.max_steps
            if (self.recovery.writes_checkpoints and not is_last
                    and step % self.recovery.checkpoint_every == 0):
                self._checkpoint_phase(step, dataset.n_features)
            if step % self.config.eval_every and not is_last:
                continue
            with self.profiler.phase("evaluate"):
                objective_value = self.objective.value(w, dataset.X,
                                                       dataset.y)
            history.record(step, self._clock(), objective_value)
            if (not math.isfinite(objective_value)
                    or objective_value > self.config.divergence_limit):
                diverged = True
                break
            threshold = self.config.stop_threshold
            if threshold is not None and objective_value <= threshold:
                converged = True
                break

        model = GLMModel(weights=w, objective=self.objective)
        return TrainResult(model=model, history=history, trace=self._trace(),
                           converged=converged, diverged=diverged,
                           failures=tuple(self._failures()),
                           comm=tuple(self._comm_records()))
