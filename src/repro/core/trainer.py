"""Distributed trainer base class and result container.

Every system in the study — MLlib, MLlib + model averaging, MLlib*,
Petuum, Petuum* and Angel — extends :class:`DistributedTrainer`.  The base
class owns the training loop skeleton shared by Algorithm 2 and
Algorithm 3:

1. partition the data across workers (``LoadData``),
2. initialize the global model (``InitialModel``),
3. repeat communication steps until convergence or the step cap,
4. after every step, evaluate the full-dataset objective (the paper's
   y-axis) against the *simulated* clock (the paper's x-axis).

Subclasses implement :meth:`_prepare` (engine/state construction) and
:meth:`_run_step` (one communication step: local work + communication,
returning the new global model).  Objective evaluation is monitoring and
costs no simulated time.

The loop itself lives in :class:`TrainingSession`, a resumable stepwise
view of a run: :meth:`DistributedTrainer.open_session` builds one,
``run_step()`` advances it a single superstep, and :meth:`fit` is just a
session drained to completion — so a run paused at a barrier and resumed
(what the :mod:`repro.sched` cluster scheduler does to interleave jobs
and change executor counts) executes the exact same operations as an
uninterrupted ``fit``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..analysis.sanitizer import BarrierSanitizer
from ..cluster import ClusterSpec, Trace
from ..cluster.faults import (FailureRecord, RecoveryPolicy,
                              build_failure_model)
from ..data import SparseDataset
from ..engine import CommRecord, PartitionedDataset
from ..engine.backend import ExecutionBackend, SerialBackend, make_backend
from ..glm import GLMModel, Objective, get_schedule
from ..metrics import TrainingHistory
from ..perf.profiler import NullProfiler, PhaseProfiler
from .config import TrainerConfig

__all__ = ["GapRecord", "TrainResult", "TrainingSession",
           "DistributedTrainer"]


@dataclass(frozen=True)
class GapRecord:
    """One certified duality-gap evaluation (dual local solvers only).

    ``gap = primal - dual`` upper-bounds the primal suboptimality
    ``P(w) - P(w*)`` by weak duality — a convergence *certificate* the
    run carries alongside the training history's objective values.
    Monitoring only: evaluated in the parent at the history's cadence,
    costing no simulated time.
    """

    step: int
    seconds: float
    gap: float
    primal: float
    dual: float


@dataclass(frozen=True)
class TrainResult:
    """Everything a training run produced."""

    model: GLMModel
    history: TrainingHistory
    trace: Trace
    converged: bool
    diverged: bool
    #: Injected executor crashes the run recovered from (empty unless
    #: fault injection was configured).
    failures: tuple[FailureRecord, ...] = ()
    #: Wire accounting, one record per priced communication phase (empty
    #: for trainers without a comm-recording engine).
    comm: tuple[CommRecord, ...] = ()
    #: Certified duality-gap report, one record per evaluated step
    #: (empty unless a dual local solver — cocoa/cocoa+ — ran).
    duality_gaps: tuple[GapRecord, ...] = ()

    @property
    def final_objective(self) -> float:
        return self.history.final_objective

    @property
    def recovery_seconds(self) -> float:
        """Total failure-recovery downtime across all nodes."""
        return self.trace.recovery_seconds()

    @property
    def comm_seconds(self) -> float:
        """Total priced communication seconds across recorded phases."""
        return sum(r.seconds for r in self.comm)

    @property
    def comm_compression(self) -> float:
        """Overall dense-over-wire volume ratio of the run."""
        wire = sum(r.wire_values for r in self.comm)
        if wire <= 0:
            return 1.0
        return sum(r.dense_values for r in self.comm) / wire


class DistributedTrainer:
    """Template for distributed MGD systems.

    Parameters
    ----------
    objective:
        The GLM objective (loss + regularizer) to minimize.
    cluster:
        Simulated cluster the system runs on.
    config:
        Hyperparameters and run control.
    """

    #: Human-readable system name, overridden by subclasses.
    system = "abstract"

    #: Whether the trainer implements the dual local-solver family
    #: (``config.local_solver`` in ``{"cocoa", "cocoa+"}``).  SendModel
    #: trainers override this; requesting a dual solver from any other
    #: system fails fast in :meth:`open_session`.
    supports_dual_solver = False

    def __init__(self, objective: Objective, cluster: ClusterSpec,
                 config: TrainerConfig | None = None) -> None:
        self.objective = objective
        self.cluster = cluster
        self.config = config if config is not None else TrainerConfig()
        self.schedule = get_schedule(self.config.lr_schedule,
                                     self.config.learning_rate)
        #: Fault-injection model and recovery policy derived from the
        #: config; engines consult them so failures stretch the simulated
        #: clock without ever touching the numerics.  Validated against
        #: the cluster size here: a scripted crash aimed at an executor
        #: the cluster does not have raises instead of never firing.
        self.faults = build_failure_model(
            self.config.failure_rate, self.config.failure_schedule,
            self.config.seed, num_executors=cluster.num_executors)
        self.recovery = RecoveryPolicy(
            max_retries=self.config.max_retries,
            strategy=self.config.recovery_strategy,
            checkpoint_every=self.config.checkpoint_every,
            restart_seconds=self.config.restart_seconds)
        #: Barrier sanitizer (``--sanitize``): freezes the model at every
        #: superstep boundary and logs barrier digests.  Disabled (all
        #: hooks no-ops) unless ``config.sanitize`` is set.
        self.sanitizer = BarrierSanitizer(enabled=self.config.sanitize)
        #: Execution backend for the per-worker local solves
        #: (``config.backend``).  A fresh pool is built per ``fit`` and
        #: torn down when it returns; between fits a serial stub keeps
        #: direct ``_run_step`` calls working.  Purely a wall-clock
        #: choice — results are bit-identical across backends.
        self._backend: ExecutionBackend = SerialBackend()
        #: Wall-clock profiler hook (:mod:`repro.perf.profiler`).  The
        #: default records nothing; install a ``PhaseProfiler`` before
        #: ``fit`` to collect ``superstep`` / ``evaluate`` /
        #: ``local_solve`` phase timings.
        self.profiler: PhaseProfiler = NullProfiler()
        #: Per-worker dual blocks (one array of dual variables per
        #: partition row) when a dual local solver is active; ``None``
        #: under the primal default.  Round-tripped through the task
        #: functions exactly like the RNG streams, so dual state lives
        #: in the parent and runs stay bit-identical across backends.
        self._duals: list[np.ndarray] | None = None
        self._dual_spec = None
        #: Measured transport accounting from the last closed session
        #: (``socket`` backend only; ``None`` otherwise).  Harvested by
        #: ``TrainingSession.close`` before the backend is torn down —
        #: this is what ``repro perf --validate-network`` compares
        #: against the simulated :class:`NetworkModel` pricing.
        self.last_wire_stats: dict | None = None

    # ------------------------------------------------------------------
    # subclass contract
    # ------------------------------------------------------------------
    def _prepare(self, data: PartitionedDataset) -> None:
        """Build engine/state for a run.  Called once per ``fit``."""
        raise NotImplementedError

    def _run_step(self, step: int, w: np.ndarray,
                  data: PartitionedDataset) -> np.ndarray:
        """Execute communication step ``step`` (1-based); return new model."""
        raise NotImplementedError

    def _clock(self) -> float:
        """Current simulated time; subclasses expose their engine's clock."""
        raise NotImplementedError

    def _trace(self) -> Trace:
        """The trace collected so far."""
        raise NotImplementedError

    def _on_initial_model(self, w: np.ndarray,
                          data: PartitionedDataset) -> None:
        """Hook invoked once with the initial model (after ``_prepare``).

        Trainers that keep internal per-worker state seeded from the
        initial model (e.g. the asynchronous trainer) override this; the
        default is a no-op because most trainers receive the model through
        ``_run_step``.
        """

    def _failures(self) -> list[FailureRecord]:
        """Crash records collected by the engine (empty without one)."""
        engine = getattr(self, "_engine", None)
        return list(getattr(engine, "failures", []))

    def _comm_records(self) -> list[CommRecord]:
        """Comm accounting collected by the engine (empty without one)."""
        engine = getattr(self, "_engine", None)
        return list(getattr(engine, "comm_records", []))

    def _checkpoint_phase(self, step: int, model_size: int) -> None:
        """Write a recovery checkpoint (engines price it; no-op without
        an engine, e.g. the event-driven async trainer)."""
        engine = getattr(self, "_engine", None)
        if engine is not None:
            engine.checkpoint_phase(model_size, step)

    def _install_recovery_costs(self, engine,
                                data: PartitionedDataset) -> None:
        """Price lineage recomputation of each executor's cached partition
        (one sparse pass) for the engine's crash-recovery accounting."""
        engine.set_recovery_costs([
            self.cluster.compute.sparse_pass_seconds(
                part.nnz, self.cluster.executors[i])
            for i, part in enumerate(data.partitions)])

    # ------------------------------------------------------------------
    def _init_dual_state(self, data: PartitionedDataset) -> None:
        """Build the run's dual state when a dual solver is configured.

        Called from dual-capable trainers' ``_prepare``: resolves the
        :class:`~repro.glm.dual.DualSolverSpec` (family defaults for
        gamma, ``sigma' = gamma * K``) and zero-initializes one dual
        block per partition.  ``alpha = 0`` is feasible for every
        conjugate, so the first certificate is valid from step 0.
        Resets to ``None`` under the primal default so a trainer reused
        across configs never reports a stale gap.
        """
        from ..glm import make_dual_spec, require_dual_capable
        if self.config.local_solver == "mgd":
            self._duals = None
            self._dual_spec = None
            return
        require_dual_capable(self.objective)
        self._dual_spec = make_dual_spec(
            self.config.local_solver, self.config.gamma,
            self.config.local_iters, data.dataset.X.shape[0],
            data.num_partitions)
        self._duals = [np.zeros(part.n_rows) for part in data.partitions]

    def _certified_gap(self, w: np.ndarray, data: PartitionedDataset,
                       ) -> tuple[float, float, float] | None:
        """``(gap, primal, dual)`` for the current iterate, or ``None``
        when no dual solver is active.  Parent-side and unpriced, so it
        is backend-invariant monitoring like the objective evaluation."""
        if self._duals is None:
            return None
        from ..glm import certified_gap
        return certified_gap(self.objective, w, data.partitions,
                             self._duals, data.dataset)

    # ------------------------------------------------------------------
    def _worker_rngs(self, num_workers: int) -> list[np.random.Generator]:
        """Independent, reproducible per-worker RNG streams."""
        root = np.random.SeedSequence(self.config.seed)
        return [np.random.default_rng(s) for s in root.spawn(num_workers)]

    def _batch_size(self, partition_rows: int) -> int:
        """Mini-batch rows for a partition under ``batch_fraction``."""
        return max(1, int(round(self.config.batch_fraction * partition_rows)))

    def _compute_seconds(self, nnz_processed: int, dense_ops: int,
                         executor_index: int) -> float:
        """Price local work on executor ``executor_index``."""
        node = self.cluster.executors[executor_index]
        cm = self.cluster.compute
        return (cm.sparse_pass_seconds(nnz_processed, node)
                + cm.dense_op_seconds(dense_ops, node))

    # ------------------------------------------------------------------
    def open_session(self, dataset: SparseDataset,
                     partition_strategy: str = "random",
                     initial_weights: np.ndarray | None = None, *,
                     start_step: int = 0,
                     history: TrainingHistory | None = None,
                     clock_offset: float = 0.0) -> "TrainingSession":
        """Partition ``dataset``, build the backend, and open a stepwise
        :class:`TrainingSession`.

        The keyword-only parameters exist for *resumed* runs (the
        :mod:`repro.sched` elastic scheduler re-opens a job at a new
        executor width from its barrier state): ``start_step`` continues
        absolute step numbering (so learning-rate schedules see the same
        step indices as an uninterrupted run), ``history`` carries the
        earlier segments' convergence points, and ``clock_offset`` is the
        simulated seconds already consumed — the fresh engine's clock is
        reported relative to it.  Defaults describe a run from scratch.
        """
        if (self.config.local_solver != "mgd"
                and not self.supports_dual_solver):
            raise ValueError(
                f"{self.system} does not support "
                f"local_solver={self.config.local_solver!r}; the dual "
                "CoCoA family is implemented for the SendModel trainers "
                "(MLlib*, MLlib+MA)")
        data = PartitionedDataset.load(dataset, self.cluster,
                                       strategy=partition_strategy,
                                       seed=self.config.seed)
        # Build the local-solve execution pool for this run.  Partitions
        # are installed exactly once (pickle-once for process pools); the
        # pool is torn down by ``TrainingSession.close``, leaving a
        # serial stub so post-fit introspection keeps working.  The
        # except path covers *every* failure from pool creation through
        # session construction — including a partial
        # ``install_partitions`` (half-started daemons, an allocated
        # shared-memory store) — so no worker processes, threads or shm
        # segments leak when opening the session raises.
        backend = make_backend(self.config.backend)
        backend.profiler = self.profiler
        try:
            backend.install_partitions(data.partitions)
            self._backend = backend
            return TrainingSession(self, dataset, data, initial_weights,
                                   start_step=start_step, history=history,
                                   clock_offset=clock_offset)
        except BaseException:
            backend.close()
            stub = SerialBackend()
            stub.install_partitions(data.partitions)
            self._backend = stub
            raise

    def fit(self, dataset: SparseDataset,
            partition_strategy: str = "random",
            initial_weights: np.ndarray | None = None) -> TrainResult:
        """Train on ``dataset``; returns model + history + trace.

        ``initial_weights`` warm-starts from a previous model (e.g.
        ``previous_result.model.weights``) instead of the zero vector —
        Algorithm 2's ``InitialModel(w0)`` with a non-trivial ``w0``.
        """
        session = self.open_session(dataset, partition_strategy,
                                    initial_weights)
        try:
            while not session.finished:
                session.run_step()
            return session.result()
        finally:
            session.close()


class TrainingSession:
    """One training run, advanced a superstep at a time.

    A session pauses at every superstep barrier: ``run_step()`` executes
    exactly one communication step (plus the checkpoint/eval bookkeeping
    the ``fit`` loop would do there) and returns.  Draining a session is
    *the* ``fit`` implementation — not a reimplementation of it — so a
    run interleaved with other jobs by the cluster scheduler performs the
    identical operation sequence, and fixed-width scheduled runs are
    bit-identical to standalone ones by construction.

    Sessions are created by :meth:`DistributedTrainer.open_session`; see
    its docstring for the resume parameters (``start_step`` / ``history``
    / ``clock_offset``).  ``close()`` tears down the execution backend;
    the owner must call it (``fit`` does so in a ``finally``).
    """

    def __init__(self, trainer: DistributedTrainer, dataset: SparseDataset,
                 data: PartitionedDataset,
                 initial_weights: np.ndarray | None, *,
                 start_step: int = 0,
                 history: TrainingHistory | None = None,
                 clock_offset: float = 0.0) -> None:
        config = trainer.config
        if not 0 <= start_step <= config.max_steps:
            raise ValueError(
                f"start_step must be in [0, max_steps={config.max_steps}]; "
                f"got {start_step}")
        if clock_offset < 0:
            raise ValueError("clock_offset must be non-negative")
        if start_step > 0 and initial_weights is None:
            raise ValueError("resuming from a nonzero step needs the "
                             "barrier weights to resume from")
        self.trainer = trainer
        self.dataset = dataset
        self.data = data
        self.clock_offset = clock_offset
        self.step = start_step
        self.converged = False
        self.diverged = False
        self._closed = False

        trainer._prepare(data)
        if initial_weights is None:
            w = np.zeros(dataset.n_features)
        else:
            if initial_weights.shape != (dataset.n_features,):
                raise ValueError(
                    f"initial_weights has shape {initial_weights.shape}, "
                    f"expected ({dataset.n_features},)")
            w = np.array(initial_weights, dtype=np.float64, copy=True)
        # Under --sanitize the model handed to workers is read-only; any
        # in-place mutation of broadcast state raises at the faulting
        # line instead of silently coupling workers.
        w = trainer.sanitizer.freeze(w)
        trainer.sanitizer.record_barrier(start_step, w)
        trainer._on_initial_model(w, data)
        self.w = w
        if history is None:
            history = TrainingHistory(system=trainer.system,
                                      dataset=dataset.name,
                                      detail=trainer.objective.describe())
        self.history = history
        #: Certified duality-gap report (dual solvers only), one
        #: :class:`GapRecord` per evaluated step.
        self.gaps: list[GapRecord] = []
        if start_step == 0:
            with trainer.profiler.phase("evaluate"):
                objective_value = trainer.objective.value(w, dataset.X,
                                                          dataset.y)
            history.record(0, self.clock(), objective_value)
            self._record_gap(0)

    def _record_gap(self, step: int) -> None:
        """Append the dual certificate at ``step`` (no-op for primal)."""
        gap_info = self.trainer._certified_gap(self.w, self.data)
        if gap_info is not None:
            gap, primal, dual = gap_info
            self.gaps.append(GapRecord(step=step, seconds=self.clock(),
                                       gap=gap, primal=primal, dual=dual))

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        """True once the step cap, convergence, or divergence is hit."""
        return (self.converged or self.diverged
                or self.step >= self.trainer.config.max_steps)

    def clock(self) -> float:
        """Job-relative simulated time (earlier segments included)."""
        return self.clock_offset + self.trainer._clock()

    def run_step(self) -> int:
        """Advance one superstep; returns the (absolute) step executed."""
        if self._closed:
            raise RuntimeError("training session is closed")
        if self.finished:
            raise RuntimeError("training session already finished")
        trainer = self.trainer
        config = trainer.config
        step = self.step + 1
        with trainer.profiler.phase("superstep"):
            w = trainer._run_step(step, self.w, self.data)
        w = trainer.sanitizer.freeze(w)
        trainer.sanitizer.record_barrier(step, w)
        self.w = w
        self.step = step
        is_last = step == config.max_steps
        if (trainer.recovery.writes_checkpoints and not is_last
                and step % trainer.recovery.checkpoint_every == 0):
            trainer._checkpoint_phase(step, self.dataset.n_features)
        if step % config.eval_every and not is_last:
            return step
        with trainer.profiler.phase("evaluate"):
            objective_value = trainer.objective.value(w, self.dataset.X,
                                                      self.dataset.y)
        self.history.record(step, self.clock(), objective_value)
        self._record_gap(step)
        if (not math.isfinite(objective_value)
                or objective_value > config.divergence_limit):
            self.diverged = True
        else:
            threshold = config.stop_threshold
            if threshold is not None and objective_value <= threshold:
                self.converged = True
        return step

    def result(self) -> TrainResult:
        """Package the session's current state as a :class:`TrainResult`."""
        trainer = self.trainer
        model = GLMModel(weights=self.w, objective=trainer.objective)
        return TrainResult(model=model, history=self.history,
                           trace=trainer._trace(),
                           converged=self.converged, diverged=self.diverged,
                           failures=tuple(trainer._failures()),
                           comm=tuple(trainer._comm_records()),
                           duality_gaps=tuple(self.gaps))

    def close(self) -> None:
        """Tear down the execution backend (idempotent)."""
        if self._closed:
            return
        self._closed = True
        trainer = self.trainer
        # Harvest measured transport accounting (socket backend) before
        # the pool disappears behind the serial stub.
        trainer.last_wire_stats = trainer._backend.wire_summary()
        trainer._backend.close()
        stub = SerialBackend()
        stub.install_partitions(self.data.partitions)
        trainer._backend = stub
