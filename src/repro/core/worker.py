"""Module-level worker task functions for the execution backends.

Each function here is one worker's share of a superstep's local-solve
phase, shaped for :mod:`repro.engine.backend`:

* **module-level and partition-first** — process pools pickle functions
  by reference and look the partition up in the pool-side store, so every
  task takes ``(partition, ...)`` and must be importable by name;
* **RNG round-trip** — tasks that draw randomness receive the worker's
  private ``Generator`` and return it; the trainer stores the returned
  generator back into ``self._rngs[i]``.  In-process backends hand back
  the same (already advanced) object; the process backend hands back a
  pickled copy whose state round-trips exactly, so RNG streams advance
  bit-identically to the serial loop no matter the backend;
* **numerics only** — simulated-seconds pricing stays in the parent
  (tasks return raw work stats), so the cost model never crosses a
  process boundary and the priced clock is backend-invariant;
* **read-only inputs** — tasks never mutate their partition or the
  broadcast model ``w``; they allocate fresh outputs.  The shared-memory
  backend relies on this: under ``shm`` both the partition's CSR arrays
  and the broadcast vector arrive as *read-only views* of shared
  segments (a violating write raises), and under ``socket`` the
  partition is a daemon-cached object reused across supersteps.

Cross-worker combining (means, reduce-scatter, server pushes) stays in
the trainers, in the serial code's float-addition order — that, plus the
ordered map, is what makes every backend bit-identical.
"""

from __future__ import annotations

import numpy as np

from ..data import Partition
from ..glm import (DualSolverSpec, LocalStats, Objective, dual_local_solve,
                   gd_step, mgd_epoch, sample_batch, sgd_epoch)
from .config import TrainerConfig
from .local import send_model_update

__all__ = ["gradient_wave_task", "send_model_task", "petuum_batch_task",
           "angel_epoch_task", "full_pass_task", "asgd_gradient_task",
           "run_dual_on_partition"]


def gradient_wave_task(part: Partition, w: np.ndarray, objective: Objective,
                       waves: int, per_task: int, rng: np.random.Generator,
                       ) -> tuple[list[np.ndarray], list[int],
                                  np.random.Generator]:
    """MLlib SendGradient: ``waves`` sequential batch gradients at ``w``."""
    task_grads: list[np.ndarray] = []
    nnz: list[int] = []
    for _ in range(waves):
        Xb, yb = sample_batch(part.X, part.y, per_task, rng)
        task_grads.append(objective.batch_loss_gradient(w, Xb, yb))
        nnz.append(int(Xb.nnz))
    return task_grads, nnz, rng


def send_model_task(part: Partition, w: np.ndarray, objective: Objective,
                    lr: float, config: TrainerConfig,
                    rng: np.random.Generator,
                    ) -> tuple[np.ndarray, LocalStats, np.random.Generator]:
    """SendModel (MLlib+MA / MLlib* / Petuum*-style): local SGD passes."""
    local_w, stats = send_model_update(objective, w, part, lr, config, rng)
    return local_w, stats, rng


def petuum_batch_task(part: Partition, w: np.ndarray, objective: Objective,
                      lr: float, batch: int, config: TrainerConfig,
                      rng: np.random.Generator,
                      ) -> tuple[np.ndarray, LocalStats,
                                 np.random.Generator]:
    """Petuum: one batch per step — GD if regularized, else parallel SGD
    inside the batch (Section III-B1)."""
    Xb, yb = sample_batch(part.X, part.y, batch, rng)
    if objective.is_regularized:
        # One GD update over the batch (dense updates kept rare).
        local_w, stats = gd_step(objective, w, Xb, yb, lr)
    else:
        # Parallel SGD inside the batch: many updates per step.
        local_w, stats = sgd_epoch(objective, w, Xb, yb, lr, rng,
                                   chunk_size=config.local_chunk_size,
                                   lazy=config.lazy_l2)
    return local_w, stats, rng


def angel_epoch_task(part: Partition, w: np.ndarray, objective: Objective,
                     lr: float, batch: int, rng: np.random.Generator,
                     ) -> tuple[np.ndarray, LocalStats,
                                np.random.Generator]:
    """Angel: one mini-batch GD pass over the whole partition per step."""
    local_w, stats = mgd_epoch(objective, w, part.X, part.y, lr, batch, rng)
    return local_w, stats, rng


def run_dual_on_partition(part: Partition, w: np.ndarray,
                          objective: Objective, spec: DualSolverSpec,
                          alpha: np.ndarray, rng: np.random.Generator,
                          ) -> tuple[np.ndarray, np.ndarray, LocalStats,
                                     np.random.Generator]:
    """CoCoA-family SendModel: ``H`` SDCA epochs over the local dual block.

    Runs the dual coordinate-ascent local solver against the broadcast
    iterate ``w`` and this worker's dual variables ``alpha`` (one per
    local row; the trainer round-trips the returned block exactly like
    the RNG).  Returns the gamma-scaled model delta — the trainers *sum*
    deltas across workers, unlike the model-averaging mean — plus the
    committed dual block, work stats and the advanced RNG.
    """
    if part.X.shape[0] == 0:
        raise ValueError(
            f"partition {part.index} is empty: the dual solver has no "
            "local dual variables to ascend on (an empty block would "
            "silently contribute a zero update)")
    delta_w, new_alpha, stats = dual_local_solve(
        objective, w, part.X, part.y, alpha, spec, rng)
    return delta_w, new_alpha, stats, rng


def full_pass_task(part: Partition, w: np.ndarray,
                   objective: Objective) -> tuple[float, np.ndarray]:
    """spark.ml: one partition's unweighted full-batch (loss, gradient).

    The parent applies the ``n_rows / total_rows`` weights and accumulates
    in partition order — the exact float-op sequence of the serial loop.
    """
    fval = objective.loss_value(w, part.X, part.y)
    grad = objective.batch_loss_gradient(w, part.X, part.y)
    return fval, grad


def asgd_gradient_task(part: Partition, model: np.ndarray,
                       objective: Objective, batch: int,
                       rng: np.random.Generator,
                       ) -> tuple[np.ndarray, int, np.random.Generator]:
    """ASGD: one worker's batch gradient at its pulled model snapshot."""
    Xb, yb = sample_batch(part.X, part.y, batch, rng)
    grad = objective.batch_loss_gradient(model, Xb, yb)
    return grad, int(Xb.nnz), rng
