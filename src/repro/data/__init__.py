"""Datasets: synthetic generators, paper-analog catalog, LIBSVM IO."""

from .catalog import (CATALOG, PAPER_TABLE1, DatasetCard, avazu_like,
                      dataset_names, kdd12_like, kddb_like, load, url_like,
                      wx_like)
from .libsvm import read_libsvm, write_libsvm
from .partition import (PARTITION_STRATEGIES, Partition, partition_rows,
                        train_test_split)
from .synthetic import SparseDataset, SyntheticSpec, generate

__all__ = [
    "SparseDataset", "SyntheticSpec", "generate",
    "DatasetCard", "CATALOG", "PAPER_TABLE1", "dataset_names", "load",
    "avazu_like", "url_like", "kddb_like", "kdd12_like", "wx_like",
    "read_libsvm", "write_libsvm",
    "Partition", "partition_rows", "train_test_split",
    "PARTITION_STRATEGIES",
]
