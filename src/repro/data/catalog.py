"""Scaled-down analogs of the paper's five datasets (Table I).

Paper's Table I:

    Dataset  #Instances    #Features    Size
    avazu    40,428,967     1,000,000   7.4 GB
    url       2,396,130     3,231,961   2.1 GB
    kddb     19,264,097    29,890,095   4.8 GB
    kdd12   149,639,105    54,686,452   21 GB
    WX      231,937,380    51,121,518   434 GB

The analogs shrink both axes by a per-dataset factor while preserving:

* the **determined / underdetermined** character (avazu, kdd12, WX have
  n >> d; url and kddb have d > n), and
* the **relative model sizes** (kdd12's model is ~54x avazu's in the paper;
  the analogs keep roughly that ratio), which drives the communication-cost
  differences Figures 4-6 discuss.

``scale_bytes`` on each dataset carries the paper's on-disk size so that
benches can report the simulated scale they stand in for.
"""

from __future__ import annotations

from dataclasses import dataclass

from .synthetic import SparseDataset, SyntheticSpec, generate

__all__ = [
    "DatasetCard", "PAPER_TABLE1", "CATALOG",
    "avazu_like", "url_like", "kddb_like", "kdd12_like", "wx_like",
    "load", "dataset_names",
]


@dataclass(frozen=True)
class DatasetCard:
    """Pairing of the paper's dataset statistics with our analog spec."""

    name: str
    paper_instances: int
    paper_features: int
    paper_size_gb: float
    spec: SyntheticSpec

    @property
    def is_underdetermined(self) -> bool:
        return self.spec.is_underdetermined

    def build(self, row_scale: float = 1.0) -> SparseDataset:
        """Generate the analog; ``row_scale`` multiplies the row count.

        Scaling rows (not features) preserves the model size — and with
        it every communication cost — while letting users trade compute
        for statistical fidelity.  Scaling below ~0.01 can flip an
        underdetermined analog's conditioning; a guard prevents that.
        """
        if row_scale <= 0:
            raise ValueError("row_scale must be positive")
        spec = self.spec
        if row_scale != 1.0:
            n_rows = max(1, int(round(spec.n_rows * row_scale)))
            scaled = SyntheticSpec(
                n_rows=n_rows, n_features=spec.n_features,
                nnz_per_row=spec.nnz_per_row, noise=spec.noise,
                feature_skew=spec.feature_skew,
                separator_density=spec.separator_density, seed=spec.seed)
            if scaled.is_underdetermined != spec.is_underdetermined:
                raise ValueError(
                    f"row_scale={row_scale} changes {self.name}'s "
                    "conditioning (determined vs underdetermined); pick a "
                    "scale that preserves it")
            spec = scaled
        data = generate(spec, name=self.name)
        return SparseDataset(name=data.name, X=data.X, y=data.y,
                             scale_bytes=self.paper_size_gb * 1e9)


# Paper statistics, kept verbatim for Table I reporting.
PAPER_TABLE1: dict[str, tuple[int, int, float]] = {
    "avazu": (40_428_967, 1_000_000, 7.4),
    "url": (2_396_130, 3_231_961, 2.1),
    "kddb": (19_264_097, 29_890_095, 4.8),
    "kdd12": (149_639_105, 54_686_452, 21.0),
    "WX": (231_937_380, 51_121_518, 434.0),
}


def _card(name: str, n_rows: int, n_features: int, nnz_per_row: float,
          noise: float, seed: int) -> DatasetCard:
    paper_n, paper_d, paper_gb = PAPER_TABLE1[name]
    return DatasetCard(
        name=name,
        paper_instances=paper_n,
        paper_features=paper_d,
        paper_size_gb=paper_gb,
        spec=SyntheticSpec(n_rows=n_rows, n_features=n_features,
                           nnz_per_row=nnz_per_row, noise=noise, seed=seed),
    )


# Determined analogs: n >> d.  Underdetermined analogs: d > n.
# Feature counts keep the paper's rough ratios (url ~3.2x avazu,
# kddb ~30x, kdd12 ~55x, WX ~51x).
CATALOG: dict[str, DatasetCard] = {
    "avazu": _card("avazu", n_rows=40_000, n_features=1_000,
                   nnz_per_row=15.0, noise=0.05, seed=101),
    "url": _card("url", n_rows=2_400, n_features=3_200,
                 nnz_per_row=40.0, noise=0.02, seed=102),
    "kddb": _card("kddb", n_rows=19_000, n_features=30_000,
                  nnz_per_row=30.0, noise=0.02, seed=103),
    "kdd12": _card("kdd12", n_rows=150_000, n_features=55_000,
                   nnz_per_row=12.0, noise=0.05, seed=104),
    "WX": _card("WX", n_rows=230_000, n_features=51_000,
                nnz_per_row=12.0, noise=0.05, seed=105),
}


def dataset_names() -> list[str]:
    """Names of the five analog datasets, in Table I order."""
    return list(CATALOG)


def load(name: str, row_scale: float = 1.0) -> SparseDataset:
    """Build the analog dataset for ``name`` (deterministic).

    ``row_scale`` grows or shrinks the row count (model size unchanged);
    see :meth:`DatasetCard.build`.
    """
    try:
        card = CATALOG[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; "
                       f"choose from {dataset_names()}") from None
    return card.build(row_scale=row_scale)


def avazu_like() -> SparseDataset:
    """Determined, low-dimensional CTR-style data (paper: avazu)."""
    return load("avazu")


def url_like() -> SparseDataset:
    """Underdetermined URL-reputation-style data (paper: url)."""
    return load("url")


def kddb_like() -> SparseDataset:
    """Underdetermined, high-dimensional data (paper: kddb)."""
    return load("kddb")


def kdd12_like() -> SparseDataset:
    """Determined, high-dimensional data (paper: kdd12)."""
    return load("kdd12")


def wx_like() -> SparseDataset:
    """Tencent WX production analog: largest n and large d."""
    return load("WX")
