"""LIBSVM text format reader/writer.

The paper's public datasets ship in LIBSVM format (one example per line:
``<label> <index>:<value> ...``, indices 1-based).  Users who have the real
avazu/url/kddb/kdd12 files can load them through :func:`read_libsvm` and run
every trainer and bench on them unchanged; the test-suite exercises the
round-trip on synthetic data.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from .synthetic import SparseDataset

__all__ = ["read_libsvm", "write_libsvm"]


def _normalize_label(raw: str) -> float:
    """Map common LIBSVM label encodings onto {-1, +1}."""
    value = float(raw)
    if value in (1.0, -1.0):
        return value
    if value == 0.0:
        return -1.0
    raise ValueError(f"cannot interpret label {raw!r} as binary")


def read_libsvm(path: str | Path, n_features: int | None = None,
                name: str | None = None) -> SparseDataset:
    """Parse a LIBSVM file into a :class:`SparseDataset`.

    Parameters
    ----------
    path:
        File to read.
    n_features:
        Force the feature-space width; inferred from the data when omitted.
    name:
        Dataset name; defaults to the file stem.
    """
    path = Path(path)
    labels: list[float] = []
    indptr: list[int] = [0]
    indices: list[int] = []
    values: list[float] = []

    with path.open("r", encoding="ascii") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            labels.append(_normalize_label(parts[0]))
            for token in parts[1:]:
                try:
                    idx_text, val_text = token.split(":", 1)
                    idx = int(idx_text) - 1  # LIBSVM is 1-based
                    val = float(val_text)
                except ValueError:
                    raise ValueError(
                        f"{path}:{line_no}: malformed feature {token!r}"
                    ) from None
                if idx < 0:
                    raise ValueError(
                        f"{path}:{line_no}: feature index must be >= 1")
                indices.append(idx)
                values.append(val)
            indptr.append(len(indices))

    if not labels:
        raise ValueError(f"{path}: no examples found")

    width = n_features
    if width is None:
        width = (max(indices) + 1) if indices else 1
    elif indices and max(indices) >= width:
        raise ValueError(
            f"{path}: feature index {max(indices) + 1} exceeds "
            f"n_features={width}")

    X = sp.csr_matrix(
        (np.asarray(values, dtype=np.float64),
         np.asarray(indices, dtype=np.int64),
         np.asarray(indptr, dtype=np.int64)),
        shape=(len(labels), width),
    )
    y = np.asarray(labels, dtype=np.float64)
    return SparseDataset(name=name or path.stem, X=X, y=y)


def write_libsvm(dataset: SparseDataset, path: str | Path) -> None:
    """Serialize a dataset to LIBSVM text (1-based indices)."""
    path = Path(path)
    X = dataset.X.tocsr()
    with path.open("w", encoding="ascii") as handle:
        for row in range(dataset.n_rows):
            buf = io.StringIO()
            raw = float(dataset.y[row])
            if raw not in (-1.0, 1.0):
                raise ValueError(
                    f"row {row}: label {raw!r} is not in {{-1, +1}}; "
                    "refusing to truncate it (the written file would not "
                    "round-trip)")
            label = int(raw)
            buf.write(f"{label:+d}")
            start, end = X.indptr[row], X.indptr[row + 1]
            for idx, val in zip(X.indices[start:end], X.data[start:end]):
                buf.write(f" {idx + 1}:{val:.17g}")
            buf.write("\n")
            handle.write(buf.getvalue())
