"""Row partitioners: splitting a dataset across workers.

The generic architecture (Algorithm 2) starts with the master issuing
``LoadData()`` so every worker holds one partition.  Spark's default is a
hash/contiguous split of the input file; the paper additionally notes
(Section IV footnote 4) that data and model are partitioned *independently*,
which is why MLlib* needs its Reduce-Scatter phase.

Partitioners return a list of :class:`Partition`, each a row-slice view of
the parent dataset (CSR slicing keeps this cheap).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .synthetic import SparseDataset

__all__ = ["Partition", "partition_rows", "train_test_split",
           "PARTITION_STRATEGIES"]

PARTITION_STRATEGIES = ("contiguous", "round_robin", "random", "skewed")


@dataclass(frozen=True)
class Partition:
    """One worker's slice of the training data."""

    index: int
    X: sp.csr_matrix
    y: np.ndarray

    def __post_init__(self) -> None:
        if self.X.shape[0] != self.y.shape[0]:
            raise ValueError("partition X and y row counts differ")

    @property
    def n_rows(self) -> int:
        return int(self.X.shape[0])

    @property
    def nnz(self) -> int:
        return int(self.X.nnz)


def _row_assignment(n_rows: int, n_partitions: int, strategy: str,
                    seed: int) -> list[np.ndarray]:
    if strategy == "contiguous":
        return [np.asarray(block, dtype=np.int64)
                for block in np.array_split(np.arange(n_rows), n_partitions)]
    if strategy == "round_robin":
        return [np.arange(start, n_rows, n_partitions, dtype=np.int64)
                for start in range(n_partitions)]
    if strategy == "random":
        rng = np.random.default_rng(seed)
        order = rng.permutation(n_rows)
        return [np.sort(np.asarray(block, dtype=np.int64))
                for block in np.array_split(order, n_partitions)]
    if strategy == "skewed":
        # Geometric load imbalance (each partition ~2/3 the previous one),
        # the data-skew scenario of Section IV's footnote 4.  Rows are
        # still shuffled so the *distributions* stay IID — only the
        # partition sizes are unbalanced.
        rng = np.random.default_rng(seed)
        order = rng.permutation(n_rows)
        raw = np.power(2.0 / 3.0, np.arange(n_partitions))
        sizes = np.maximum(1, np.floor(raw / raw.sum() * n_rows)).astype(int)
        # Distribute rounding leftovers to the largest partition.
        sizes[0] += n_rows - int(sizes.sum())
        if sizes[0] < 1:
            raise ValueError("skew left an empty partition; "
                             "use fewer partitions")
        bounds = np.concatenate([[0], np.cumsum(sizes)])
        return [np.sort(order[bounds[i]:bounds[i + 1]].astype(np.int64))
                for i in range(n_partitions)]
    raise ValueError(f"unknown partition strategy {strategy!r}; "
                     f"expected one of {PARTITION_STRATEGIES}")


def partition_rows(dataset: SparseDataset, n_partitions: int,
                   strategy: str = "random", seed: int = 0) -> list[Partition]:
    """Split ``dataset`` into ``n_partitions`` row partitions.

    ``random`` (the default) mimics a shuffled distributed load and keeps
    label/feature distribution roughly balanced across workers — the
    assumption behind model averaging's convergence.
    """
    if n_partitions < 1:
        raise ValueError("need at least one partition")
    if n_partitions > dataset.n_rows:
        raise ValueError(
            f"cannot split {dataset.n_rows} rows into {n_partitions} "
            "non-empty partitions")
    blocks = _row_assignment(dataset.n_rows, n_partitions, strategy, seed)
    return [Partition(index=i, X=dataset.X[rows], y=dataset.y[rows])
            for i, rows in enumerate(blocks)]


def train_test_split(dataset: SparseDataset, test_fraction: float = 0.2,
                     seed: int = 0) -> tuple[SparseDataset, SparseDataset]:
    """Random row split into train and held-out test datasets."""
    if not 0 < test_fraction < 1:
        raise ValueError("test_fraction must be in (0, 1)")
    n_test = int(round(test_fraction * dataset.n_rows))
    if n_test == 0 or n_test == dataset.n_rows:
        raise ValueError(
            f"test_fraction {test_fraction} leaves an empty split for "
            f"{dataset.n_rows} rows")
    rng = np.random.default_rng(seed)
    order = rng.permutation(dataset.n_rows)
    test_rows = np.sort(order[:n_test])
    train_rows = np.sort(order[n_test:])
    train = SparseDataset(name=f"{dataset.name}-train",
                          X=dataset.X[train_rows], y=dataset.y[train_rows],
                          scale_bytes=dataset.scale_bytes)
    test = SparseDataset(name=f"{dataset.name}-test",
                         X=dataset.X[test_rows], y=dataset.y[test_rows],
                         scale_bytes=0.0)
    return train, test
