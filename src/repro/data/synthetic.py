"""Synthetic sparse binary-classification data.

The paper's public datasets (avazu, url, kddb, kdd12) are large sparse
LIBSVM files; the Tencent WX dataset is proprietary.  Neither can be
downloaded in this environment, so we generate synthetic analogs that
preserve the two traits the paper's analysis hinges on:

* **dimensionality / sparsity** — number of features ``d`` and average
  nonzeros per row control model size (communication volume) and per-pass
  compute cost;
* **conditioning** — *determined* problems (``n >> d``, like avazu and
  kdd12) versus *underdetermined* problems (``d > n``, like url and kddb).
  Section V-B shows MLlib fails to converge without regularization exactly
  on the underdetermined datasets.

Generation recipe: draw a sparse ground-truth separator ``w*``; draw rows
with power-law-ish feature popularity (a hallmark of one-hot CTR data);
label ``y = sign(x . w*)`` with optional flip noise.  Labels are in
{-1, +1} as expected by hinge/logistic losses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

__all__ = ["SyntheticSpec", "SparseDataset", "generate"]


@dataclass(frozen=True)
class SyntheticSpec:
    """Recipe for one synthetic dataset.

    Parameters
    ----------
    n_rows, n_features:
        Shape of the design matrix.
    nnz_per_row:
        Average stored nonzeros per example.
    noise:
        Probability that an example's label is flipped.
    feature_skew:
        Exponent of the Zipf-like feature-popularity distribution; 0 gives
        uniform features, larger values concentrate mass on few features
        (CTR-style one-hot data).
    separator_density:
        Fraction of features with nonzero ground-truth weight.
    seed:
        RNG seed; generation is fully deterministic given the spec.
    """

    n_rows: int
    n_features: int
    nnz_per_row: float = 20.0
    noise: float = 0.02
    feature_skew: float = 1.1
    separator_density: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_rows < 1 or self.n_features < 1:
            raise ValueError("dataset must have at least one row and feature")
        if not 0 <= self.noise < 0.5:
            raise ValueError("noise must be in [0, 0.5)")
        if self.nnz_per_row <= 0:
            raise ValueError("nnz_per_row must be positive")
        if not 0 < self.separator_density <= 1:
            raise ValueError("separator_density must be in (0, 1]")

    @property
    def is_underdetermined(self) -> bool:
        """True when there are more features than examples (url/kddb style)."""
        return self.n_features > self.n_rows


@dataclass(frozen=True)
class SparseDataset:
    """An immutable sparse design matrix with {-1,+1} labels.

    ``X`` is CSR so per-row and per-batch slicing used by the local solvers
    is cheap.  ``scale_bytes`` carries the *simulated* on-disk size: the
    synthetic analog is laptop-scale, but cost models may want the size the
    paper's dataset would have had (Table I).
    """

    name: str
    X: sp.csr_matrix
    y: np.ndarray
    scale_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.X.shape[0] != self.y.shape[0]:
            raise ValueError("X and y row counts differ")
        labels = np.unique(self.y)
        if not np.all(np.isin(labels, (-1.0, 1.0))):
            raise ValueError("labels must be in {-1, +1}")

    @property
    def n_rows(self) -> int:
        return int(self.X.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.X.shape[1])

    @property
    def nnz(self) -> int:
        return int(self.X.nnz)

    def describe(self) -> dict[str, float]:
        """Summary statistics (Table I style)."""
        return {
            "instances": float(self.n_rows),
            "features": float(self.n_features),
            "nnz": float(self.nnz),
            "nnz_per_row": self.nnz / max(1, self.n_rows),
            "positive_fraction": float(np.mean(self.y > 0)),
        }


def _feature_probabilities(n_features: int, skew: float) -> np.ndarray:
    """Zipf-like feature popularity; uniform when skew == 0."""
    ranks = np.arange(1, n_features + 1, dtype=np.float64)
    weights = ranks ** (-skew) if skew > 0 else np.ones_like(ranks)
    return weights / weights.sum()


def generate(spec: SyntheticSpec, name: str | None = None) -> SparseDataset:
    """Generate a dataset from a spec.  Deterministic given ``spec.seed``."""
    rng = np.random.default_rng(spec.seed)
    n, d = spec.n_rows, spec.n_features

    # Sparse ground-truth separator.
    n_active = max(1, int(round(spec.separator_density * d)))
    active = rng.choice(d, size=n_active, replace=False)
    w_star = np.zeros(d)
    w_star[active] = rng.normal(0.0, 1.0, size=n_active)

    # Per-row nonzero counts (at least 1).
    counts = rng.poisson(spec.nnz_per_row, size=n)
    counts = np.maximum(counts, 1)
    counts = np.minimum(counts, d)
    total = int(counts.sum())

    probs = _feature_probabilities(d, spec.feature_skew)
    # Draw all column indices at once; duplicates within a row are summed by
    # the COO->CSR conversion, which is fine for count-style features.
    cols = rng.choice(d, size=total, p=probs)
    rows = np.repeat(np.arange(n), counts)
    vals = np.abs(rng.normal(1.0, 0.25, size=total))

    X = sp.coo_matrix((vals, (rows, cols)), shape=(n, d)).tocsr()
    X.sum_duplicates()

    margins = X @ w_star
    y = np.where(margins >= 0, 1.0, -1.0)
    flips = rng.random(n) < spec.noise
    y[flips] *= -1.0

    return SparseDataset(name=name or "synthetic", X=X, y=y)
