"""Spark-like BSP execution engine: RDDs, driver, aggregation, shuffle."""

from .aggregation import TreeAggregateModel, TreeAggregateTiming
from .backend import (BACKENDS, ExecutionBackend, ProcessBackend,
                      SerialBackend, ShmBackend, SocketBackend,
                      ThreadBackend, make_backend)
from .broadcast import BroadcastModel
from .dag import MiniRdd, RddContext
from .driver import DRIVER_LABEL, BspEngine, CommRecord, executor_label
from .rdd import PartitionedDataset
from .shuffle import ShuffleModel, exchange

__all__ = [
    "BspEngine", "CommRecord", "DRIVER_LABEL", "executor_label",
    "PartitionedDataset",
    "BACKENDS", "ExecutionBackend", "SerialBackend", "ThreadBackend",
    "ProcessBackend", "ShmBackend", "SocketBackend", "make_backend",
    "TreeAggregateModel", "TreeAggregateTiming",
    "BroadcastModel",
    "ShuffleModel", "exchange",
    "RddContext", "MiniRdd",
]
