"""MLlib's ``treeAggregate``: hierarchical gradient/model aggregation.

MLlib alleviates (but does not remove) the driver bottleneck by aggregating
through intermediate executors: with ``k`` executors and depth 2, roughly
``sqrt(k)`` executors first combine the vectors of their group, then the
driver combines the ``sqrt(k)`` partial aggregates (Figure 2(a)).

:class:`TreeAggregateModel` prices the two levels under the alpha-beta
network model.  The receiving node of each level pays serialized ingress
(one message after another) plus the dense vector additions — this is
bottleneck B2 made quantitative.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..cluster import ClusterSpec

if TYPE_CHECKING:  # avoid a runtime engine -> collectives import cycle
    from ..collectives.sparse import TreeWire

__all__ = ["TreeAggregateModel", "TreeAggregateTiming"]


@dataclass(frozen=True)
class TreeAggregateTiming:
    """Timing breakdown of one treeAggregate call.

    ``groups`` maps each aggregator's executor index to the number of
    vectors it combines (including its own).
    """

    aggregator_seconds: float
    driver_seconds: float
    groups: dict[int, int]
    #: Serialized network ingress on the critical path: the busiest
    #: aggregator's fan-in plus the driver's fan-in (no compute).  This is
    #: the communication component the sparse wire format shrinks.
    ingress_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.aggregator_seconds + self.driver_seconds


@dataclass(frozen=True)
class TreeAggregateModel:
    """Cost model for hierarchical aggregation of size-``m`` vectors.

    Parameters
    ----------
    depth:
        Aggregation depth.  ``depth=1`` means every executor sends straight
        to the driver (flat aggregation, the pre-treeAggregate behaviour);
        ``depth=2`` is MLlib's default hierarchical scheme.
    """

    depth: int = 2

    def __post_init__(self) -> None:
        if self.depth not in (1, 2):
            raise ValueError("supported depths are 1 (flat) and 2 (MLlib)")

    def num_aggregators(self, k: int) -> int:
        """Number of intermediate aggregators for ``k`` executors."""
        if k < 1:
            raise ValueError("need at least one executor")
        if self.depth == 1:
            return 0
        return min(k, max(1, math.isqrt(k)))

    def plan(self, k: int) -> dict[int, int]:
        """Assign executors to aggregator groups.

        Returns ``{aggregator_executor_index: group_size}``; group members
        are assigned round-robin so sizes differ by at most one.  With
        depth 1 the dict is empty (everyone sends to the driver).
        """
        a = self.num_aggregators(k)
        if a == 0:
            return {}
        sizes = {i: 0 for i in range(a)}
        for executor in range(k):
            sizes[executor % a] += 1
        return sizes

    def timing(self, cluster: ClusterSpec, model_size: int,
               messages_per_executor: int = 1,
               wire: "TreeWire | None" = None) -> TreeAggregateTiming:
        """Price one aggregation of size-``m`` vectors to the driver.

        ``messages_per_executor`` > 1 models multiple waves of tasks per
        executor (Section V-C): every task ships its own full-size vector
        into the aggregation, multiplying level-1 traffic.

        ``wire`` (a :class:`~repro.collectives.sparse.TreeWire`) replaces
        the dense ``model_size`` message pricing with per-message sparse
        wire sizes: leaf messages carry each task's gradient support,
        aggregator partials carry their group's union support.  The dense
        vector additions are unchanged — sparsity changes what moves on
        the wire, never the arithmetic being priced.
        """
        if messages_per_executor < 1:
            raise ValueError("messages_per_executor must be at least 1")
        k = cluster.num_executors
        net = cluster.network
        compute = cluster.compute
        groups = self.plan(k)
        mpe = messages_per_executor
        if wire is not None:
            if len(wire.leaf_values) != k:
                raise ValueError(
                    f"wire carries {len(wire.leaf_values)} executors, "
                    f"cluster has {k}")
            if any(len(row) != mpe for row in wire.leaf_values):
                raise ValueError(
                    "wire must carry messages_per_executor sizes per "
                    "executor")

        if not groups:
            if wire is None:
                ingress = net.fan_in_seconds(k * mpe, model_size)
            else:
                ingress = net.fan_in_varied_seconds(
                    [v for row in wire.leaf_values for v in row])
            driver = (ingress
                      + compute.dense_op_seconds(k * mpe * model_size,
                                                 cluster.driver))
            return TreeAggregateTiming(aggregator_seconds=0.0,
                                       driver_seconds=driver, groups={},
                                       ingress_seconds=ingress)

        # Level 1: aggregators receive their group's vectors (minus their
        # own, which are local) serially and add them up; all aggregators
        # run concurrently.
        a = len(groups)
        if wire is not None and len(wire.partial_values) != a:
            raise ValueError(
                f"wire carries {len(wire.partial_values)} partials, plan "
                f"has {a} aggregators")
        level1 = 0.0
        level1_ingress = 0.0
        for agg_index, size in groups.items():
            node = cluster.executors[agg_index]
            if wire is None:
                ingress = net.fan_in_seconds((size - 1) * mpe, model_size)
            else:
                # A singleton group (every member is the aggregator, e.g.
                # k == 1) has no ingress to price at all.
                sizes = [v for e in range(k)
                         if e % a == agg_index and e != agg_index
                         for v in wire.leaf_values[e]]
                ingress = (net.fan_in_varied_seconds(sizes) if sizes
                           else 0.0)
            seconds = (ingress
                       + compute.dense_op_seconds(size * mpe * model_size,
                                                  node))
            level1 = max(level1, seconds)
            level1_ingress = max(level1_ingress, ingress)

        # Level 2: the driver receives one partial per aggregator.
        if wire is None:
            ingress = net.fan_in_seconds(a, model_size)
        else:
            ingress = net.fan_in_varied_seconds(wire.partial_values)
        driver = (ingress
                  + compute.dense_op_seconds(a * model_size,
                                             cluster.driver))
        return TreeAggregateTiming(aggregator_seconds=level1,
                                   driver_seconds=driver, groups=groups,
                                   ingress_seconds=level1_ingress + ingress)
