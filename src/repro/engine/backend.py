"""Execution backends: fan per-worker local solves across real cores.

Every superstep of every system in the study contains an embarrassingly
parallel region — ``k`` independent local solves (``gd_step`` /
``mgd_epoch`` / ``sgd_epoch`` / full-pass gradients), one per cached
partition — that the simulation previously executed serially in one
Python process.  An :class:`ExecutionBackend` owns that region:

* ``serial``    — in-process loop (the reference behaviour, zero overhead);
* ``threads``   — a thread pool; partitions are shared by reference.
  NumPy/SciPy kernels release the GIL inside matvecs, so wide models see
  real overlap; small ones mostly measure pool overhead;
* ``processes`` — a process pool with **pickle-once** partitions: the CSR
  partitions are shipped to each worker process exactly once via the pool
  initializer (free under ``fork`` — the pages are inherited
  copy-on-write), and per-call traffic is just the broadcast model, the
  task args and the returned local model.

Bit-identity is structural, not statistical: tasks are submitted and
collected in partition-index order, every task receives (and returns) its
worker's private RNG so streams advance exactly as in the serial loop,
and all cross-worker *combining* stays in the parent in the serial code's
float-addition order.  ``tests/test_perf_backend.py`` asserts every
system's ``TrainResult.history`` is bit-identical across all three
backends, and the golden convergence test pins the serial numbers.

Task functions must be module-level (pickled by reference); see
:mod:`repro.core.worker`.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from concurrent.futures import Executor, ProcessPoolExecutor, \
    ThreadPoolExecutor
from typing import Any, Callable, Sequence

from ..perf.profiler import NullProfiler, PhaseProfiler

__all__ = ["BACKENDS", "ExecutionBackend", "SerialBackend",
           "ThreadBackend", "ProcessBackend", "make_backend"]

#: Valid ``TrainerConfig.backend`` / ``--backend`` values.
BACKENDS = ("serial", "threads", "processes")

#: Per-process partition store, installed once by the pool initializer.
#: Worker processes index into it instead of receiving partitions per
#: task — the "pickle-once" half of the shared-memory design (under the
#: preferred ``fork`` start method not even one pickle happens: the
#: child inherits the parent's pages copy-on-write).
_PROCESS_PARTITIONS: Sequence[Any] | None = None


def _install_process_partitions(partitions: Sequence[Any]) -> None:
    global _PROCESS_PARTITIONS
    _PROCESS_PARTITIONS = partitions


def _run_on_partition(fn: Callable[..., Any], index: int,
                      args: tuple) -> Any:
    """Pool-side trampoline: look the partition up by worker index."""
    assert _PROCESS_PARTITIONS is not None, "pool initializer did not run"
    return fn(_PROCESS_PARTITIONS[index], *args)


class ExecutionBackend:
    """Runs per-worker task functions against installed partitions.

    Lifecycle: ``install_partitions`` once per ``fit`` (before the first
    step), then any number of ``map_partitions`` / ``run_one`` calls, then
    ``close``.  Results always come back in submission (partition-index)
    order, so parent-side combining is order-identical to the serial loop.
    """

    name = "abstract"

    def __init__(self) -> None:
        #: Wall-clock hook; trainers install theirs so the fanned-out
        #: local-solve region shows up as the ``local_solve`` phase.
        self.profiler: PhaseProfiler = NullProfiler()

    def install_partitions(self, partitions: Sequence[Any]) -> None:
        raise NotImplementedError

    def map_partitions(self, fn: Callable[..., Any],
                       args_by_worker: Sequence[tuple]) -> list[Any]:
        """Run ``fn(partitions[i], *args_by_worker[i])`` for every ``i``."""
        raise NotImplementedError

    def run_one(self, fn: Callable[..., Any], worker: int,
                args: tuple) -> Any:
        """Run ``fn(partitions[worker], *args)`` (event-driven trainers)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release pool resources (idempotent)."""


class SerialBackend(ExecutionBackend):
    """In-process execution — the reference the parallel backends match."""

    name = "serial"

    def __init__(self) -> None:
        super().__init__()
        self._partitions: Sequence[Any] = ()

    def install_partitions(self, partitions: Sequence[Any]) -> None:
        self._partitions = list(partitions)

    def map_partitions(self, fn: Callable[..., Any],
                       args_by_worker: Sequence[tuple]) -> list[Any]:
        with self.profiler.phase("local_solve"):
            return [fn(self._partitions[i], *args)
                    for i, args in enumerate(args_by_worker)]

    def run_one(self, fn: Callable[..., Any], worker: int,
                args: tuple) -> Any:
        with self.profiler.phase("local_solve"):
            return fn(self._partitions[worker], *args)


class _PoolBackend(ExecutionBackend):
    """Shared submit/collect logic for the thread and process pools."""

    def __init__(self, max_workers: int | None = None) -> None:
        super().__init__()
        self._max_workers = max_workers
        self._pool: Executor | None = None

    def _pool_size(self, num_partitions: int) -> int:
        if self._max_workers is not None:
            return max(1, min(self._max_workers, num_partitions))
        return max(1, min(num_partitions, os.cpu_count() or 1))

    def _submit(self, fn: Callable[..., Any], index: int,
                args: tuple) -> Any:
        raise NotImplementedError

    def map_partitions(self, fn: Callable[..., Any],
                       args_by_worker: Sequence[tuple]) -> list[Any]:
        assert self._pool is not None, "install_partitions() not called"
        with self.profiler.phase("local_solve"):
            futures = [self._submit(fn, i, args)
                       for i, args in enumerate(args_by_worker)]
            return [future.result() for future in futures]

    def run_one(self, fn: Callable[..., Any], worker: int,
                args: tuple) -> Any:
        assert self._pool is not None, "install_partitions() not called"
        with self.profiler.phase("local_solve"):
            return self._submit(fn, worker, args).result()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ThreadBackend(_PoolBackend):
    """Thread pool; partitions shared by reference (no copies at all)."""

    name = "threads"

    def __init__(self, max_workers: int | None = None) -> None:
        super().__init__(max_workers)
        self._partitions: Sequence[Any] = ()

    def install_partitions(self, partitions: Sequence[Any]) -> None:
        self.close()
        self._partitions = list(partitions)
        self._pool = ThreadPoolExecutor(
            max_workers=self._pool_size(len(self._partitions)),
            thread_name_prefix="repro-worker")

    def _submit(self, fn: Callable[..., Any], index: int,
                args: tuple) -> Any:
        assert self._pool is not None
        return self._pool.submit(fn, self._partitions[index], *args)


class ProcessBackend(_PoolBackend):
    """Process pool with pickle-once partition installation.

    Prefers the ``fork`` start method (partitions are inherited
    copy-on-write — no serialization at all); falls back to the
    platform default, where the pool initializer ships the partition
    list to each worker process exactly once.
    """

    name = "processes"

    def install_partitions(self, partitions: Sequence[Any]) -> None:
        self.close()
        parts = list(partitions)
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else None)
        self._pool = ProcessPoolExecutor(
            max_workers=self._pool_size(len(parts)),
            mp_context=ctx,
            initializer=_install_process_partitions,
            initargs=(parts,))

    def _submit(self, fn: Callable[..., Any], index: int,
                args: tuple) -> Any:
        assert self._pool is not None
        return self._pool.submit(_run_on_partition, fn, index, args)


def make_backend(name: str,
                 max_workers: int | None = None) -> ExecutionBackend:
    """Build the backend named by ``TrainerConfig.backend``."""
    if name == "serial":
        return SerialBackend()
    if name == "threads":
        return ThreadBackend(max_workers)
    if name == "processes":
        return ProcessBackend(max_workers)
    raise ValueError(f"unknown backend {name!r}; expected one of "
                     f"{BACKENDS}")
