"""Execution backends: fan per-worker local solves across real cores.

Every superstep of every system in the study contains an embarrassingly
parallel region — ``k`` independent local solves (``gd_step`` /
``mgd_epoch`` / ``sgd_epoch`` / full-pass gradients), one per cached
partition — that the simulation previously executed serially in one
Python process.  An :class:`ExecutionBackend` owns that region:

* ``serial``    — in-process loop (the reference behaviour, zero overhead);
* ``threads``   — a thread pool; partitions are shared by reference.
  NumPy/SciPy kernels release the GIL inside matvecs, so wide models see
  real overlap; small ones mostly measure pool overhead;
* ``processes`` — a process pool with **pickle-once** partitions: under
  the preferred ``fork`` start method the partition list is installed
  into a module-level store *before* the pool is created, so children
  inherit it copy-on-write with **zero pickles**; on spawn platforms the
  pool initializer ships it to each worker exactly once.  Per-call
  traffic is the broadcast model, the task args and the returned local
  model;
* ``shm``       — a process pool over :mod:`repro.engine.shm`: partition
  CSR shards live in a write-once shared-memory segment and the
  broadcast model is written once per superstep into a shared arena —
  zero-copy broadcast; only task scalars, RNG state and the tiny local
  models cross process boundaries;
* ``socket``    — long-lived worker daemons (:mod:`repro.engine.daemon`)
  speaking the length-prefixed frame protocol of
  :mod:`repro.engine.wire` over localhost TCP.  Everything crosses a
  real transport, so each superstep's bytes-on-wire and wall seconds are
  *measured* — the backend's :meth:`~ExecutionBackend.wire_summary`
  feeds ``repro perf --validate-network``, which compares them against
  :class:`~repro.cluster.network.NetworkModel`'s *simulated* seconds.

Bit-identity is structural, not statistical: tasks are submitted and
collected in partition-index order, every task receives (and returns) its
worker's private RNG so streams advance exactly as in the serial loop,
and all cross-worker *combining* stays in the parent in the serial code's
float-addition order.  ``tests/test_perf_backend.py`` asserts every
system's ``TrainResult.history`` is bit-identical across all backends,
and the golden convergence test pins the serial numbers.

Task functions must be module-level (pickled by reference); see
:mod:`repro.core.worker`.  Backends are context managers — ``with
make_backend(...) as backend:`` guarantees pool teardown on any exit
path — and every lifecycle violation raises :class:`RuntimeError`
explicitly (never a bare ``assert``, which vanishes under ``python -O``).
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import socket as socketlib
import threading
from concurrent.futures import Executor, ProcessPoolExecutor, \
    ThreadPoolExecutor
from typing import Any, Callable, Sequence

import numpy as np

from ..perf.profiler import NullProfiler, PhaseProfiler
from . import shm as shm_store
from . import wire
from .daemon import daemon_main
from .shm import run_on_shm_partition

__all__ = ["BACKENDS", "ExecutionBackend", "SerialBackend",
           "ThreadBackend", "ProcessBackend", "ShmBackend",
           "SocketBackend", "make_backend"]

#: Valid ``TrainerConfig.backend`` / ``--backend`` values.
BACKENDS = ("serial", "threads", "processes", "shm", "socket")

#: Process-unique ids keying the per-backend partition stores, so that
#: concurrently open backends (e.g. two scheduler jobs in one driver
#: process) never clobber each other's partitions.
_BACKEND_IDS = itertools.count(1)

#: store id -> that backend's partition list.  Populated in the *parent*
#: before a fork-context pool is created (children inherit the entry
#: copy-on-write — no serialization at all) or by the pool initializer
#: on spawn platforms (one pickle per worker, never per task).
_PROCESS_PARTITION_STORE: dict[int, Sequence[Any]] = {}


def _install_process_partitions(store_id: int,
                                partitions: Sequence[Any]) -> None:
    """Spawn-platform pool initializer (fork installs before forking)."""
    _PROCESS_PARTITION_STORE[store_id] = partitions


def _run_on_partition(store_id: int, fn: Callable[..., Any], index: int,
                      args: tuple) -> Any:
    """Pool-side trampoline: look the partition up by worker index."""
    partitions = _PROCESS_PARTITION_STORE.get(store_id)
    if partitions is None:
        raise RuntimeError(
            "process-backend partition store is not installed in this "
            "worker (pool initializer did not run)")
    return fn(partitions[index], *args)


def _preferred_start_method(requested: str | None) -> str | None:
    """``fork`` when available (zero-copy inheritance), else platform
    default; an explicit request always wins."""
    if requested is not None:
        return requested
    return "fork" if "fork" in mp.get_all_start_methods() else None


class ExecutionBackend:
    """Runs per-worker task functions against installed partitions.

    Lifecycle: ``install_partitions`` once per ``fit`` (before the first
    step), then any number of ``map_partitions`` / ``run_one`` calls, then
    ``close``.  Results always come back in submission (partition-index)
    order, so parent-side combining is order-identical to the serial loop.

    Backends are context managers: ``__exit__`` closes the pool, so any
    exit path — including a fault injected mid-``fit`` — reaps worker
    processes and threads.
    """

    name = "abstract"

    def __init__(self) -> None:
        #: Wall-clock hook; trainers install theirs so the fanned-out
        #: local-solve region shows up as the ``local_solve`` phase.
        self.profiler: PhaseProfiler = NullProfiler()

    def install_partitions(self, partitions: Sequence[Any]) -> None:
        raise NotImplementedError

    def map_partitions(self, fn: Callable[..., Any],
                       args_by_worker: Sequence[tuple]) -> list[Any]:
        """Run ``fn(partitions[i], *args_by_worker[i])`` for every ``i``."""
        raise NotImplementedError

    def run_one(self, fn: Callable[..., Any], worker: int,
                args: tuple) -> Any:
        """Run ``fn(partitions[worker], *args)`` (event-driven trainers)."""
        raise NotImplementedError

    def wire_summary(self) -> dict[str, Any] | None:
        """Measured transport accounting, or ``None`` for backends whose
        communication is not on a real wire."""
        return None

    def close(self) -> None:
        """Release pool resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """In-process execution — the reference the parallel backends match."""

    name = "serial"

    def __init__(self) -> None:
        super().__init__()
        self._partitions: Sequence[Any] = ()

    def install_partitions(self, partitions: Sequence[Any]) -> None:
        self._partitions = list(partitions)

    def map_partitions(self, fn: Callable[..., Any],
                       args_by_worker: Sequence[tuple]) -> list[Any]:
        with self.profiler.phase("local_solve"):
            return [fn(self._partitions[i], *args)
                    for i, args in enumerate(args_by_worker)]

    def run_one(self, fn: Callable[..., Any], worker: int,
                args: tuple) -> Any:
        with self.profiler.phase("local_solve"):
            return fn(self._partitions[worker], *args)


class _PoolBackend(ExecutionBackend):
    """Shared submit/collect logic for the executor-pool backends."""

    def __init__(self, max_workers: int | None = None) -> None:
        super().__init__()
        self._max_workers = max_workers
        self._pool: Executor | None = None

    def _pool_size(self, num_partitions: int) -> int:
        if self._max_workers is not None:
            return max(1, min(self._max_workers, num_partitions))
        return max(1, min(num_partitions, os.cpu_count() or 1))

    def _require_pool(self) -> Executor:
        if self._pool is None:
            raise RuntimeError(
                f"{type(self).__name__}: install_partitions() was not "
                "called before submitting work")
        return self._pool

    def _submit(self, fn: Callable[..., Any], index: int,
                args: tuple) -> Any:
        raise NotImplementedError

    def map_partitions(self, fn: Callable[..., Any],
                       args_by_worker: Sequence[tuple]) -> list[Any]:
        self._require_pool()
        with self.profiler.phase("local_solve"):
            futures = [self._submit(fn, i, args)
                       for i, args in enumerate(args_by_worker)]
            return [future.result() for future in futures]

    def run_one(self, fn: Callable[..., Any], worker: int,
                args: tuple) -> Any:
        self._require_pool()
        with self.profiler.phase("local_solve"):
            return self._submit(fn, worker, args).result()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ThreadBackend(_PoolBackend):
    """Thread pool; partitions shared by reference (no copies at all)."""

    name = "threads"

    def __init__(self, max_workers: int | None = None) -> None:
        super().__init__(max_workers)
        self._partitions: Sequence[Any] = ()

    def install_partitions(self, partitions: Sequence[Any]) -> None:
        self.close()
        self._partitions = list(partitions)
        self._pool = ThreadPoolExecutor(
            max_workers=self._pool_size(len(self._partitions)),
            thread_name_prefix="repro-worker")

    def _submit(self, fn: Callable[..., Any], index: int,
                args: tuple) -> Any:
        pool = self._require_pool()
        return pool.submit(fn, self._partitions[index], *args)


class ProcessBackend(_PoolBackend):
    """Process pool with pickle-once (fork: pickle-never) partitions.

    Under ``fork`` the partition list is installed into
    :data:`_PROCESS_PARTITION_STORE` *before* the pool exists, so worker
    processes inherit it copy-on-write — no serialization at all, which
    a regression test pins by counting partition pickle events.  On
    spawn platforms the pool initializer ships the list to each worker
    exactly once.
    """

    name = "processes"

    #: Test hook: force a start method for every instance (e.g. the
    #: spawn-suite runs the whole bit-identity battery with this set).
    default_start_method: str | None = None

    def __init__(self, max_workers: int | None = None,
                 start_method: str | None = None) -> None:
        super().__init__(max_workers)
        self._start_method = start_method
        self._store_id = next(_BACKEND_IDS)

    def install_partitions(self, partitions: Sequence[Any]) -> None:
        self.close()
        parts = list(partitions)
        method = _preferred_start_method(
            self._start_method or self.default_start_method)
        ctx = mp.get_context(method)
        if ctx.get_start_method() == "fork":
            # Install BEFORE the pool forks: children inherit the store
            # entry copy-on-write and initargs stay empty.
            _PROCESS_PARTITION_STORE[self._store_id] = parts
            initializer: Callable[..., None] | None = None
            initargs: tuple = ()
        else:
            initializer = _install_process_partitions
            initargs = (self._store_id, parts)
        self._pool = ProcessPoolExecutor(
            max_workers=self._pool_size(len(parts)),
            mp_context=ctx,
            initializer=initializer,
            initargs=initargs)

    def _submit(self, fn: Callable[..., Any], index: int,
                args: tuple) -> Any:
        pool = self._require_pool()
        return pool.submit(_run_on_partition, self._store_id, fn, index,
                           args)

    def close(self) -> None:
        super().close()
        _PROCESS_PARTITION_STORE.pop(self._store_id, None)


def _is_model_vector(value: Any, capacity: int) -> bool:
    """Does ``value`` look like a broadcast model vector that fits the
    shared arena?  (1-d float64 — the shape of every model in the study.)"""
    return (isinstance(value, np.ndarray) and value.ndim == 1
            and value.dtype == np.float64 and value.size <= capacity)


class ShmBackend(_PoolBackend):
    """Process pool over shared-memory partitions + broadcast arena.

    ``install_partitions`` packs every partition's CSR arrays into one
    write-once shared segment (:func:`repro.engine.shm.build_store`);
    workers operate on read-only zero-copy views.  ``map_partitions``
    detects the broadcast model vector (the same ndarray object in every
    worker's args), writes it into the shared arena **once**, and ships
    only a tiny :class:`~repro.engine.shm.BroadcastRef` marker per task —
    per-superstep pickle traffic shrinks to task scalars, RNG state and
    the returned local models.

    Safe because the study's tasks never mutate the broadcast model or
    their partition (the ``--sanitize`` battery freezes both and all
    nine systems pass bit-exactly); the shared views are read-only, so a
    violating task raises instead of corrupting its neighbours.
    """

    name = "shm"

    #: Test hook mirroring :attr:`ProcessBackend.default_start_method`.
    default_start_method: str | None = None

    def __init__(self, max_workers: int | None = None,
                 start_method: str | None = None) -> None:
        super().__init__(max_workers)
        self._start_method = start_method
        self._store_id = shm_store.new_store_id()
        self._store: shm_store.ShmStore | None = None

    def install_partitions(self, partitions: Sequence[Any]) -> None:
        self.close()
        parts = list(partitions)
        self._store = shm_store.build_store(parts)
        method = _preferred_start_method(
            self._start_method or self.default_start_method)
        ctx = mp.get_context(method)
        if ctx.get_start_method() == "fork":
            # Same pre-fork trick as ProcessBackend, but what children
            # inherit is a handful of *views* over MAP_SHARED segments —
            # the partition bytes themselves are never even copied-on-
            # write, and parent arena writes are visible to workers.
            shm_store.install_worker_state(self._store_id,
                                           self._store.worker_state())
            initializer: Callable[..., None] | None = None
            initargs: tuple = ()
        else:
            initializer = shm_store.attach_worker_state
            initargs = (self._store_id, self._store.layout)
        self._pool = ProcessPoolExecutor(
            max_workers=self._pool_size(len(parts)),
            mp_context=ctx,
            initializer=initializer,
            initargs=initargs)

    def _require_store(self) -> shm_store.ShmStore:
        if self._store is None:
            raise RuntimeError(
                "ShmBackend: install_partitions() was not called before "
                "submitting work")
        return self._store

    def _broadcast_position(self,
                            args_by_worker: Sequence[tuple]) -> int | None:
        """Position of the shared broadcast arg: the same model-vector
        *object* in every worker's tuple."""
        store = self._require_store()
        first = args_by_worker[0]
        for pos, value in enumerate(first):
            if not _is_model_vector(value, store.layout.bcast_capacity):
                continue
            if all(args[pos] is value for args in args_by_worker[1:]):
                return pos
        return None

    def map_partitions(self, fn: Callable[..., Any],
                       args_by_worker: Sequence[tuple]) -> list[Any]:
        self._require_pool()
        if not args_by_worker:
            return []
        prepared: Sequence[tuple] = args_by_worker
        pos = self._broadcast_position(args_by_worker)
        if pos is not None:
            ref = self._require_store().write_broadcast(
                args_by_worker[0][pos])
            prepared = [args[:pos] + (ref,) + args[pos + 1:]
                        for args in args_by_worker]
        with self.profiler.phase("local_solve"):
            futures = [self._submit(fn, i, args)
                       for i, args in enumerate(prepared)]
            # The arena is reused next superstep, but only after every
            # task of this one has finished reading it (collected here).
            return [future.result() for future in futures]

    def run_one(self, fn: Callable[..., Any], worker: int,
                args: tuple) -> Any:
        self._require_pool()
        store = self._require_store()
        for pos, value in enumerate(args):
            if _is_model_vector(value, store.layout.bcast_capacity):
                ref = store.write_broadcast(value)
                args = args[:pos] + (ref,) + args[pos + 1:]
                break
        with self.profiler.phase("local_solve"):
            return self._submit(fn, worker, args).result()

    def _submit(self, fn: Callable[..., Any], index: int,
                args: tuple) -> Any:
        pool = self._require_pool()
        return pool.submit(run_on_shm_partition, self._store_id, fn,
                           index, args)

    def close(self) -> None:
        super().close()
        shm_store.discard_worker_state(self._store_id)
        if self._store is not None:
            self._store.close()
            self._store = None


class SocketBackend(ExecutionBackend):
    """Long-lived worker daemons over localhost TCP — a measured wire.

    Executors are separate OS processes (:func:`repro.engine.daemon.
    daemon_main`) that dial back to the parent, cache their partition
    shards once, and serve TASK frames until shutdown.  Partition
    ``index`` is pinned to daemon ``index % n_daemons`` — the Spark
    executor/cache locality model.  Every exchange's bytes and wall
    seconds are recorded (:class:`repro.engine.wire.WireRecord`);
    :meth:`wire_summary` aggregates them for the measured-vs-simulated
    network validation.

    Concurrency: one lock per daemon enforces strict request/response on
    each connection (no interleaved frames, no send/recv deadlock) while
    a small IO thread pool lets distinct daemons compute in parallel.
    Futures are collected in partition-index order, preserving the
    bit-identity contract.
    """

    name = "socket"

    #: Test hook mirroring :attr:`ProcessBackend.default_start_method`.
    default_start_method: str | None = None

    def __init__(self, max_workers: int | None = None,
                 start_method: str | None = None) -> None:
        super().__init__()
        self._max_workers = max_workers
        self._start_method = start_method
        self._daemons: list[Any] = []
        self._channels: dict[int, wire.FrameChannel] = {}
        self._locks: dict[int, threading.Lock] = {}
        self._assignment: dict[int, int] = {}
        self._io: ThreadPoolExecutor | None = None
        self._log = wire.WireLog()
        self._round = 0

    def _pool_size(self, num_partitions: int) -> int:
        if self._max_workers is not None:
            return max(1, min(self._max_workers, num_partitions))
        return max(1, min(num_partitions, os.cpu_count() or 1))

    def install_partitions(self, partitions: Sequence[Any]) -> None:
        self.close()
        # Fresh accounting per run; close() keeps the old log readable so
        # the session can harvest it after teardown.
        self._log = wire.WireLog()
        self._round = 0
        parts = list(partitions)
        n_daemons = self._pool_size(len(parts))
        method = _preferred_start_method(
            self._start_method or self.default_start_method)
        ctx = mp.get_context(method)
        listener = socketlib.create_server(("127.0.0.1", 0))
        listener.settimeout(wire.DEFAULT_TIMEOUT)
        try:
            port = listener.getsockname()[1]
            for worker_id in range(n_daemons):
                proc = ctx.Process(target=daemon_main,
                                   args=(port, worker_id), daemon=True,
                                   name=f"repro-daemon-{worker_id}")
                proc.start()
                self._daemons.append(proc)
            for _ in range(n_daemons):
                conn, _addr = listener.accept()
                channel = wire.FrameChannel(conn)
                kind, worker_id, _ = channel.recv()
                if kind != wire.HELLO:
                    raise RuntimeError(
                        f"worker daemon sent frame kind {kind} before "
                        "HELLO")
                self._channels[worker_id] = channel
                self._locks[worker_id] = threading.Lock()
        except BaseException:
            listener.close()
            self.close()
            raise
        listener.close()
        # Ship each daemon its partition shards exactly once.
        shards: dict[int, dict[int, Any]] = {w: {} for w in self._channels}
        for index, part in enumerate(parts):
            worker_id = index % n_daemons
            self._assignment[index] = worker_id
            shards[worker_id][index] = part
        for worker_id, shard in shards.items():
            kind, _ack, exchange = self._channels[worker_id].request(
                wire.INSTALL, shard)
            if kind != wire.ACK:
                raise RuntimeError(
                    f"worker daemon {worker_id} failed to acknowledge "
                    "partition installation")
            self._log.add(wire.WireRecord(
                label="install", worker=worker_id, superstep=0,
                bytes_out=exchange.bytes_out, bytes_in=exchange.bytes_in,
                roundtrip_seconds=exchange.seconds))
        self._io = ThreadPoolExecutor(max_workers=n_daemons,
                                      thread_name_prefix="repro-io")

    def _require_io(self) -> ThreadPoolExecutor:
        if self._io is None:
            raise RuntimeError(
                "SocketBackend: install_partitions() was not called "
                "before submitting work")
        return self._io

    def _exchange_task(self, fn: Callable[..., Any], index: int,
                       args: tuple, superstep: int) -> Any:
        worker_id = self._assignment[index]
        with self._locks[worker_id]:
            kind, payload, exchange = self._channels[worker_id].request(
                wire.TASK, (fn, index, args))
        if kind == wire.ERROR:
            raise payload
        if kind != wire.RESULT:
            raise RuntimeError(
                f"worker daemon {worker_id} replied with frame kind "
                f"{kind} to a task")
        result, compute_in_daemon = payload
        self._log.add(wire.WireRecord(
            label="task", worker=worker_id, superstep=superstep,
            bytes_out=exchange.bytes_out, bytes_in=exchange.bytes_in,
            roundtrip_seconds=exchange.seconds,
            compute_seconds=compute_in_daemon))
        return result

    def map_partitions(self, fn: Callable[..., Any],
                       args_by_worker: Sequence[tuple]) -> list[Any]:
        io = self._require_io()
        self._round += 1
        superstep = self._round
        with self.profiler.phase("local_solve"):
            futures = [io.submit(self._exchange_task, fn, i, tuple(args),
                                 superstep)
                       for i, args in enumerate(args_by_worker)]
            return [future.result() for future in futures]

    def run_one(self, fn: Callable[..., Any], worker: int,
                args: tuple) -> Any:
        self._require_io()
        self._round += 1
        with self.profiler.phase("local_solve"):
            return self._exchange_task(fn, worker, tuple(args),
                                       self._round)

    def wire_summary(self) -> dict[str, Any] | None:
        return self._log.summary()

    def close(self) -> None:
        if self._io is not None:
            self._io.shutdown(wait=True)
            self._io = None
        for worker_id, channel in list(self._channels.items()):
            try:
                with self._locks[worker_id]:
                    channel.request(wire.SHUTDOWN, None)
            except Exception:
                pass  # daemon already gone; reaped below
            channel.close()
        self._channels.clear()
        self._locks.clear()
        self._assignment.clear()
        for proc in self._daemons:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - wedged daemon
                proc.terminate()
                proc.join(timeout=10)
        self._daemons.clear()
        self._round = 0


def make_backend(name: str,
                 max_workers: int | None = None) -> ExecutionBackend:
    """Build the backend named by ``TrainerConfig.backend``."""
    if name == "serial":
        return SerialBackend()
    if name == "threads":
        return ThreadBackend(max_workers)
    if name == "processes":
        return ProcessBackend(max_workers)
    if name == "shm":
        return ShmBackend(max_workers)
    if name == "socket":
        return SocketBackend(max_workers)
    raise ValueError(f"unknown backend {name!r}; expected one of "
                     f"{BACKENDS}")
