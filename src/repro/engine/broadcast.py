"""Model broadcast: driver -> all executors.

After updating the global model, the MLlib driver broadcasts it back to the
executors for the next iteration.  Two cost modes are supported:

* ``serial`` (default) — the driver's uplink pushes one copy per executor,
  back to back.  This is the behaviour visible in the paper's gantt chart
  (Figure 3(a)): the broadcast time grows linearly with ``k`` and the
  executors idle while it happens.
* ``torrent`` — Spark's TorrentBroadcast-style dissemination: the model is
  chunked and peers re-share chunks, giving roughly logarithmic scaling.
  Included so the ablation benches can show the driver *update* pattern,
  not just the broadcast transport, is what MLlib* fixes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..cluster import ClusterSpec

__all__ = ["BroadcastModel"]


@dataclass(frozen=True)
class BroadcastModel:
    """Cost model for driver-side model broadcast."""

    mode: str = "serial"

    def __post_init__(self) -> None:
        if self.mode not in ("serial", "torrent"):
            raise ValueError("broadcast mode must be 'serial' or 'torrent'")

    def seconds(self, cluster: ClusterSpec, model_size: int) -> float:
        """Time for every executor to hold the size-``m`` model."""
        k = cluster.num_executors
        if k == 0:
            return 0.0
        net = cluster.network
        if self.mode == "serial":
            return net.fan_out_seconds(k, model_size)
        # Torrent: ~log2(k+1) store-and-forward rounds of the full payload.
        rounds = max(1, math.ceil(math.log2(k + 1)))
        return rounds * net.transfer_seconds(model_size)
