"""Long-lived worker daemon for the ``socket`` execution backend.

Each daemon is a separate OS process that dials back to the parent's
localhost listener, identifies itself with a HELLO frame, receives its
partition shards once (INSTALL), then sits in a strict request/response
loop executing TASK frames until SHUTDOWN.  This is the moral equivalent
of a Spark executor: state (the cached partitions) lives with the
worker across supersteps, and only models/gradients cross the wire.

The daemon times each task's execution (``compute_seconds``) and ships
the timing inside the RESULT payload, so the parent can subtract compute
from the measured round trip and attribute the remainder to the
transport.  This file shares :mod:`repro.engine.wire`'s DET001 wall-clock
exemption — measured seconds never feed the simulated clock; they exist
only for the measured-vs-simulated validation report.
"""

from __future__ import annotations

import pickle
import socket
import time
from typing import Any

from . import wire

__all__ = ["daemon_main"]


def _safe_exception(exc: BaseException) -> BaseException:
    """The exception itself if it pickles, else a faithful stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return wire.RemoteTaskError(
            f"task raised unpicklable {type(exc).__name__}: {exc!r}")


def daemon_main(port: int, worker_id: int,
                host: str = "127.0.0.1") -> None:
    """Entry point of one worker daemon process.

    Protocol (daemon side):

    * connect, send ``HELLO worker_id``;
    * ``INSTALL {index: partition}`` → merge into the local cache, ACK;
    * ``TASK (fn, index, args)`` → run ``fn(partitions[index], *args)``,
      reply ``RESULT (result, compute_seconds)`` or ``ERROR exc``;
    * ``SHUTDOWN`` → reply BYE and exit.
    """
    conn = socket.create_connection((host, port),
                                    timeout=wire.DEFAULT_TIMEOUT)
    channel = wire.FrameChannel(conn)
    channel.send(wire.HELLO, worker_id)
    partitions: dict[int, Any] = {}
    try:
        while True:
            kind, payload, _ = channel.recv()
            if kind == wire.INSTALL:
                partitions.update(payload)
                channel.send(wire.ACK, len(partitions))
            elif kind == wire.TASK:
                fn, index, args = payload
                start = time.perf_counter()
                try:
                    if index not in partitions:
                        raise RuntimeError(
                            f"partition {index} is not installed on "
                            f"worker daemon {worker_id}")
                    result = fn(partitions[index], *args)
                except BaseException as exc:  # noqa: BLE001 - shipped back
                    channel.send(wire.ERROR, _safe_exception(exc))
                else:
                    compute = time.perf_counter() - start
                    channel.send(wire.RESULT, (result, compute))
            elif kind == wire.SHUTDOWN:
                channel.send(wire.BYE, worker_id)
                return
            else:
                channel.send(wire.ERROR, wire.RemoteTaskError(
                    f"unexpected frame kind {kind} on worker daemon "
                    f"{worker_id}"))
    except (ConnectionError, EOFError, OSError):
        # Parent died or tore the wire down without SHUTDOWN; exit quietly
        # — the backend's close() path reaps us either way.
        return
    finally:
        channel.close()
