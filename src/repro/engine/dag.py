"""A miniature RDD: lazy, lineage-tracked, partitioned dataflow.

Spark's core abstraction — and the substrate the real MLlib is written
against — is the RDD: an immutable partitioned collection with lazy
transformations, lineage-based fault tolerance, and actions that trigger
execution.  The specialized trainers in :mod:`repro.core` use a direct
phase API for cost fidelity; this module supplies the general-purpose
layer, so that RDD-style programs (like MLlib's ``GradientDescent``
expressed over ``map``/``treeAggregate``) can run on the same simulated
cluster.

Supported surface:

* narrow transformations — :meth:`MiniRdd.map`, :meth:`MiniRdd.filter`,
  :meth:`MiniRdd.map_partitions` (all lazy);
* actions — :meth:`MiniRdd.collect`, :meth:`MiniRdd.count`,
  :meth:`MiniRdd.reduce`, :meth:`MiniRdd.tree_aggregate` (MLlib's
  aggregation primitive, priced like the trainers' phase);
* :meth:`MiniRdd.cache` — keep computed partitions in (simulated)
  executor memory;
* fault tolerance — :meth:`RddContext.fail_executor` drops an executor's
  cached partitions; the next action recomputes them from lineage,
  paying the recompute cost, exactly Spark's recovery story.

Cost model: Python closures cannot be priced automatically, so
transformations accept a ``work_per_row`` hint (abstract work units per
row, converted through the cluster's compute model); the default prices a
constant small cost per row.  Simulated time accrues on the context's
clock and trace, barrier-per-action (BSP semantics).
"""

from __future__ import annotations

from typing import Callable, Iterable, TypeVar

from ..cluster import ClusterSpec, Trace
from .aggregation import TreeAggregateModel
from .driver import DRIVER_LABEL, executor_label

__all__ = ["RddContext", "MiniRdd"]

T = TypeVar("T")
U = TypeVar("U")

#: Default abstract work units charged per row by a transformation.
DEFAULT_WORK_PER_ROW = 1.0e-7


class RddContext:
    """Execution context: cluster, simulated clock, trace, cached blocks.

    The analogue of a ``SparkContext`` — create RDDs with
    :meth:`parallelize`, inspect :attr:`now` and :attr:`trace` after
    running actions.
    """

    def __init__(self, cluster: ClusterSpec,
                 tree: TreeAggregateModel | None = None) -> None:
        if cluster.num_executors < 1:
            raise ValueError("context needs at least one executor")
        self.cluster = cluster
        self.tree = tree if tree is not None else TreeAggregateModel()
        self.trace = Trace()
        self.now = 0.0
        self._action_counter = 0
        #: cache[(rdd_id, partition_index)] = computed rows
        self._cache: dict[tuple[int, int], list] = {}
        self._next_rdd_id = 0

    # ------------------------------------------------------------------
    def parallelize(self, rows: Iterable[T],
                    num_partitions: int | None = None) -> "MiniRdd[T]":
        """Distribute a local collection across the executors."""
        data = list(rows)
        k = (num_partitions if num_partitions is not None
             else self.cluster.num_executors)
        if k < 1:
            raise ValueError("need at least one partition")
        if k > self.cluster.num_executors:
            raise ValueError(
                f"{k} partitions exceed {self.cluster.num_executors} "
                "executors (one partition per executor, as in the paper)")
        blocks: list[list[T]] = [[] for _ in range(k)]
        for i, row in enumerate(data):
            blocks[i % k].append(row)
        return MiniRdd(self, parents=(), partitions_hint=k,
                       compute=lambda idx, _inputs: list(blocks[idx]),
                       work_per_row=0.0, source_sizes=[len(b) for b in blocks])

    def fail_executor(self, executor_index: int) -> int:
        """Simulate an executor loss: evict its cached blocks.

        Returns the number of evicted blocks.  The next action touching
        those partitions recomputes them from lineage (and pays for it) —
        Spark's lineage-based recovery.
        """
        if not 0 <= executor_index < self.cluster.num_executors:
            raise ValueError("no such executor")
        victims = [key for key in self._cache if key[1] == executor_index]
        for key in victims:
            del self._cache[key]
        return len(victims)

    # internal -----------------------------------------------------------
    def _new_rdd_id(self) -> int:
        self._next_rdd_id += 1
        return self._next_rdd_id

    def _charge_barrier(self, durations: list[float]) -> None:
        """One compute wave: concurrent executors, barrier at the end."""
        start = self.now
        step = self._action_counter
        ends = []
        for i, base in enumerate(durations):
            node = self.cluster.executors[i]
            duration = base * self.cluster.slowdown(node, step)
            if duration > 0:
                self.trace.add(executor_label(i), start, start + duration,
                               "compute", step)
            ends.append(start + duration)
        barrier = max(ends, default=start)
        for i, end in enumerate(ends):
            if barrier > end + 1e-12:
                self.trace.add(executor_label(i), end, barrier, "wait",
                               step)
        self.now = barrier


class MiniRdd:
    """An immutable, lazily evaluated, partitioned collection."""

    def __init__(self, context: RddContext, parents: tuple["MiniRdd", ...],
                 partitions_hint: int,
                 compute: Callable[[int, list[list]], list],
                 work_per_row: float,
                 source_sizes: list[int] | None = None) -> None:
        self.context = context
        self.rdd_id = context._new_rdd_id()
        self.parents = parents
        self.num_partitions = partitions_hint
        self._compute = compute
        self._work_per_row = work_per_row
        self._source_sizes = source_sizes
        self._cached = False

    # ------------------------------------------------------------------
    # transformations (lazy)
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[T], U],
            work_per_row: float = DEFAULT_WORK_PER_ROW) -> "MiniRdd[U]":
        """Element-wise transformation."""
        return MiniRdd(self.context, (self,), self.num_partitions,
                       lambda _idx, inputs: [fn(row) for row in inputs[0]],
                       work_per_row)

    def filter(self, predicate: Callable[[T], bool],
               work_per_row: float = DEFAULT_WORK_PER_ROW) -> "MiniRdd[T]":
        """Keep rows satisfying ``predicate``."""
        return MiniRdd(self.context, (self,), self.num_partitions,
                       lambda _idx, inputs: [r for r in inputs[0]
                                             if predicate(r)],
                       work_per_row)

    def map_partitions(self, fn: Callable[[list], list],
                       work_per_row: float = DEFAULT_WORK_PER_ROW,
                       ) -> "MiniRdd":
        """Partition-at-a-time transformation (MLlib's hot path)."""
        return MiniRdd(self.context, (self,), self.num_partitions,
                       lambda _idx, inputs: list(fn(inputs[0])),
                       work_per_row)

    def cache(self) -> "MiniRdd":
        """Mark computed partitions for retention in executor memory."""
        self._cached = True
        return self

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _materialize_partition(self, index: int) -> tuple[list, float]:
        """Compute partition ``index``, returning (rows, work_seconds).

        Cached blocks cost nothing; otherwise the lineage chain is walked
        recursively, accumulating each stage's per-row work.
        """
        key = (self.rdd_id, index)
        cached = self.context._cache.get(key)
        if cached is not None:
            return cached, 0.0

        inputs = []
        upstream_seconds = 0.0
        for parent in self.parents:
            rows, secs = parent._materialize_partition(index)
            inputs.append(rows)
            upstream_seconds += secs
        rows = self._compute(index, inputs)
        node = self.context.cluster.executors[index]
        in_rows = sum(len(block) for block in inputs)
        if self._source_sizes is not None:
            in_rows = self._source_sizes[index]
        seconds = upstream_seconds + node.compute_seconds(
            in_rows * self._work_per_row)
        if self._cached:
            self.context._cache[key] = rows
        return rows, seconds

    def _run_stage(self) -> list[list]:
        """Materialize every partition as one barriered compute wave."""
        self.context._action_counter += 1
        results = []
        durations = [0.0] * self.context.cluster.num_executors
        for index in range(self.num_partitions):
            rows, seconds = self._materialize_partition(index)
            results.append(rows)
            durations[index] += seconds
        self.context._charge_barrier(durations)
        return results

    # ------------------------------------------------------------------
    # actions (eager)
    # ------------------------------------------------------------------
    def collect(self) -> list:
        """All rows at the driver (concatenated in partition order)."""
        blocks = self._run_stage()
        return [row for block in blocks for row in block]

    def count(self) -> int:
        """Number of rows."""
        return sum(len(block) for block in self._run_stage())

    def reduce(self, fn: Callable[[T, T], T]) -> T:
        """Fold all rows with an associative binary function."""
        rows = self.collect()
        if not rows:
            raise ValueError("reduce of an empty RDD")
        acc = rows[0]
        for row in rows[1:]:
            acc = fn(acc, row)
        return acc

    def tree_aggregate(self, zero: U, seq_op: Callable[[U, T], U],
                       comb_op: Callable[[U, U], U],
                       result_size: int = 1) -> U:
        """MLlib's hierarchical aggregation, with its communication cost.

        ``seq_op`` folds rows into a per-partition accumulator; ``comb_op``
        merges accumulators through the aggregation tree.  ``result_size``
        (in model coordinates) prices the shipped accumulators — a scalar
        count costs almost nothing, a gradient costs like the trainers'
        aggregation phase.
        """
        blocks = self._run_stage()
        partials = []
        for block in blocks:
            acc = zero
            for row in block:
                acc = seq_op(acc, row)
            partials.append(acc)

        # Communication: the same hierarchical pattern the trainers pay.
        ctx = self.context
        timing = ctx.tree.timing(ctx.cluster, result_size)
        start = ctx.now
        end = start + timing.total_seconds
        ctx.trace.add(DRIVER_LABEL, start + timing.aggregator_seconds, end,
                      "aggregate", ctx._action_counter)
        ctx.now = end

        result = partials[0]
        for part in partials[1:]:
            result = comb_op(result, part)
        return result
