"""The BSP execution engine: simulated clock, barriers, trace emission.

:class:`BspEngine` is the reproduction's stand-in for a Spark driver
runtime.  Trainers describe each superstep as a sequence of *phases*; the
engine advances a single global simulated clock through them, samples
straggler slowdowns, enforces barrier-to-slowest semantics, and emits
:class:`~repro.cluster.trace.Span` records for the gantt chart.

Phases available (one per communication pattern in the paper):

* :meth:`compute_phase`       — executors do local work, barrier at the end;
* :meth:`tree_aggregate_phase`— MLlib's hierarchical aggregation to the driver;
* :meth:`driver_update_phase` — the driver applies an update to the model;
* :meth:`broadcast_phase`     — driver ships the model back to executors;
* :meth:`reduce_scatter_phase`/:meth:`all_gather_phase` — the two shuffle
  rounds MLlib* replaces the driver round-trip with;
* :meth:`checkpoint_phase`    — executors write recovery state to stable
  storage (only called when a checkpointing recovery policy is active).

The engine prices time only; the numerical work happens in the trainers.

**Fault injection.**  When constructed with a
:class:`~repro.cluster.faults.FailureModel`, every phase becomes
failure-aware: a crashed executor's work for the phase is voided at the
crash point, a ``recovery`` span prices the restart plus lineage
recomputation (or checkpoint restore), and the work is deterministically
redone — so failures stretch the clock and the trace but never change the
numerics.  Recovery semantics follow each phase's communication pattern:

* a crash during *compute* redoes only that executor's local work;
* a crash during *treeAggregate* additionally redoes the executor's local
  work before resending its one vector — the driver fan-in starts late by
  exactly the recovery delay;
* a crash during *Reduce-Scatter/AllGather* is the expensive one: the
  owner's received pieces are lost, so after restarting, **every peer
  re-sends its piece** (a serialized fan-in into the recovered node) and
  the barrier stalls all ``k`` executors until the owner catches up.  This
  asymmetry — AllReduce couples everyone to a lost owner, SendGradient
  does not — is what the fault benches measure.

With the default :class:`~repro.cluster.faults.NoFailures` model, phase
timing is bit-identical to the failure-free engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..cluster import ClusterSpec, Trace
from ..cluster.faults import (FailureModel, FailureRecord, NoFailures,
                              RecoveryError, RecoveryPolicy)
from .aggregation import TreeAggregateModel
from .broadcast import BroadcastModel
from .shuffle import ShuffleModel

if TYPE_CHECKING:  # avoid a runtime engine -> collectives import cycle
    from ..collectives.hierarchical import HierWire
    from ..collectives.innetwork import SwitchWire
    from ..collectives.sparse import CommStats, TreeWire

__all__ = ["BspEngine", "CommRecord", "DRIVER_LABEL", "executor_label"]

DRIVER_LABEL = "driver"

#: (seconds, span-kind) work segments used by the failure-aware runner.
_Segments = list


def executor_label(index: int) -> str:
    """Human-readable label for executor ``index`` (0-based)."""
    return f"executor-{index + 1}"


@dataclass(frozen=True)
class CommRecord:
    """Wire accounting of one priced communication phase.

    ``dense_values``/``dense_seconds`` are what the phase would have moved
    and cost with dense messages; ``wire_values``/``seconds`` are what it
    actually moved and cost (identical when no sparse wire was supplied).
    ``seconds`` is the communication component only — the busiest link's
    priced transfer time, excluding combine compute and fault retries.
    """

    step: int
    phase: str
    dense_values: float
    wire_values: float
    seconds: float
    dense_seconds: float

    @property
    def compression(self) -> float:
        """Dense-over-wire volume ratio (1.0 for an empty exchange)."""
        if self.wire_values <= 0:
            return 1.0
        return self.dense_values / self.wire_values

    @property
    def speedup(self) -> float:
        """Dense-over-wire priced-seconds ratio (1.0 for a free phase)."""
        if self.seconds <= 0:
            return 1.0
        return self.dense_seconds / self.seconds


class BspEngine:
    """Advances a simulated global clock through BSP phases.

    Parameters
    ----------
    cluster:
        The simulated cluster (nodes, network, costs, stragglers).
    tree:
        Aggregation model (depth 1 = flat, 2 = MLlib's treeAggregate).
    broadcast:
        Broadcast transport model.
    faults:
        Failure model deciding which (step, phase, executor, attempt)
        tuples crash; defaults to :class:`NoFailures`.
    recovery:
        Retry budget and restore strategy applied on each crash.
    """

    def __init__(self, cluster: ClusterSpec,
                 tree: TreeAggregateModel | None = None,
                 broadcast: BroadcastModel | None = None,
                 faults: FailureModel | None = None,
                 recovery: RecoveryPolicy | None = None) -> None:
        if cluster.num_executors < 1:
            raise ValueError("BSP engine needs at least one executor")
        self.cluster = cluster
        self.tree = tree if tree is not None else TreeAggregateModel()
        self.broadcast = broadcast if broadcast is not None else BroadcastModel()
        self.shuffle = ShuffleModel()
        self.faults = faults if faults is not None else NoFailures()
        # Fail fast on failure scripts that could never fire: an event
        # targeting an executor index outside this cluster is a scenario
        # mistake, not a failure-free run.
        self.faults.validate_executors(cluster.num_executors)
        self.recovery = recovery if recovery is not None else RecoveryPolicy()
        #: Materialized crashes, in simulated-time order.
        self.failures: list[FailureRecord] = []
        #: Wire accounting, one record per priced communication phase.
        self.comm_records: list[CommRecord] = []
        self.trace = Trace()
        self.now = 0.0
        #: Per-executor cost of rebuilding a lost cached partition from
        #: lineage (set by the trainer once partition sizes are known).
        self._reload_seconds = [0.0] * cluster.num_executors
        #: Cost of restoring from the latest checkpoint (None until one
        #: has been written).
        self._restore_seconds: float | None = None
        cluster.reset_rng()

    # ------------------------------------------------------------------
    @property
    def num_executors(self) -> int:
        return self.cluster.num_executors

    def set_recovery_costs(self, reload_seconds: list[float]) -> None:
        """Install the per-executor lineage-recompute cost used on crashes."""
        if len(reload_seconds) != self.num_executors:
            raise ValueError(
                f"expected {self.num_executors} reload costs, "
                f"got {len(reload_seconds)}")
        if any(s < 0 for s in reload_seconds):
            raise ValueError("reload seconds must be non-negative")
        self._reload_seconds = [float(s) for s in reload_seconds]

    def _wait_fill(self, label: str, busy_until: float, barrier: float,
                   step: int) -> None:
        """Record idle time between a node's last activity and the barrier."""
        if barrier > busy_until + 1e-12:
            self.trace.add(label, busy_until, barrier, "wait", step)

    def _net_slowdown(self, step: int) -> float:
        """Transient network degradation factor (1.0 when faults are off)."""
        if not self.faults.enabled:
            return 1.0
        return self.faults.network_slowdown(step)

    # ------------------------------------------------------------------
    # failure-aware attempt runner
    # ------------------------------------------------------------------
    def _restore_cost(self, executor_index: int) -> float:
        """Downtime of one recovery: restart + (checkpoint read | lineage)."""
        base = self.recovery.restart_seconds
        if (self.recovery.strategy == "checkpoint"
                and self._restore_seconds is not None):
            return base + self._restore_seconds
        return base + self._reload_seconds[executor_index]

    def _attempt_run(self, executor_index: int, start: float,
                     segments: _Segments, retry_segments: _Segments,
                     step: int, phase: str) -> float:
        """Run one executor's phase work with crash/retry handling.

        ``segments``/``retry_segments`` are ``(seconds, kind)`` lists: the
        first attempt runs ``segments``; every post-recovery attempt runs
        ``retry_segments`` (which may prepend recomputation work).  Returns
        the executor's finish time; raises :class:`RecoveryError` once the
        retry budget is exhausted.
        """
        label = executor_label(executor_index)
        t = start
        attempt = 0
        current = segments
        while True:
            event = self.faults.crash_event(step, phase, executor_index,
                                            attempt)
            if event is None:
                for seconds, kind in current:
                    if seconds > 0:
                        self.trace.add(label, t, t + seconds, kind, step)
                    t += seconds
                return t
            total = sum(seconds for seconds, _ in current)
            crash_at = t + total * event.at_fraction
            cursor = t
            for seconds, kind in current:  # work done before the crash
                end = min(cursor + seconds, crash_at)
                if end > cursor:
                    self.trace.add(label, cursor, end, kind, step)
                cursor += seconds
                if cursor >= crash_at:
                    break
            self.failures.append(FailureRecord(
                node=label, step=step, phase=phase, time=crash_at,
                attempt=attempt))
            if attempt >= self.recovery.max_retries:
                raise RecoveryError(
                    f"{label} crashed in the {phase} phase of step {step} "
                    f"on attempt {attempt + 1}, exhausting the retry "
                    f"budget (max_retries={self.recovery.max_retries})")
            downtime = self._restore_cost(executor_index)
            if downtime > 0:
                self.trace.add(label, crash_at, crash_at + downtime,
                               "recovery", step)
            t = crash_at + downtime
            attempt += 1
            current = retry_segments

    # ------------------------------------------------------------------
    def compute_phase(self, seconds_by_executor: list[float],
                      step: int) -> float:
        """Local computation on every executor, then a barrier.

        ``seconds_by_executor[i]`` is the *unperturbed* compute time for
        executor ``i``; the engine multiplies in the per-(node, step)
        straggler slowdown.  A crashed executor recovers (restart +
        reload/restore) and redoes its work in full.  Returns the phase
        duration.
        """
        if len(seconds_by_executor) != self.num_executors:
            raise ValueError(
                f"expected {self.num_executors} durations, "
                f"got {len(seconds_by_executor)}")
        start = self.now
        finish_times: list[float] = []
        for i, base in enumerate(seconds_by_executor):
            if base < 0:
                raise ValueError("compute seconds must be non-negative")
            node = self.cluster.executors[i]
            duration = base * self.cluster.slowdown(node, step)
            if self.faults.enabled:
                segments = [(duration, "compute")]
                end = self._attempt_run(i, start, segments, segments,
                                        step, "compute")
            else:
                end = start + duration
                if duration > 0:
                    self.trace.add(executor_label(i), start, end,
                                   "compute", step)
            finish_times.append(end)
        barrier = max(finish_times, default=start)
        for i, end in enumerate(finish_times):
            self._wait_fill(executor_label(i), end, barrier, step)
        self._wait_fill(DRIVER_LABEL, start, barrier, step)
        self.now = barrier
        return barrier - start

    def tree_aggregate_phase(self, model_size: int, step: int,
                             messages_per_executor: int = 1,
                             redo_seconds: list[float] | None = None,
                             wire: "TreeWire | HierWire | SwitchWire | None"
                             = None) -> float:
        """Hierarchical aggregation of size-``m`` vectors to the driver.

        ``messages_per_executor`` > 1 models multiple waves of tasks per
        executor, each shipping its own vector (Section V-C).
        ``redo_seconds[i]`` is the cost for executor ``i`` to recompute
        its vector after a crash (the in-memory gradient/model dies with
        the executor); the driver fan-in starts late by the recovery
        delay of the slowest failed sender.

        ``wire`` (a :class:`~repro.collectives.sparse.TreeWire`) prices
        each leaf/partial message at its sparse encoded size instead of
        ``model_size``.  Fault-recovery resends stay dense-priced (the
        recovered state is re-shipped conservatively).  With ``wire=None``
        timing is bit-identical to the dense engine.

        A :class:`~repro.collectives.hierarchical.HierWire` or
        :class:`~repro.collectives.innetwork.SwitchWire` replaces the
        whole schedule with the two-tier / in-network topology; a switch
        wire whose sparse fallback fired prices as the host sparse tree.
        The aggregated values are the same in every case — topology is a
        pricing choice (``docs/communication.md``).
        """
        # Runtime imports keep the module-load graph acyclic
        # (collectives -> engine.shuffle).
        from ..collectives.hierarchical import HierWire
        from ..collectives.innetwork import SwitchWire
        if isinstance(wire, SwitchWire):
            if wire.fallback is None:
                return self._switch_tree_aggregate(
                    model_size, step, messages_per_executor, redo_seconds,
                    wire)
            wire = wire.fallback
        if isinstance(wire, HierWire):
            return self._hier_tree_aggregate(
                model_size, step, messages_per_executor, redo_seconds,
                wire)
        timing = self.tree.timing(self.cluster, model_size,
                                  messages_per_executor, wire=wire)
        net_slow = self._net_slowdown(step)
        start = self.now
        net = self.cluster.network
        if wire is None:
            send_list = [net.transfer_seconds(model_size) * net_slow
                         ] * self.num_executors
            send_values = [float(model_size)] * self.num_executors
        else:
            send_list = [net.fan_in_varied_seconds(wire.leaf_values[i])
                         * net_slow for i in range(self.num_executors)]
            send_values = [float(sum(wire.leaf_values[i]))
                           for i in range(self.num_executors)]

        level1_end = start + timing.aggregator_seconds * net_slow
        aggregators = set(timing.groups)
        delay = 0.0
        finish_times: list[float] = []
        for i in range(self.num_executors):
            label = executor_label(i)
            is_aggregator = i in aggregators and bool(timing.groups)
            if is_aggregator:
                segments = [(level1_end - start, "aggregate")]
            else:
                segments = [(send_list[i], "send")]
            if self.faults.enabled:
                redo = ([] if redo_seconds is None
                        else [(redo_seconds[i], "compute")])
                end = self._attempt_run(i, start, segments,
                                        redo + segments, step, "aggregate")
                delay = max(delay, end - (start + segments[0][0]))
            else:
                end = start + segments[0][0]
                self.trace.add(label, start, end, segments[0][1], step,
                               values=(0.0 if is_aggregator
                                       else send_values[i]))
            finish_times.append(end)
            if not is_aggregator:
                self._wait_fill(label, end, level1_end, step)

        driver_start = level1_end + delay
        driver_end = driver_start + timing.driver_seconds * net_slow
        self.trace.add(DRIVER_LABEL, driver_start, driver_end,
                       "aggregate", step)
        for i in range(self.num_executors):
            busy_until = (max(level1_end, finish_times[i])
                          if self.faults.enabled else level1_end)
            self._wait_fill(executor_label(i), busy_until, driver_end, step)

        if wire is None:
            a = len(timing.groups)
            msgs = (self.num_executors * messages_per_executor if a == 0
                    else (self.num_executors - a) * messages_per_executor + a)
            dense_values = float(model_size) * msgs
            wire_values = dense_values
            dense_ingress = timing.ingress_seconds
        else:
            dense_values = wire.dense_values
            wire_values = wire.wire_values
            dense_ingress = self.tree.timing(
                self.cluster, model_size, messages_per_executor
            ).ingress_seconds
        self.comm_records.append(CommRecord(
            step=step, phase="tree_aggregate", dense_values=dense_values,
            wire_values=wire_values,
            seconds=timing.ingress_seconds * net_slow,
            dense_seconds=dense_ingress * net_slow))
        self.now = driver_end
        return driver_end - start

    def _hier_tree_aggregate(self, model_size: int, step: int,
                             messages_per_executor: int,
                             redo_seconds: list[float] | None,
                             wire: "HierWire") -> float:
        """Two-tier treeAggregate: machine leaders replace MLlib's
        round-robin aggregators.

        Members ship their task vectors to their machine's leader over
        the *intra* tier; each leader combines its group's vectors and
        ships one partial to the driver over the cross-node fabric.
        Mirrors :meth:`tree_aggregate_phase` barrier/fault semantics.
        """
        k = self.num_executors
        if wire.num_executors != k:
            raise ValueError(f"wire carries {wire.num_executors} "
                             f"executors, cluster has {k}")
        if wire.messages_per_executor != messages_per_executor:
            raise ValueError("wire must carry messages_per_executor "
                             "sizes per executor")
        mpe = messages_per_executor
        net = self.cluster.network
        compute = self.cluster.compute
        net_slow = self._net_slowdown(step)
        start = self.now
        n = len(wire.groups)
        leaders = wire.leaders

        # Level 1: every leader drains its members over the intra tier
        # (serialized ingress) and folds the group's vectors; leaders run
        # concurrently, as in the flat treeAggregate.
        level1 = 0.0
        level1_ingress = 0.0
        for group in wire.groups:
            node = self.cluster.executors[group[0]]
            ingress = sum(net.intra_transfer_seconds(v)
                          for e in group[1:]
                          for v in wire.intra_sends[e])
            seconds = ingress + compute.dense_op_seconds(
                len(group) * mpe * model_size, node)
            level1 = max(level1, seconds)
            level1_ingress = max(level1_ingress, ingress)
        # Level 2: the driver receives one partial per machine.
        partials = [v for i in leaders for v in wire.cross_sends[i]]
        driver_ingress = net.fan_in_varied_seconds(partials)
        driver_seconds = (driver_ingress
                          + compute.dense_op_seconds(n * model_size,
                                                     self.cluster.driver))

        level1_end = start + level1 * net_slow
        is_leader = [False] * k
        for i in leaders:
            is_leader[i] = True
        delay = 0.0
        finish_times: list[float] = []
        for i in range(k):
            label = executor_label(i)
            if is_leader[i]:
                segments: _Segments = [(level1_end - start, "aggregate")]
                values = 0.0
            else:
                send = (sum(net.intra_transfer_seconds(v)
                            for v in wire.intra_sends[i]) * net_slow)
                segments = [(send, "send")]
                values = float(sum(wire.intra_sends[i]))
            if self.faults.enabled:
                redo = ([] if redo_seconds is None
                        else [(redo_seconds[i], "compute")])
                end = self._attempt_run(i, start, segments,
                                        redo + segments, step, "aggregate")
                delay = max(delay, end - (start + segments[0][0]))
            else:
                end = start + segments[0][0]
                if segments[0][0] > 0:
                    self.trace.add(label, start, end, segments[0][1],
                                   step, values=values)
            finish_times.append(end)
            if not is_leader[i]:
                self._wait_fill(label, end, level1_end, step)

        driver_start = level1_end + delay
        driver_end = driver_start + driver_seconds * net_slow
        self.trace.add(DRIVER_LABEL, driver_start, driver_end,
                       "aggregate", step)
        for i in range(k):
            busy_until = (max(level1_end, finish_times[i])
                          if self.faults.enabled else level1_end)
            self._wait_fill(executor_label(i), busy_until, driver_end,
                            step)
        dense_ingress = self.tree.timing(self.cluster, model_size,
                                         mpe).ingress_seconds
        self.comm_records.append(CommRecord(
            step=step, phase="tree_aggregate",
            dense_values=wire.dense_values, wire_values=wire.wire_values,
            seconds=(level1_ingress + driver_ingress) * net_slow,
            dense_seconds=dense_ingress * net_slow))
        self.now = driver_end
        return driver_end - start

    def _switch_tree_aggregate(self, model_size: int, step: int,
                               messages_per_executor: int,
                               redo_seconds: list[float] | None,
                               wire: "SwitchWire") -> float:
        """In-network treeAggregate: every task vector streams through
        the switch concurrently; the driver receives one result.

        Slot exhaustion (more chunks in flight than ``pool_slots``)
        stalls the streams for one extra latency per round — stretching
        seconds without touching any aggregated value.
        """
        from ..collectives.innetwork import switch_stream_seconds
        k = self.num_executors
        if wire.num_senders != k:
            raise ValueError(f"wire carries {wire.num_senders} senders, "
                             f"cluster has {k}")
        if wire.messages_per_executor != messages_per_executor:
            raise ValueError("wire must carry messages_per_executor "
                             "messages per executor")
        net = self.cluster.network
        compute = self.cluster.compute
        net_slow = self._net_slowdown(step)
        start = self.now
        stream_raw = switch_stream_seconds(net, wire.values_per_link,
                                           wire.chunk_values,
                                           wire.pool_slots)
        stream = stream_raw * net_slow
        delay = 0.0
        finish_times: list[float] = []
        for i in range(k):
            label = executor_label(i)
            segments: _Segments = [(stream, "send")]
            if self.faults.enabled:
                redo = ([] if redo_seconds is None
                        else [(redo_seconds[i], "compute")])
                end = self._attempt_run(i, start, segments,
                                        redo + segments, step, "aggregate")
                delay = max(delay, end - (start + stream))
            else:
                end = start + stream
                if stream > 0:
                    self.trace.add(label, start, end, "send", step,
                                   values=wire.values_per_link)
            finish_times.append(end)

        stream_end = start + stream
        driver_ingress = net.transfer_seconds(model_size)
        driver_seconds = (driver_ingress
                          + compute.dense_op_seconds(model_size,
                                                     self.cluster.driver))
        driver_start = stream_end + delay
        driver_end = driver_start + driver_seconds * net_slow
        self.trace.add(DRIVER_LABEL, driver_start, driver_end,
                       "aggregate", step)
        for i in range(k):
            busy_until = (max(stream_end, finish_times[i])
                          if self.faults.enabled else stream_end)
            self._wait_fill(executor_label(i), busy_until, driver_end,
                            step)
        dense_ingress = self.tree.timing(self.cluster, model_size,
                                         messages_per_executor
                                         ).ingress_seconds
        self.comm_records.append(CommRecord(
            step=step, phase="tree_aggregate",
            dense_values=wire.dense_values, wire_values=wire.wire_values,
            seconds=(stream_raw + driver_ingress) * net_slow,
            dense_seconds=dense_ingress * net_slow))
        self.now = driver_end
        return driver_end - start

    def driver_update_phase(self, seconds: float, step: int) -> float:
        """The driver applies an update while every executor waits."""
        if seconds < 0:
            raise ValueError("update seconds must be non-negative")
        start = self.now
        end = start + seconds
        if seconds > 0:
            self.trace.add(DRIVER_LABEL, start, end, "update", step)
            for i in range(self.num_executors):
                self.trace.add(executor_label(i), start, end, "wait", step)
        self.now = end
        return seconds

    def broadcast_phase(self, model_size: int, step: int) -> float:
        """Driver ships the size-``m`` model to all executors."""
        duration = (self.broadcast.seconds(self.cluster, model_size)
                    * self._net_slowdown(step))
        start = self.now
        end = start + duration
        if duration > 0:
            self.trace.add(DRIVER_LABEL, start, end, "send", step)
            per_copy = duration / max(1, self.num_executors)
            for i in range(self.num_executors):
                # Serial broadcast drains copies one executor at a time,
                # producing the staircase visible in the paper's chart.
                recv_start = start + i * per_copy
                recv_end = recv_start + per_copy
                self._wait_fill(executor_label(i), start, recv_start, step)
                self.trace.add(executor_label(i), recv_start,
                               min(recv_end, end), "recv", step)
                self._wait_fill(executor_label(i), recv_end, end, step)
        self.now = end
        return duration

    # ------------------------------------------------------------------
    # MLlib* shuffle-based collective phases
    # ------------------------------------------------------------------
    def _all_to_all_phase(self, model_size: int, step: int, phase: str,
                          combine_coords: float,
                          redo_seconds: list[float] | None = None,
                          wire: "CommStats | HierWire | SwitchWire | None"
                          = None) -> float:
        """One shuffle round: every executor exchanges model pieces.

        Each executor sends ``k - 1`` messages of ``m / k`` coordinates on
        its own uplink (concurrently with its peers) and then optionally
        combines received pieces (``combine_coords`` dense coordinate ops,
        straggler-free since it is tiny).

        ``wire`` (a :class:`~repro.collectives.sparse.CommStats`) prices
        each executor's sends at their actual encoded sizes
        (``wire.per_sender[i]``) instead of ``k - 1`` dense pieces; with
        ``wire=None`` the phase is bit-identical to the dense engine.

        A crash here is the costly AllReduce failure mode: the owner's
        received pieces die with it, so recovery redoes the owner's local
        work (``redo_seconds``), then **all peers re-send their pieces**
        — a ``k - 1`` serialized fan-in into the recovered node — before
        the combine is redone (the refill stays dense-priced: recovered
        state is re-shipped conservatively).  The closing barrier stalls
        every peer until the owner catches up.

        A :class:`~repro.collectives.hierarchical.HierWire` or
        :class:`~repro.collectives.innetwork.SwitchWire` reprices the
        round under the two-tier / in-network topology instead; a switch
        wire whose sparse fallback fired prices as the flat sparse round.
        """
        from ..collectives.hierarchical import HierWire
        from ..collectives.innetwork import SwitchWire
        if isinstance(wire, SwitchWire):
            if wire.fallback is None:
                return self._switch_all_to_all(model_size, step, phase,
                                               redo_seconds, wire)
            wire = wire.fallback
        if isinstance(wire, HierWire):
            return self._hier_all_to_all(model_size, step, phase,
                                         combine_coords, redo_seconds,
                                         wire)
        k = self.num_executors
        if model_size < k:
            raise ValueError(
                f"cannot run {phase} with a model of size {model_size} "
                f"across {k} executors: each owner needs at least one "
                "coordinate (num_executors > model_size)")
        piece = model_size / k
        net_slow = self._net_slowdown(step)
        dense_send = (self.shuffle.round_seconds(self.cluster, k - 1, piece)
                      * net_slow)
        if wire is None:
            send_list = [dense_send] * k
            send_values = [(k - 1) * piece] * k
        else:
            if len(wire.per_sender) != k:
                raise ValueError(
                    f"wire carries {len(wire.per_sender)} senders, "
                    f"cluster has {k}")
            send_list = [self.shuffle.sender_seconds(self.cluster,
                                                     wire.per_sender[i])
                         * net_slow for i in range(k)]
            send_values = [float(sum(wire.per_sender[i])) for i in range(k)]
        start = self.now
        finish: list[float] = []
        for i in range(k):
            label = executor_label(i)
            node = self.cluster.executors[i]
            send_seconds = send_list[i]
            combine = (self.cluster.compute.dense_op_seconds(
                combine_coords, node) if combine_coords > 0 else 0.0)
            if self.faults.enabled:
                segments: _Segments = [(send_seconds, "send")]
                if combine > 0:
                    segments.append((combine, "aggregate"))
                refill = (self.cluster.network.fan_in_seconds(k - 1, piece)
                          * net_slow)
                retry: _Segments = ([] if redo_seconds is None
                                    else [(redo_seconds[i], "compute")])
                retry = retry + [(refill, "recv")]
                if combine > 0:
                    retry.append((combine, "aggregate"))
                end = self._attempt_run(i, start, segments, retry, step,
                                        phase)
            else:
                end = start + send_seconds
                if send_seconds > 0:
                    self.trace.add(label, start, end, "send", step,
                                   values=send_values[i])
                if combine > 0:
                    self.trace.add(label, end, end + combine, "aggregate",
                                   step)
                    end += combine
            finish.append(end)
        barrier = max(finish, default=start)
        for i, end in enumerate(finish):
            self._wait_fill(executor_label(i), end, barrier, step)
        self._wait_fill(DRIVER_LABEL, start, barrier, step)
        dense_values = float((k - 1) * model_size)
        self.comm_records.append(CommRecord(
            step=step, phase=phase,
            dense_values=wire.dense_values if wire is not None
            else dense_values,
            wire_values=wire.wire_values if wire is not None
            else dense_values,
            seconds=max(send_list, default=0.0),
            dense_seconds=dense_send))
        self.now = barrier
        return barrier - start

    def _hier_all_to_all(self, model_size: int, step: int, phase: str,
                         combine_coords: float,
                         redo_seconds: list[float] | None,
                         wire: "HierWire") -> float:
        """One two-tier collective round (Reduce-Scatter or AllGather).

        Reduce-Scatter: members upload their model to the machine leader
        over the intra tier; the leader folds the group and runs the flat
        exchange among the ``n`` leaders over node-level partitions.
        AllGather: leaders exchange their node-slices, then fan the
        reassembled model out to their members.  With singleton groups
        the schedule *is* the flat exchange, message for message, so
        priced seconds match the flat wire pricing exactly.

        Fault recovery is the flat AllReduce convention, conservatively
        dense-priced: the recovered owner redoes its local work, every
        peer re-sends its piece, and the combine is redone.
        """
        k = self.num_executors
        if wire.num_executors != k:
            raise ValueError(f"wire carries {wire.num_executors} "
                             f"executors, cluster has {k}")
        if model_size < k:
            raise ValueError(
                f"cannot run {phase} with a model of size {model_size} "
                f"across {k} executors: each owner needs at least one "
                "coordinate (num_executors > model_size)")
        piece = model_size / k
        net = self.cluster.network
        compute = self.cluster.compute
        net_slow = self._net_slowdown(step)
        dense_send = (self.shuffle.round_seconds(self.cluster, k - 1,
                                                 piece) * net_slow)
        start = self.now
        n = len(wire.groups)
        is_leader = [False] * k
        members_of = [0] * k
        ingress_of = [0.0] * k  # leader's member-drain cost (RS)
        for group in wire.groups:
            leader = group[0]
            is_leader[leader] = True
            members_of[leader] = len(group) - 1
            ingress_of[leader] = sum(net.intra_transfer_seconds(v)
                                     for e in group[1:]
                                     for v in wire.intra_sends[e])
        finish: list[float] = []
        net_times: list[float] = []
        for i in range(k):
            label = executor_label(i)
            node = self.cluster.executors[i]
            intra_send = (sum(net.intra_transfer_seconds(v)
                              for v in wire.intra_sends[i]) * net_slow)
            segments: _Segments = []
            if is_leader[i]:
                cross_row = wire.cross_sends[i]
                cross_send = (net.fan_in_varied_seconds(cross_row)
                              * net_slow if cross_row else 0.0)
                if phase == "reduce_scatter":
                    # Drain the members, fold the group, then exchange
                    # node-slices with the other leaders and fold those.
                    intra_ingress = ingress_of[i] * net_slow
                    if intra_ingress > 0:
                        segments.append((intra_ingress, "recv"))
                    intra_combine = (compute.dense_op_seconds(
                        members_of[i] * model_size, node)
                        if members_of[i] else 0.0)
                    if intra_combine > 0:
                        segments.append((intra_combine, "aggregate"))
                    segments.append((cross_send, "send"))
                    if combine_coords > 0:
                        segments.append((compute.dense_op_seconds(
                            model_size / n * n, node), "aggregate"))
                    net_time = intra_ingress + cross_send
                else:
                    # Exchange node-slices, then fan the model out to
                    # the members over the intra tier.
                    segments.append((cross_send, "send"))
                    if intra_send > 0:
                        segments.append((intra_send, "send"))
                    net_time = cross_send + intra_send
            else:
                if phase == "reduce_scatter":
                    segments.append((intra_send, "send"))
                    net_time = intra_send
                else:
                    net_time = 0.0  # members only receive the fan-out
            if self.faults.enabled:
                combine = (compute.dense_op_seconds(combine_coords, node)
                           if combine_coords > 0 else 0.0)
                refill = (net.fan_in_seconds(k - 1, piece) * net_slow)
                retry: _Segments = ([] if redo_seconds is None
                                    else [(redo_seconds[i], "compute")])
                retry = retry + [(refill, "recv")]
                if combine > 0:
                    retry.append((combine, "aggregate"))
                end = self._attempt_run(i, start, segments, retry, step,
                                        phase)
            else:
                end = start
                for seconds, kind in segments:
                    if seconds > 0:
                        self.trace.add(label, end, end + seconds, kind,
                                       step)
                    end += seconds
            finish.append(end)
            net_times.append(net_time)
        barrier = max(finish, default=start)
        for i, end in enumerate(finish):
            self._wait_fill(executor_label(i), end, barrier, step)
        self._wait_fill(DRIVER_LABEL, start, barrier, step)
        self.comm_records.append(CommRecord(
            step=step, phase=phase, dense_values=wire.dense_values,
            wire_values=wire.wire_values,
            seconds=max(net_times, default=0.0),
            dense_seconds=dense_send))
        self.now = barrier
        return barrier - start

    def _switch_all_to_all(self, model_size: int, step: int, phase: str,
                           redo_seconds: list[float] | None,
                           wire: "SwitchWire") -> float:
        """One in-network collective round: all links stream at line
        rate through the switch, which folds chunks in its slot pool.

        Combine compute is absorbed by the switch (that is the point of
        in-network aggregation); running out of pool slots adds one
        latency per extra stall round and nothing else.  Fault recovery
        redoes the owner's local work and re-streams through the switch.
        """
        from ..collectives.innetwork import switch_stream_seconds
        k = self.num_executors
        if wire.num_senders != k:
            raise ValueError(f"wire carries {wire.num_senders} senders, "
                             f"cluster has {k}")
        if model_size < k:
            raise ValueError(
                f"cannot run {phase} with a model of size {model_size} "
                f"across {k} executors: each owner needs at least one "
                "coordinate (num_executors > model_size)")
        piece = model_size / k
        net = self.cluster.network
        net_slow = self._net_slowdown(step)
        dense_send = (self.shuffle.round_seconds(self.cluster, k - 1,
                                                 piece) * net_slow)
        start = self.now
        stream = (switch_stream_seconds(net, wire.values_per_link,
                                        wire.chunk_values,
                                        wire.pool_slots) * net_slow)
        kind = "send" if phase == "reduce_scatter" else "recv"
        finish: list[float] = []
        for i in range(k):
            label = executor_label(i)
            segments: _Segments = [(stream, kind)]
            if self.faults.enabled:
                retry: _Segments = ([] if redo_seconds is None
                                    else [(redo_seconds[i], "compute")])
                end = self._attempt_run(i, start, segments,
                                        retry + segments, step, phase)
            else:
                end = start + stream
                if stream > 0:
                    self.trace.add(label, start, end, kind, step,
                                   values=wire.values_per_link)
            finish.append(end)
        barrier = max(finish, default=start)
        for i, end in enumerate(finish):
            self._wait_fill(executor_label(i), end, barrier, step)
        self._wait_fill(DRIVER_LABEL, start, barrier, step)
        self.comm_records.append(CommRecord(
            step=step, phase=phase, dense_values=wire.dense_values,
            wire_values=wire.wire_values, seconds=stream,
            dense_seconds=dense_send))
        self.now = barrier
        return barrier - start

    def reduce_scatter_phase(self, model_size: int, step: int,
                             redo_seconds: list[float] | None = None,
                             wire: "CommStats | None" = None) -> float:
        """MLlib* phase 1: route partitions to owners and average them."""
        k = self.num_executors
        combine = model_size / k * k  # owner sums k pieces of its partition
        return self._all_to_all_phase(model_size, step, "reduce_scatter",
                                      combine, redo_seconds, wire=wire)

    def all_gather_phase(self, model_size: int, step: int,
                         redo_seconds: list[float] | None = None,
                         wire: "CommStats | None" = None) -> float:
        """MLlib* phase 2: owners broadcast their averaged partition."""
        return self._all_to_all_phase(model_size, step, "all_gather", 0.0,
                                      redo_seconds, wire=wire)

    # ------------------------------------------------------------------
    def checkpoint_phase(self, model_size: int, step: int) -> float:
        """Every executor writes its recovery state to stable storage.

        Priced as one size-``m`` transfer per executor (concurrent on
        their own links).  Future crash restores read the checkpoint back
        at the same cost instead of recomputing lineage.
        """
        duration = (self.cluster.network.transfer_seconds(model_size)
                    * self._net_slowdown(step))
        start = self.now
        end = start + duration
        if duration > 0:
            for i in range(self.num_executors):
                self.trace.add(executor_label(i), start, end, "checkpoint",
                               step)
            self._wait_fill(DRIVER_LABEL, start, end, step)
        self._restore_seconds = duration
        self.now = end
        return duration
