"""The BSP execution engine: simulated clock, barriers, trace emission.

:class:`BspEngine` is the reproduction's stand-in for a Spark driver
runtime.  Trainers describe each superstep as a sequence of *phases*; the
engine advances a single global simulated clock through them, samples
straggler slowdowns, enforces barrier-to-slowest semantics, and emits
:class:`~repro.cluster.trace.Span` records for the gantt chart.

Phases available (one per communication pattern in the paper):

* :meth:`compute_phase`       — executors do local work, barrier at the end;
* :meth:`tree_aggregate_phase`— MLlib's hierarchical aggregation to the driver;
* :meth:`driver_update_phase` — the driver applies an update to the model;
* :meth:`broadcast_phase`     — driver ships the model back to executors;
* :meth:`reduce_scatter_phase`/:meth:`all_gather_phase` — the two shuffle
  rounds MLlib* replaces the driver round-trip with.

The engine prices time only; the numerical work happens in the trainers.
"""

from __future__ import annotations

from ..cluster import ClusterSpec, Trace
from .aggregation import TreeAggregateModel
from .broadcast import BroadcastModel
from .shuffle import ShuffleModel

__all__ = ["BspEngine", "DRIVER_LABEL", "executor_label"]

DRIVER_LABEL = "driver"


def executor_label(index: int) -> str:
    """Human-readable label for executor ``index`` (0-based)."""
    return f"executor-{index + 1}"


class BspEngine:
    """Advances a simulated global clock through BSP phases.

    Parameters
    ----------
    cluster:
        The simulated cluster (nodes, network, costs, stragglers).
    tree:
        Aggregation model (depth 1 = flat, 2 = MLlib's treeAggregate).
    broadcast:
        Broadcast transport model.
    """

    def __init__(self, cluster: ClusterSpec,
                 tree: TreeAggregateModel | None = None,
                 broadcast: BroadcastModel | None = None) -> None:
        if cluster.num_executors < 1:
            raise ValueError("BSP engine needs at least one executor")
        self.cluster = cluster
        self.tree = tree if tree is not None else TreeAggregateModel()
        self.broadcast = broadcast if broadcast is not None else BroadcastModel()
        self.shuffle = ShuffleModel()
        self.trace = Trace()
        self.now = 0.0
        cluster.reset_rng()

    # ------------------------------------------------------------------
    @property
    def num_executors(self) -> int:
        return self.cluster.num_executors

    def _wait_fill(self, label: str, busy_until: float, barrier: float,
                   step: int) -> None:
        """Record idle time between a node's last activity and the barrier."""
        if barrier > busy_until + 1e-12:
            self.trace.add(label, busy_until, barrier, "wait", step)

    # ------------------------------------------------------------------
    def compute_phase(self, seconds_by_executor: list[float],
                      step: int) -> float:
        """Local computation on every executor, then a barrier.

        ``seconds_by_executor[i]`` is the *unperturbed* compute time for
        executor ``i``; the engine multiplies in the per-(node, step)
        straggler slowdown.  Returns the phase duration.
        """
        if len(seconds_by_executor) != self.num_executors:
            raise ValueError(
                f"expected {self.num_executors} durations, "
                f"got {len(seconds_by_executor)}")
        start = self.now
        finish_times: list[float] = []
        for i, base in enumerate(seconds_by_executor):
            if base < 0:
                raise ValueError("compute seconds must be non-negative")
            node = self.cluster.executors[i]
            duration = base * self.cluster.slowdown(node, step)
            end = start + duration
            if duration > 0:
                self.trace.add(executor_label(i), start, end, "compute", step)
            finish_times.append(end)
        barrier = max(finish_times, default=start)
        for i, end in enumerate(finish_times):
            self._wait_fill(executor_label(i), end, barrier, step)
        self._wait_fill(DRIVER_LABEL, start, barrier, step)
        self.now = barrier
        return barrier - start

    def tree_aggregate_phase(self, model_size: int, step: int,
                             messages_per_executor: int = 1) -> float:
        """Hierarchical aggregation of size-``m`` vectors to the driver.

        ``messages_per_executor`` > 1 models multiple waves of tasks per
        executor, each shipping its own vector (Section V-C).
        """
        timing = self.tree.timing(self.cluster, model_size,
                                  messages_per_executor)
        start = self.now
        send = self.cluster.network.transfer_seconds(model_size)

        level1_end = start + timing.aggregator_seconds
        aggregators = set(timing.groups)
        for i in range(self.num_executors):
            label = executor_label(i)
            if i in aggregators and timing.groups:
                self.trace.add(label, start, level1_end, "aggregate", step)
            else:
                self.trace.add(label, start, start + send, "send", step)
                self._wait_fill(label, start + send, level1_end, step)

        driver_end = level1_end + timing.driver_seconds
        self.trace.add(DRIVER_LABEL, level1_end, driver_end, "aggregate", step)
        for i in range(self.num_executors):
            self._wait_fill(executor_label(i), level1_end, driver_end, step)
        self.now = driver_end
        return driver_end - start

    def driver_update_phase(self, seconds: float, step: int) -> float:
        """The driver applies an update while every executor waits."""
        if seconds < 0:
            raise ValueError("update seconds must be non-negative")
        start = self.now
        end = start + seconds
        if seconds > 0:
            self.trace.add(DRIVER_LABEL, start, end, "update", step)
            for i in range(self.num_executors):
                self.trace.add(executor_label(i), start, end, "wait", step)
        self.now = end
        return seconds

    def broadcast_phase(self, model_size: int, step: int) -> float:
        """Driver ships the size-``m`` model to all executors."""
        duration = self.broadcast.seconds(self.cluster, model_size)
        start = self.now
        end = start + duration
        if duration > 0:
            self.trace.add(DRIVER_LABEL, start, end, "send", step)
            per_copy = duration / max(1, self.num_executors)
            for i in range(self.num_executors):
                # Serial broadcast drains copies one executor at a time,
                # producing the staircase visible in the paper's chart.
                recv_start = start + i * per_copy
                recv_end = recv_start + per_copy
                self._wait_fill(executor_label(i), start, recv_start, step)
                self.trace.add(executor_label(i), recv_start,
                               min(recv_end, end), "recv", step)
                self._wait_fill(executor_label(i), recv_end, end, step)
        self.now = end
        return duration

    # ------------------------------------------------------------------
    # MLlib* shuffle-based collective phases
    # ------------------------------------------------------------------
    def _all_to_all_phase(self, model_size: int, step: int, kind: str,
                          combine_coords: float) -> float:
        """One shuffle round: every executor exchanges model pieces.

        Each executor sends ``k - 1`` messages of ``m / k`` coordinates on
        its own uplink (concurrently with its peers) and then optionally
        combines received pieces (``combine_coords`` dense coordinate ops,
        straggler-free since it is tiny).
        """
        k = self.num_executors
        piece = model_size / k
        send_seconds = self.shuffle.round_seconds(self.cluster, k - 1, piece)
        start = self.now
        finish: list[float] = []
        for i in range(k):
            label = executor_label(i)
            node = self.cluster.executors[i]
            end = start + send_seconds
            if send_seconds > 0:
                self.trace.add(label, start, end, "send", step)
            if combine_coords > 0:
                combine = self.cluster.compute.dense_op_seconds(
                    combine_coords, node)
                self.trace.add(label, end, end + combine, "aggregate", step)
                end += combine
            finish.append(end)
        barrier = max(finish, default=start)
        for i, end in enumerate(finish):
            self._wait_fill(executor_label(i), end, barrier, step)
        self._wait_fill(DRIVER_LABEL, start, barrier, step)
        self.now = barrier
        return barrier - start

    def reduce_scatter_phase(self, model_size: int, step: int) -> float:
        """MLlib* phase 1: route partitions to owners and average them."""
        k = self.num_executors
        combine = model_size / k * k  # owner sums k pieces of its partition
        return self._all_to_all_phase(model_size, step, "send", combine)

    def all_gather_phase(self, model_size: int, step: int) -> float:
        """MLlib* phase 2: owners broadcast their averaged partition."""
        return self._all_to_all_phase(model_size, step, "send", 0.0)
