"""The BSP execution engine: simulated clock, barriers, trace emission.

:class:`BspEngine` is the reproduction's stand-in for a Spark driver
runtime.  Trainers describe each superstep as a sequence of *phases*; the
engine advances a single global simulated clock through them, samples
straggler slowdowns, enforces barrier-to-slowest semantics, and emits
:class:`~repro.cluster.trace.Span` records for the gantt chart.

Phases available (one per communication pattern in the paper):

* :meth:`compute_phase`       — executors do local work, barrier at the end;
* :meth:`tree_aggregate_phase`— MLlib's hierarchical aggregation to the driver;
* :meth:`driver_update_phase` — the driver applies an update to the model;
* :meth:`broadcast_phase`     — driver ships the model back to executors;
* :meth:`reduce_scatter_phase`/:meth:`all_gather_phase` — the two shuffle
  rounds MLlib* replaces the driver round-trip with;
* :meth:`checkpoint_phase`    — executors write recovery state to stable
  storage (only called when a checkpointing recovery policy is active).

The engine prices time only; the numerical work happens in the trainers.

**Fault injection.**  When constructed with a
:class:`~repro.cluster.faults.FailureModel`, every phase becomes
failure-aware: a crashed executor's work for the phase is voided at the
crash point, a ``recovery`` span prices the restart plus lineage
recomputation (or checkpoint restore), and the work is deterministically
redone — so failures stretch the clock and the trace but never change the
numerics.  Recovery semantics follow each phase's communication pattern:

* a crash during *compute* redoes only that executor's local work;
* a crash during *treeAggregate* additionally redoes the executor's local
  work before resending its one vector — the driver fan-in starts late by
  exactly the recovery delay;
* a crash during *Reduce-Scatter/AllGather* is the expensive one: the
  owner's received pieces are lost, so after restarting, **every peer
  re-sends its piece** (a serialized fan-in into the recovered node) and
  the barrier stalls all ``k`` executors until the owner catches up.  This
  asymmetry — AllReduce couples everyone to a lost owner, SendGradient
  does not — is what the fault benches measure.

With the default :class:`~repro.cluster.faults.NoFailures` model, phase
timing is bit-identical to the failure-free engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..cluster import ClusterSpec, Trace
from ..cluster.faults import (FailureModel, FailureRecord, NoFailures,
                              RecoveryError, RecoveryPolicy)
from .aggregation import TreeAggregateModel
from .broadcast import BroadcastModel
from .shuffle import ShuffleModel

if TYPE_CHECKING:  # avoid a runtime engine -> collectives import cycle
    from ..collectives.sparse import CommStats, TreeWire

__all__ = ["BspEngine", "CommRecord", "DRIVER_LABEL", "executor_label"]

DRIVER_LABEL = "driver"

#: (seconds, span-kind) work segments used by the failure-aware runner.
_Segments = list


def executor_label(index: int) -> str:
    """Human-readable label for executor ``index`` (0-based)."""
    return f"executor-{index + 1}"


@dataclass(frozen=True)
class CommRecord:
    """Wire accounting of one priced communication phase.

    ``dense_values``/``dense_seconds`` are what the phase would have moved
    and cost with dense messages; ``wire_values``/``seconds`` are what it
    actually moved and cost (identical when no sparse wire was supplied).
    ``seconds`` is the communication component only — the busiest link's
    priced transfer time, excluding combine compute and fault retries.
    """

    step: int
    phase: str
    dense_values: float
    wire_values: float
    seconds: float
    dense_seconds: float

    @property
    def compression(self) -> float:
        """Dense-over-wire volume ratio (1.0 for an empty exchange)."""
        if self.wire_values <= 0:
            return 1.0
        return self.dense_values / self.wire_values

    @property
    def speedup(self) -> float:
        """Dense-over-wire priced-seconds ratio (1.0 for a free phase)."""
        if self.seconds <= 0:
            return 1.0
        return self.dense_seconds / self.seconds


class BspEngine:
    """Advances a simulated global clock through BSP phases.

    Parameters
    ----------
    cluster:
        The simulated cluster (nodes, network, costs, stragglers).
    tree:
        Aggregation model (depth 1 = flat, 2 = MLlib's treeAggregate).
    broadcast:
        Broadcast transport model.
    faults:
        Failure model deciding which (step, phase, executor, attempt)
        tuples crash; defaults to :class:`NoFailures`.
    recovery:
        Retry budget and restore strategy applied on each crash.
    """

    def __init__(self, cluster: ClusterSpec,
                 tree: TreeAggregateModel | None = None,
                 broadcast: BroadcastModel | None = None,
                 faults: FailureModel | None = None,
                 recovery: RecoveryPolicy | None = None) -> None:
        if cluster.num_executors < 1:
            raise ValueError("BSP engine needs at least one executor")
        self.cluster = cluster
        self.tree = tree if tree is not None else TreeAggregateModel()
        self.broadcast = broadcast if broadcast is not None else BroadcastModel()
        self.shuffle = ShuffleModel()
        self.faults = faults if faults is not None else NoFailures()
        self.recovery = recovery if recovery is not None else RecoveryPolicy()
        #: Materialized crashes, in simulated-time order.
        self.failures: list[FailureRecord] = []
        #: Wire accounting, one record per priced communication phase.
        self.comm_records: list[CommRecord] = []
        self.trace = Trace()
        self.now = 0.0
        #: Per-executor cost of rebuilding a lost cached partition from
        #: lineage (set by the trainer once partition sizes are known).
        self._reload_seconds = [0.0] * cluster.num_executors
        #: Cost of restoring from the latest checkpoint (None until one
        #: has been written).
        self._restore_seconds: float | None = None
        cluster.reset_rng()

    # ------------------------------------------------------------------
    @property
    def num_executors(self) -> int:
        return self.cluster.num_executors

    def set_recovery_costs(self, reload_seconds: list[float]) -> None:
        """Install the per-executor lineage-recompute cost used on crashes."""
        if len(reload_seconds) != self.num_executors:
            raise ValueError(
                f"expected {self.num_executors} reload costs, "
                f"got {len(reload_seconds)}")
        if any(s < 0 for s in reload_seconds):
            raise ValueError("reload seconds must be non-negative")
        self._reload_seconds = [float(s) for s in reload_seconds]

    def _wait_fill(self, label: str, busy_until: float, barrier: float,
                   step: int) -> None:
        """Record idle time between a node's last activity and the barrier."""
        if barrier > busy_until + 1e-12:
            self.trace.add(label, busy_until, barrier, "wait", step)

    def _net_slowdown(self, step: int) -> float:
        """Transient network degradation factor (1.0 when faults are off)."""
        if not self.faults.enabled:
            return 1.0
        return self.faults.network_slowdown(step)

    # ------------------------------------------------------------------
    # failure-aware attempt runner
    # ------------------------------------------------------------------
    def _restore_cost(self, executor_index: int) -> float:
        """Downtime of one recovery: restart + (checkpoint read | lineage)."""
        base = self.recovery.restart_seconds
        if (self.recovery.strategy == "checkpoint"
                and self._restore_seconds is not None):
            return base + self._restore_seconds
        return base + self._reload_seconds[executor_index]

    def _attempt_run(self, executor_index: int, start: float,
                     segments: _Segments, retry_segments: _Segments,
                     step: int, phase: str) -> float:
        """Run one executor's phase work with crash/retry handling.

        ``segments``/``retry_segments`` are ``(seconds, kind)`` lists: the
        first attempt runs ``segments``; every post-recovery attempt runs
        ``retry_segments`` (which may prepend recomputation work).  Returns
        the executor's finish time; raises :class:`RecoveryError` once the
        retry budget is exhausted.
        """
        label = executor_label(executor_index)
        t = start
        attempt = 0
        current = segments
        while True:
            event = self.faults.crash_event(step, phase, executor_index,
                                            attempt)
            if event is None:
                for seconds, kind in current:
                    if seconds > 0:
                        self.trace.add(label, t, t + seconds, kind, step)
                    t += seconds
                return t
            total = sum(seconds for seconds, _ in current)
            crash_at = t + total * event.at_fraction
            cursor = t
            for seconds, kind in current:  # work done before the crash
                end = min(cursor + seconds, crash_at)
                if end > cursor:
                    self.trace.add(label, cursor, end, kind, step)
                cursor += seconds
                if cursor >= crash_at:
                    break
            self.failures.append(FailureRecord(
                node=label, step=step, phase=phase, time=crash_at,
                attempt=attempt))
            if attempt >= self.recovery.max_retries:
                raise RecoveryError(
                    f"{label} crashed in the {phase} phase of step {step} "
                    f"on attempt {attempt + 1}, exhausting the retry "
                    f"budget (max_retries={self.recovery.max_retries})")
            downtime = self._restore_cost(executor_index)
            if downtime > 0:
                self.trace.add(label, crash_at, crash_at + downtime,
                               "recovery", step)
            t = crash_at + downtime
            attempt += 1
            current = retry_segments

    # ------------------------------------------------------------------
    def compute_phase(self, seconds_by_executor: list[float],
                      step: int) -> float:
        """Local computation on every executor, then a barrier.

        ``seconds_by_executor[i]`` is the *unperturbed* compute time for
        executor ``i``; the engine multiplies in the per-(node, step)
        straggler slowdown.  A crashed executor recovers (restart +
        reload/restore) and redoes its work in full.  Returns the phase
        duration.
        """
        if len(seconds_by_executor) != self.num_executors:
            raise ValueError(
                f"expected {self.num_executors} durations, "
                f"got {len(seconds_by_executor)}")
        start = self.now
        finish_times: list[float] = []
        for i, base in enumerate(seconds_by_executor):
            if base < 0:
                raise ValueError("compute seconds must be non-negative")
            node = self.cluster.executors[i]
            duration = base * self.cluster.slowdown(node, step)
            if self.faults.enabled:
                segments = [(duration, "compute")]
                end = self._attempt_run(i, start, segments, segments,
                                        step, "compute")
            else:
                end = start + duration
                if duration > 0:
                    self.trace.add(executor_label(i), start, end,
                                   "compute", step)
            finish_times.append(end)
        barrier = max(finish_times, default=start)
        for i, end in enumerate(finish_times):
            self._wait_fill(executor_label(i), end, barrier, step)
        self._wait_fill(DRIVER_LABEL, start, barrier, step)
        self.now = barrier
        return barrier - start

    def tree_aggregate_phase(self, model_size: int, step: int,
                             messages_per_executor: int = 1,
                             redo_seconds: list[float] | None = None,
                             wire: "TreeWire | None" = None) -> float:
        """Hierarchical aggregation of size-``m`` vectors to the driver.

        ``messages_per_executor`` > 1 models multiple waves of tasks per
        executor, each shipping its own vector (Section V-C).
        ``redo_seconds[i]`` is the cost for executor ``i`` to recompute
        its vector after a crash (the in-memory gradient/model dies with
        the executor); the driver fan-in starts late by the recovery
        delay of the slowest failed sender.

        ``wire`` (a :class:`~repro.collectives.sparse.TreeWire`) prices
        each leaf/partial message at its sparse encoded size instead of
        ``model_size``.  Fault-recovery resends stay dense-priced (the
        recovered state is re-shipped conservatively).  With ``wire=None``
        timing is bit-identical to the dense engine.
        """
        timing = self.tree.timing(self.cluster, model_size,
                                  messages_per_executor, wire=wire)
        net_slow = self._net_slowdown(step)
        start = self.now
        net = self.cluster.network
        if wire is None:
            send_list = [net.transfer_seconds(model_size) * net_slow
                         ] * self.num_executors
            send_values = [float(model_size)] * self.num_executors
        else:
            send_list = [net.fan_in_varied_seconds(wire.leaf_values[i])
                         * net_slow for i in range(self.num_executors)]
            send_values = [float(sum(wire.leaf_values[i]))
                           for i in range(self.num_executors)]

        level1_end = start + timing.aggregator_seconds * net_slow
        aggregators = set(timing.groups)
        delay = 0.0
        finish_times: list[float] = []
        for i in range(self.num_executors):
            label = executor_label(i)
            is_aggregator = i in aggregators and bool(timing.groups)
            if is_aggregator:
                segments = [(level1_end - start, "aggregate")]
            else:
                segments = [(send_list[i], "send")]
            if self.faults.enabled:
                redo = ([] if redo_seconds is None
                        else [(redo_seconds[i], "compute")])
                end = self._attempt_run(i, start, segments,
                                        redo + segments, step, "aggregate")
                delay = max(delay, end - (start + segments[0][0]))
            else:
                end = start + segments[0][0]
                self.trace.add(label, start, end, segments[0][1], step,
                               values=(0.0 if is_aggregator
                                       else send_values[i]))
            finish_times.append(end)
            if not is_aggregator:
                self._wait_fill(label, end, level1_end, step)

        driver_start = level1_end + delay
        driver_end = driver_start + timing.driver_seconds * net_slow
        self.trace.add(DRIVER_LABEL, driver_start, driver_end,
                       "aggregate", step)
        for i in range(self.num_executors):
            busy_until = (max(level1_end, finish_times[i])
                          if self.faults.enabled else level1_end)
            self._wait_fill(executor_label(i), busy_until, driver_end, step)

        if wire is None:
            a = len(timing.groups)
            msgs = (self.num_executors * messages_per_executor if a == 0
                    else (self.num_executors - a) * messages_per_executor + a)
            dense_values = float(model_size) * msgs
            wire_values = dense_values
            dense_ingress = timing.ingress_seconds
        else:
            dense_values = wire.dense_values
            wire_values = wire.wire_values
            dense_ingress = self.tree.timing(
                self.cluster, model_size, messages_per_executor
            ).ingress_seconds
        self.comm_records.append(CommRecord(
            step=step, phase="tree_aggregate", dense_values=dense_values,
            wire_values=wire_values,
            seconds=timing.ingress_seconds * net_slow,
            dense_seconds=dense_ingress * net_slow))
        self.now = driver_end
        return driver_end - start

    def driver_update_phase(self, seconds: float, step: int) -> float:
        """The driver applies an update while every executor waits."""
        if seconds < 0:
            raise ValueError("update seconds must be non-negative")
        start = self.now
        end = start + seconds
        if seconds > 0:
            self.trace.add(DRIVER_LABEL, start, end, "update", step)
            for i in range(self.num_executors):
                self.trace.add(executor_label(i), start, end, "wait", step)
        self.now = end
        return seconds

    def broadcast_phase(self, model_size: int, step: int) -> float:
        """Driver ships the size-``m`` model to all executors."""
        duration = (self.broadcast.seconds(self.cluster, model_size)
                    * self._net_slowdown(step))
        start = self.now
        end = start + duration
        if duration > 0:
            self.trace.add(DRIVER_LABEL, start, end, "send", step)
            per_copy = duration / max(1, self.num_executors)
            for i in range(self.num_executors):
                # Serial broadcast drains copies one executor at a time,
                # producing the staircase visible in the paper's chart.
                recv_start = start + i * per_copy
                recv_end = recv_start + per_copy
                self._wait_fill(executor_label(i), start, recv_start, step)
                self.trace.add(executor_label(i), recv_start,
                               min(recv_end, end), "recv", step)
                self._wait_fill(executor_label(i), recv_end, end, step)
        self.now = end
        return duration

    # ------------------------------------------------------------------
    # MLlib* shuffle-based collective phases
    # ------------------------------------------------------------------
    def _all_to_all_phase(self, model_size: int, step: int, phase: str,
                          combine_coords: float,
                          redo_seconds: list[float] | None = None,
                          wire: "CommStats | None" = None) -> float:
        """One shuffle round: every executor exchanges model pieces.

        Each executor sends ``k - 1`` messages of ``m / k`` coordinates on
        its own uplink (concurrently with its peers) and then optionally
        combines received pieces (``combine_coords`` dense coordinate ops,
        straggler-free since it is tiny).

        ``wire`` (a :class:`~repro.collectives.sparse.CommStats`) prices
        each executor's sends at their actual encoded sizes
        (``wire.per_sender[i]``) instead of ``k - 1`` dense pieces; with
        ``wire=None`` the phase is bit-identical to the dense engine.

        A crash here is the costly AllReduce failure mode: the owner's
        received pieces die with it, so recovery redoes the owner's local
        work (``redo_seconds``), then **all peers re-send their pieces**
        — a ``k - 1`` serialized fan-in into the recovered node — before
        the combine is redone (the refill stays dense-priced: recovered
        state is re-shipped conservatively).  The closing barrier stalls
        every peer until the owner catches up.
        """
        k = self.num_executors
        if model_size < k:
            raise ValueError(
                f"cannot run {phase} with a model of size {model_size} "
                f"across {k} executors: each owner needs at least one "
                "coordinate (num_executors > model_size)")
        piece = model_size / k
        net_slow = self._net_slowdown(step)
        dense_send = (self.shuffle.round_seconds(self.cluster, k - 1, piece)
                      * net_slow)
        if wire is None:
            send_list = [dense_send] * k
            send_values = [(k - 1) * piece] * k
        else:
            if len(wire.per_sender) != k:
                raise ValueError(
                    f"wire carries {len(wire.per_sender)} senders, "
                    f"cluster has {k}")
            send_list = [self.shuffle.sender_seconds(self.cluster,
                                                     wire.per_sender[i])
                         * net_slow for i in range(k)]
            send_values = [float(sum(wire.per_sender[i])) for i in range(k)]
        start = self.now
        finish: list[float] = []
        for i in range(k):
            label = executor_label(i)
            node = self.cluster.executors[i]
            send_seconds = send_list[i]
            combine = (self.cluster.compute.dense_op_seconds(
                combine_coords, node) if combine_coords > 0 else 0.0)
            if self.faults.enabled:
                segments: _Segments = [(send_seconds, "send")]
                if combine > 0:
                    segments.append((combine, "aggregate"))
                refill = (self.cluster.network.fan_in_seconds(k - 1, piece)
                          * net_slow)
                retry: _Segments = ([] if redo_seconds is None
                                    else [(redo_seconds[i], "compute")])
                retry = retry + [(refill, "recv")]
                if combine > 0:
                    retry.append((combine, "aggregate"))
                end = self._attempt_run(i, start, segments, retry, step,
                                        phase)
            else:
                end = start + send_seconds
                if send_seconds > 0:
                    self.trace.add(label, start, end, "send", step,
                                   values=send_values[i])
                if combine > 0:
                    self.trace.add(label, end, end + combine, "aggregate",
                                   step)
                    end += combine
            finish.append(end)
        barrier = max(finish, default=start)
        for i, end in enumerate(finish):
            self._wait_fill(executor_label(i), end, barrier, step)
        self._wait_fill(DRIVER_LABEL, start, barrier, step)
        dense_values = float((k - 1) * model_size)
        self.comm_records.append(CommRecord(
            step=step, phase=phase,
            dense_values=wire.dense_values if wire is not None
            else dense_values,
            wire_values=wire.wire_values if wire is not None
            else dense_values,
            seconds=max(send_list, default=0.0),
            dense_seconds=dense_send))
        self.now = barrier
        return barrier - start

    def reduce_scatter_phase(self, model_size: int, step: int,
                             redo_seconds: list[float] | None = None,
                             wire: "CommStats | None" = None) -> float:
        """MLlib* phase 1: route partitions to owners and average them."""
        k = self.num_executors
        combine = model_size / k * k  # owner sums k pieces of its partition
        return self._all_to_all_phase(model_size, step, "reduce_scatter",
                                      combine, redo_seconds, wire=wire)

    def all_gather_phase(self, model_size: int, step: int,
                         redo_seconds: list[float] | None = None,
                         wire: "CommStats | None" = None) -> float:
        """MLlib* phase 2: owners broadcast their averaged partition."""
        return self._all_to_all_phase(model_size, step, "all_gather", 0.0,
                                      redo_seconds, wire=wire)

    # ------------------------------------------------------------------
    def checkpoint_phase(self, model_size: int, step: int) -> float:
        """Every executor writes its recovery state to stable storage.

        Priced as one size-``m`` transfer per executor (concurrent on
        their own links).  Future crash restores read the checkpoint back
        at the same cost instead of recomputing lineage.
        """
        duration = (self.cluster.network.transfer_seconds(model_size)
                    * self._net_slowdown(step))
        start = self.now
        end = start + duration
        if duration > 0:
            for i in range(self.num_executors):
                self.trace.add(executor_label(i), start, end, "checkpoint",
                               step)
            self._wait_fill(DRIVER_LABEL, start, end, step)
        self._restore_seconds = duration
        self.now = end
        return duration
