"""Partitioned datasets: the engine-facing view of training data.

A :class:`PartitionedDataset` pins each data partition to an executor, the
way a cached Spark RDD pins blocks to executors.  The assignment is static
for the whole training run (Spark re-uses cached partitions across
iterations; the paper assigns exactly one task per executor, see the
footnote in Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import ClusterSpec
from ..data import Partition, SparseDataset, partition_rows

__all__ = ["PartitionedDataset"]


@dataclass(frozen=True)
class PartitionedDataset:
    """Training data split across the executors of a cluster.

    Partition ``i`` lives on executor ``i`` (0-based executor index; the
    driver holds no data).
    """

    dataset: SparseDataset
    partitions: tuple[Partition, ...]

    def __post_init__(self) -> None:
        if not self.partitions:
            raise ValueError("need at least one partition")

    @classmethod
    def load(cls, dataset: SparseDataset, cluster: ClusterSpec,
             strategy: str = "random", seed: int = 0) -> "PartitionedDataset":
        """Algorithm 2's ``LoadData()``: one partition per executor."""
        k = cluster.num_executors
        if k < 1:
            raise ValueError("cluster has no executors to load data onto")
        parts = partition_rows(dataset, k, strategy=strategy, seed=seed)
        return cls(dataset=dataset, partitions=tuple(parts))

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    @property
    def n_features(self) -> int:
        return self.dataset.n_features

    def partition(self, executor_index: int) -> Partition:
        return self.partitions[executor_index]

    def total_nnz(self) -> int:
        return sum(p.nnz for p in self.partitions)
