"""Shared-memory partition store for the ``shm`` execution backend.

The process backend's per-task traffic is dominated by one pickle: the
broadcast model vector ``w`` (size ``m``) is serialized into every task
message, every superstep.  This module removes that copy — and the
one-time partition shipment — by placing both in POSIX shared memory
(:mod:`multiprocessing.shared_memory`):

* **partitions segment** (write-once): at install time the parent packs
  every partition's CSR arrays (``data``/``indices``/``indptr``) and its
  label vector into ONE segment, behind an offset table.  Workers map
  the segment and reconstruct each partition as *views* — zero copies,
  and the views are marked read-only so a task that mutated its shard
  would raise instead of corrupting the store for every other worker;
* **broadcast arena** (one writer, many readers): a second segment sized
  to one model vector.  Each superstep the parent writes ``w`` into it
  once; every task reads it through a read-only view.  Per-task pickle
  traffic shrinks to the task args and the returned local model.

Under the ``fork`` start method not even segment *attachment* happens
per worker: the parent installs a :class:`ShmWorkerState` into the
module-level :data:`_SHM_STORES` registry *before* creating the pool, so
children inherit the mapped views directly (the mapping is
``MAP_SHARED`` — parent writes to the arena are visible to children).
On spawn platforms the pool initializer attaches by segment name, once
per worker.  The registry is keyed by a process-unique store id, so
concurrently open backends (e.g. two scheduler jobs) never clobber each
other's partitions.

Bit-identity is free: the segments hold bit-exact copies of the arrays
the serial loop reads, float64 values round-trip through shared memory
untouched, and RNG state still travels by pickle exactly as in the
process backend.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable, Sequence

import numpy as np
import scipy.sparse as sp

from ..data import Partition

__all__ = ["ArraySpec", "PartitionSpec", "ShmLayout", "ShmStore",
           "ShmWorkerState", "BroadcastRef", "build_store",
           "attach_segment", "partitions_from_buffer", "new_store_id"]

#: 8-byte alignment for every packed array (float64-friendly).
_ALIGN = 8

#: Process-unique ids for :data:`_SHM_STORES` entries.
_STORE_IDS = itertools.count(1)

#: store id -> worker-side state.  Parent processes install here before
#: forking (children inherit the mapped views copy-on-write); spawn pool
#: initializers attach by name and install here too.
_SHM_STORES: dict[int, "ShmWorkerState"] = {}


def new_store_id() -> int:
    """A process-unique id for one backend's shared-memory store."""
    return next(_STORE_IDS)


@dataclass(frozen=True)
class ArraySpec:
    """Location of one packed array inside the partitions segment."""

    dtype: str
    shape: tuple[int, ...]
    offset: int

    def view(self, buf) -> np.ndarray:
        arr = np.ndarray(self.shape, dtype=np.dtype(self.dtype),
                         buffer=buf, offset=self.offset)
        arr.setflags(write=False)
        return arr


@dataclass(frozen=True)
class PartitionSpec:
    """One partition's CSR arrays + labels inside the segment."""

    index: int
    matrix_shape: tuple[int, int]
    data: ArraySpec
    indices: ArraySpec
    indptr: ArraySpec
    y: ArraySpec


@dataclass(frozen=True)
class ShmLayout:
    """Everything a worker needs to map the store (picklable, tiny)."""

    parts_name: str
    bcast_name: str
    #: Broadcast arena capacity in float64 values (= ``n_features``).
    bcast_capacity: int
    partitions: tuple[PartitionSpec, ...]


@dataclass(frozen=True)
class BroadcastRef:
    """Per-task marker standing in for an array living in the arena.

    The parent replaces a broadcast ``ndarray`` argument with one of
    these before pickling the task; the worker-side trampoline swaps it
    back for a read-only view of the arena's first ``length`` values.
    """

    length: int


class ShmWorkerState:
    """Worker-side (and, under fork, parent-side) view of the store."""

    def __init__(self, layout: ShmLayout, parts_buf, bcast_buf,
                 segments: tuple[shared_memory.SharedMemory, ...] = ()
                 ) -> None:
        self.layout = layout
        #: Keep attached segments alive for as long as views exist.
        self._segments = segments
        self.partitions = partitions_from_buffer(layout, parts_buf)
        arena = np.ndarray((layout.bcast_capacity,), dtype=np.float64,
                           buffer=bcast_buf)
        arena.setflags(write=False)
        self.bcast_view = arena

    def resolve_broadcast(self, ref: BroadcastRef) -> np.ndarray:
        if ref.length > self.layout.bcast_capacity:
            raise RuntimeError(
                f"broadcast of {ref.length} values does not fit the "
                f"{self.layout.bcast_capacity}-value arena")
        view = self.bcast_view[:ref.length]
        view.setflags(write=False)
        return view


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _plan_array(arr: np.ndarray, offset: int) -> tuple[ArraySpec, int]:
    offset = _aligned(offset)
    spec = ArraySpec(dtype=arr.dtype.str, shape=tuple(arr.shape),
                     offset=offset)
    return spec, offset + arr.nbytes


def partitions_from_buffer(layout: ShmLayout, buf) -> list[Partition]:
    """Reconstruct every partition as zero-copy views of ``buf``."""
    parts: list[Partition] = []
    for spec in layout.partitions:
        data = spec.data.view(buf)
        indices = spec.indices.view(buf)
        indptr = spec.indptr.view(buf)
        matrix = sp.csr_matrix((data, indices, indptr),
                               shape=spec.matrix_shape, copy=False)
        parts.append(Partition(index=spec.index, X=matrix,
                               y=spec.y.view(buf)))
    return parts


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting ownership.

    Python 3.13+ exposes ``track=False`` so the attach never reaches the
    resource tracker.  On older versions attaching registers the name a
    second time — but pool workers *share* the parent's tracker process
    (spawn ships the tracker fd in the preparation data), and the
    tracker's cache is a set, so the duplicate register is a no-op and
    the parent's eventual ``unlink`` keeps the books balanced.  Do NOT
    "fix" this by unregistering here: a child-side unregister cancels
    the parent's registration in the shared tracker and its unlink then
    trips a KeyError inside the tracker process.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13 fallback
        return shared_memory.SharedMemory(name=name)


class ShmStore:
    """Parent-side owner of the two segments.

    Created by :func:`build_store`; the owner must call :meth:`close`
    (idempotent) after the worker pool is gone — it unlinks both
    segments.
    """

    def __init__(self, layout: ShmLayout,
                 parts_seg: shared_memory.SharedMemory,
                 bcast_seg: shared_memory.SharedMemory) -> None:
        self.layout = layout
        self._parts_seg: shared_memory.SharedMemory | None = parts_seg
        self._bcast_seg: shared_memory.SharedMemory | None = bcast_seg
        arena = np.ndarray((layout.bcast_capacity,), dtype=np.float64,
                           buffer=bcast_seg.buf)
        #: Parent-side writable view of the broadcast arena.
        self.arena = arena

    def worker_state(self) -> ShmWorkerState:
        """Fork-inheritable worker state over the parent's own mapping."""
        if self._parts_seg is None or self._bcast_seg is None:
            raise RuntimeError("shared-memory store is closed")
        return ShmWorkerState(self.layout, self._parts_seg.buf,
                              self._bcast_seg.buf)

    def write_broadcast(self, value: np.ndarray) -> BroadcastRef:
        """Copy ``value`` into the arena once; return the task marker."""
        if self._bcast_seg is None:
            raise RuntimeError("shared-memory store is closed")
        if value.size > self.layout.bcast_capacity:
            raise RuntimeError(
                f"broadcast of {value.size} values does not fit the "
                f"{self.layout.bcast_capacity}-value arena")
        self.arena[:value.size] = value
        return BroadcastRef(length=int(value.size))

    def close(self) -> None:
        for seg in (self._parts_seg, self._bcast_seg):
            if seg is None:
                continue
            # The arena/view arrays may still reference the buffer; drop
            # our references before closing so the mmap can be released.
            try:
                seg.close()
            except BufferError:  # pragma: no cover - platform-dependent
                pass
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._parts_seg = None
        self._bcast_seg = None
        self.arena = np.empty(0, dtype=np.float64)


def build_store(partitions: Sequence[Partition]) -> ShmStore:
    """Pack ``partitions`` into shared memory; size the broadcast arena.

    The arena holds one model vector (``n_features`` float64 values) —
    every broadcast in the study is model-sized.
    """
    if not partitions:
        raise ValueError("cannot build a shared-memory store with no "
                         "partitions")
    n_features = int(partitions[0].X.shape[1])

    offset = 0
    specs: list[PartitionSpec] = []
    planned: list[tuple[ArraySpec, np.ndarray]] = []
    for part in partitions:
        arrays = {}
        for field in ("data", "indices", "indptr"):
            arr = np.ascontiguousarray(getattr(part.X, field))
            spec, offset = _plan_array(arr, offset)
            planned.append((spec, arr))
            arrays[field] = spec
        y = np.ascontiguousarray(part.y)
        y_spec, offset = _plan_array(y, offset)
        planned.append((y_spec, y))
        specs.append(PartitionSpec(
            index=part.index, matrix_shape=tuple(part.X.shape),
            data=arrays["data"], indices=arrays["indices"],
            indptr=arrays["indptr"], y=y_spec))

    parts_seg = shared_memory.SharedMemory(create=True,
                                           size=max(offset, _ALIGN))
    for spec, arr in planned:
        dest = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype),
                          buffer=parts_seg.buf, offset=spec.offset)
        dest[...] = arr
    bcast_seg = shared_memory.SharedMemory(
        create=True, size=max(n_features * 8, _ALIGN))

    layout = ShmLayout(parts_name=parts_seg.name, bcast_name=bcast_seg.name,
                       bcast_capacity=n_features,
                       partitions=tuple(specs))
    return ShmStore(layout, parts_seg, bcast_seg)


# ----------------------------------------------------------------------
# pool-side plumbing
# ----------------------------------------------------------------------
def install_worker_state(store_id: int, state: ShmWorkerState) -> None:
    """Install worker state (parent pre-fork, or spawn initializer)."""
    _SHM_STORES[store_id] = state


def discard_worker_state(store_id: int) -> None:
    _SHM_STORES.pop(store_id, None)


def attach_worker_state(store_id: int, layout: ShmLayout) -> None:
    """Spawn-platform pool initializer: attach both segments by name."""
    if store_id in _SHM_STORES:
        return
    parts_seg = attach_segment(layout.parts_name)
    bcast_seg = attach_segment(layout.bcast_name)
    _SHM_STORES[store_id] = ShmWorkerState(
        layout, parts_seg.buf, bcast_seg.buf,
        segments=(parts_seg, bcast_seg))


def run_on_shm_partition(store_id: int, fn: Callable[..., Any],
                         index: int, args: tuple) -> Any:
    """Pool-side trampoline: resolve the store, the partition, and any
    :class:`BroadcastRef` markers, then run the task."""
    state = _SHM_STORES.get(store_id)
    if state is None:
        raise RuntimeError(
            "shared-memory store is not installed in this worker "
            "process (pool initializer did not run)")
    resolved = tuple(state.resolve_broadcast(a)
                     if isinstance(a, BroadcastRef) else a
                     for a in args)
    return fn(state.partitions[index], *resolved)
