"""The shuffle operator: programmable all-to-all block exchange.

Spark's ``shuffle`` lets each map task route blocks to arbitrary reduce
tasks.  MLlib* builds its AllReduce on exactly this primitive (Section
IV-B2): Reduce-Scatter is a shuffle where executor ``r`` sends model
partition ``i`` to executor ``i``; AllGather is a shuffle where executor
``r`` sends its owned partition to everyone.

:class:`ShuffleModel` prices one shuffle round.  All executors send and
receive concurrently on their own links, so a round costs what the busiest
endpoint pays: ``messages * (alpha + size/bandwidth)`` — contrast with the
driver fan-in of :mod:`repro.engine.aggregation`, which serializes all ``k``
transfers through one node.

:func:`exchange` performs the actual data movement on real Python values so
the numerical trainers and the tests can verify routing correctness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TypeVar

from ..cluster import ClusterSpec

__all__ = ["ShuffleModel", "exchange"]

T = TypeVar("T")


@dataclass(frozen=True)
class ShuffleModel:
    """Cost model for balanced all-to-all shuffle rounds."""

    def round_seconds(self, cluster: ClusterSpec, messages_per_node: int,
                      values_per_message: float) -> float:
        """Cost of one round where every executor sends ``messages_per_node``
        messages of ``values_per_message`` coordinates.

        Uplink serialization applies per node, but nodes proceed in
        parallel, so the round costs one node's worth of transfers.
        """
        if messages_per_node < 0:
            raise ValueError("messages_per_node must be non-negative")
        net = cluster.network
        return messages_per_node * net.transfer_seconds(values_per_message)

    def sender_seconds(self, cluster: ClusterSpec,
                       message_values: tuple[float, ...] | list[float]) -> float:
        """Cost of one node's sends when its messages differ in size.

        The nnz-aware variant of :meth:`round_seconds`: sparse payloads
        make every message's wire size depend on its support, so a
        sender's uplink cost is the sum of its individually priced
        transfers.  With equal sizes this equals
        ``round_seconds(cluster, len(message_values), size)`` exactly.
        A node with nothing to send (a one-executor shuffle) costs 0.0.
        """
        if len(message_values) == 0:
            return 0.0
        return cluster.network.fan_in_varied_seconds(message_values)


def exchange(outboxes: list[dict[int, T]],
             num_workers: int | None = None) -> list[list[T]]:
    """Route messages: ``outboxes[src][dst] = payload`` -> inbox lists.

    Returns ``inboxes`` where ``inboxes[dst]`` collects payloads addressed
    to ``dst`` in ascending source order.  This is the data-plane of the
    shuffle; cost accounting is separate (:class:`ShuffleModel`).
    """
    k = num_workers if num_workers is not None else len(outboxes)
    if k < 1:
        raise ValueError("need at least one worker")
    inboxes: list[list[T]] = [[] for _ in range(k)]
    for src, outbox in enumerate(outboxes):
        for dst, payload in outbox.items():
            if not 0 <= dst < k:
                raise ValueError(
                    f"worker {src} addressed message to {dst}, but only "
                    f"{k} workers exist")
            inboxes[dst].append(payload)
    return inboxes
