"""Length-prefixed frame protocol for the ``socket`` backend.

One frame = a 5-byte header (``>BI``: kind byte + payload length) followed
by a pickled payload.  msgpack would be the natural payload codec for a
cross-language wire, but it is not part of this environment's toolchain,
and every object crossing this wire is Python-to-Python (ndarrays, CSR
partitions, RNG generators) — pickle protocol 5 is the measured
transport.

This module and :mod:`repro.engine.daemon` are the only places outside
``repro/perf`` allowed to read the wall clock (the determinism linter's
DET001 exemption is scoped to exactly these files): the whole point of
the socket backend is that each request's bytes-on-wire and elapsed wall
seconds are *measured*, so they can be compared against the simulated
:class:`~repro.cluster.network.NetworkModel` pricing.  An
:class:`Exchange` records one request/response pair; trainers never see
these — the backend aggregates them into a :func:`summarize` report
after the run, keeping the simulated clock backend-invariant.
"""

from __future__ import annotations

import pickle
import socket
import struct
import time
from dataclasses import dataclass, field
from typing import Any

__all__ = ["HELLO", "INSTALL", "TASK", "RESULT", "ERROR", "SHUTDOWN",
           "BYE", "ACK", "KIND_NAMES", "Exchange", "WireRecord",
           "FrameChannel", "RemoteTaskError", "summarize"]

#: Frame header: kind byte + big-endian uint32 payload length.
_HEADER = struct.Struct(">BI")

HELLO, INSTALL, TASK, RESULT, ERROR, SHUTDOWN, BYE, ACK = range(1, 9)

KIND_NAMES = {HELLO: "hello", INSTALL: "install", TASK: "task",
              RESULT: "result", ERROR: "error", SHUTDOWN: "shutdown",
              BYE: "bye", ACK: "ack"}

#: Generous ceiling on a single blocking socket operation; a wedged
#: daemon fails loudly instead of hanging the run.
DEFAULT_TIMEOUT = 300.0


class RemoteTaskError(RuntimeError):
    """A daemon's task raised and the original could not be re-raised."""


@dataclass(frozen=True)
class Exchange:
    """Measured facts about one request/response round trip."""

    bytes_out: int
    bytes_in: int
    seconds: float


@dataclass(frozen=True)
class WireRecord:
    """One accounted wire exchange, tagged for per-superstep grouping.

    ``compute_seconds`` is the daemon-side task execution time (reported
    inside the RESULT payload); ``roundtrip_seconds - compute_seconds``
    is therefore the measured communication cost of the exchange —
    serialization, TCP transit, and dispatch overhead.
    """

    label: str
    worker: int
    superstep: int
    bytes_out: int
    bytes_in: int
    roundtrip_seconds: float
    compute_seconds: float = 0.0

    @property
    def comm_seconds(self) -> float:
        return max(0.0, self.roundtrip_seconds - self.compute_seconds)


def encode(obj: Any) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def decode(payload: bytes) -> Any:
    return pickle.loads(payload)


class FrameChannel:
    """One connected socket speaking the frame protocol.

    Not thread-safe: the socket backend serializes access per daemon
    with a lock, which also guarantees at most one outstanding frame in
    each direction (strict request/response — no send/recv deadlock).
    """

    def __init__(self, sock: socket.socket,
                 timeout: float = DEFAULT_TIMEOUT) -> None:
        sock.settimeout(timeout)
        # Frames are tiny-header-then-payload; don't wait to coalesce.
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - transport without TCP opts
            pass
        self._sock = sock

    # -- raw framing ---------------------------------------------------
    def send(self, kind: int, obj: Any) -> int:
        """Send one frame; returns total bytes written."""
        payload = encode(obj)
        self._sock.sendall(_HEADER.pack(kind, len(payload)) + payload)
        return _HEADER.size + len(payload)

    def _recv_exact(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(min(remaining, 1 << 20))
            if not chunk:
                raise ConnectionError("peer closed the wire mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv(self) -> tuple[int, Any, int]:
        """Receive one frame; returns ``(kind, payload, total_bytes)``."""
        header = self._recv_exact(_HEADER.size)
        kind, length = _HEADER.unpack(header)
        payload = self._recv_exact(length) if length else b""
        return kind, decode(payload) if length else None, \
            _HEADER.size + length

    # -- measured round trips ------------------------------------------
    def request(self, kind: int, obj: Any) -> tuple[int, Any, Exchange]:
        """Send a frame, await the response, measure the round trip."""
        start = time.perf_counter()
        bytes_out = self.send(kind, obj)
        reply_kind, reply, bytes_in = self.recv()
        elapsed = time.perf_counter() - start
        return reply_kind, reply, Exchange(bytes_out=bytes_out,
                                           bytes_in=bytes_in,
                                           seconds=elapsed)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already torn down
            pass


def summarize(records: list[WireRecord]) -> dict[str, Any]:
    """Aggregate wire records into the measured-transport report.

    Returns totals plus a per-superstep breakdown (superstep 0 holds the
    one-time partition installation).  All numbers are *measured*, never
    simulated.
    """
    supersteps: dict[int, dict[str, float]] = {}
    for rec in records:
        row = supersteps.setdefault(rec.superstep, {
            "superstep": rec.superstep, "messages": 0, "bytes_out": 0,
            "bytes_in": 0, "roundtrip_seconds": 0.0,
            "compute_seconds": 0.0, "comm_seconds": 0.0})
        row["messages"] += 1
        row["bytes_out"] += rec.bytes_out
        row["bytes_in"] += rec.bytes_in
        row["roundtrip_seconds"] += rec.roundtrip_seconds
        row["compute_seconds"] += rec.compute_seconds
        row["comm_seconds"] += rec.comm_seconds
    ordered = [supersteps[key] for key in sorted(supersteps)]
    return {
        "messages": len(records),
        "bytes_out": sum(r.bytes_out for r in records),
        "bytes_in": sum(r.bytes_in for r in records),
        "roundtrip_seconds": sum(r.roundtrip_seconds for r in records),
        "compute_seconds": sum(r.compute_seconds for r in records),
        "comm_seconds": sum(r.comm_seconds for r in records),
        "install_bytes": sum(r.bytes_out + r.bytes_in for r in records
                             if r.label == "install"),
        "per_superstep": ordered,
    }


@dataclass
class WireLog:
    """Mutable accumulator the socket backend appends records to."""

    records: list[WireRecord] = field(default_factory=list)

    def add(self, record: WireRecord) -> None:
        self.records.append(record)

    def summary(self) -> dict[str, Any] | None:
        if not self.records:
            return None
        return summarize(self.records)
