"""GLM math substrate: losses, regularizers, objective, local solvers."""

from .dual import (DUAL_LOSSES, DUAL_SOLVERS, DualLoss, DualSolverSpec,
                   certified_gap, dual_local_solve, get_dual_loss,
                   make_dual_spec, require_dual_capable)
from .evaluation import BinaryMetrics, evaluate_binary, roc_auc
from .kernels import (apply_update_inplace, chunk_grad_touched,
                      chunk_margins, dual_epoch, dual_row_norms,
                      permuted_epoch, touched_columns)
from .lazy_update import ScaledVector
from .local_solvers import (LocalStats, apply_update, gd_step, mgd_epoch,
                            sample_batch, sgd_epoch, use_reference_kernels)
from .losses import (LOSSES, HingeLoss, LogisticLoss, Loss,
                     SquaredHingeLoss, SquaredLoss, get_loss)
from .model import (ARTIFACT_FORMAT, ARTIFACT_VERSION, ArtifactError,
                    GLMModel, read_artifact_meta)
from .objective import Objective
from .regularizers import (REGULARIZERS, L1Regularizer, L2Regularizer,
                           NoRegularizer, Regularizer, get_regularizer)
from .schedules import (ConstantLR, InvSqrtLR, InvTimeLR, LearningRate,
                        get_schedule)

__all__ = [
    "Loss", "HingeLoss", "LogisticLoss", "SquaredHingeLoss", "SquaredLoss",
    "get_loss", "LOSSES",
    "BinaryMetrics", "evaluate_binary", "roc_auc",
    "Regularizer", "NoRegularizer", "L1Regularizer", "L2Regularizer",
    "get_regularizer", "REGULARIZERS",
    "Objective", "GLMModel", "ScaledVector",
    "ArtifactError", "ARTIFACT_FORMAT", "ARTIFACT_VERSION",
    "read_artifact_meta",
    "LocalStats", "gd_step", "mgd_epoch", "sgd_epoch", "sample_batch",
    "apply_update", "use_reference_kernels",
    "apply_update_inplace", "chunk_grad_touched", "chunk_margins",
    "permuted_epoch", "touched_columns", "dual_epoch", "dual_row_norms",
    "DualLoss", "DualSolverSpec", "DUAL_LOSSES", "DUAL_SOLVERS",
    "get_dual_loss", "make_dual_spec", "require_dual_capable",
    "dual_local_solve", "certified_gap",
    "LearningRate", "ConstantLR", "InvSqrtLR", "InvTimeLR", "get_schedule",
]
