"""CoCoA-family dual coordinate-ascent local solvers.

The primal problem every trainer minimizes is (paper Equation 1 with L2)

    P(w) = (1/n) sum_i l(x_i . w, y_i) + (lambda/2) ||w||^2 .

Its Fenchel dual assigns one variable ``alpha_i`` per training row:

    D(alpha) = -(1/n) sum_i l*(-alpha_i, y_i) - (lambda/2) ||w(alpha)||^2,
    w(alpha) = (1 / (lambda n)) X^T alpha,

where ``l*`` is the convex conjugate of the loss in its margin argument.
Weak duality makes ``P(w) - D(alpha)`` a *certificate*: it upper-bounds
the primal suboptimality ``P(w) - P(w*)`` for any iterate ``w`` and any
feasible ``alpha``, no tuning or reference run required.

Duenner et al. (1612.01437) show that on Spark the lever that matters is
how much progress the local solver makes *between* communication
barriers, not how models are shipped.  The CoCoA family exploits the
dual's block structure: worker ``k`` owns the dual variables of its
partition's rows and runs ``H`` epochs of SDCA (stochastic dual
coordinate ascent) against a local copy of the shared iterate, then
ships only the induced model *delta*

    delta_w_k = (1 / (lambda n)) X_k^T delta_alpha_k .

The outer aggregation is controlled by ``gamma``:

* **CoCoA** (Jaggi et al.): ``gamma = 1/K`` — deltas are *averaged*;
  safe with the unscaled local subproblem (``sigma' = 1``).
* **CoCoA+** (Ma et al.): ``gamma = 1`` — deltas are *added*; the local
  subproblem's quadratic term is scaled by ``sigma' = gamma * K`` so
  that adding K independent block updates cannot overshoot.

Both workers and the driver apply the *same* ``gamma`` (worker ``k``
commits ``alpha_k + gamma * delta_alpha_k``), so the primal-dual mapping
``w ~ w(alpha)`` is preserved in exact arithmetic for any gamma.

The per-coordinate subproblem (drop constants, delta in the direction of
``alpha_i``) is

    minimize_d  l*(-(alpha_i + d), y_i) + margin_i * d + (q_i / 2) d^2,
    q_i = sigma' ||x_i||^2 / (lambda n),

solved in closed form for hinge / squared hinge / squared loss and by a
safeguarded 1-D Newton iteration for logistic loss.  Every update is a
plain float expression, so the solver is deterministic and — like the
primal epoch solvers — bit-identical across execution backends.

The hot inner loop lives in :func:`repro.glm.kernels.dual_epoch`
(raw-CSR row gather, cached row norms, in-place shared-vector update);
the retained pre-optimization body is
:func:`repro.glm.reference.dual_epoch_reference` and
:func:`repro.glm.use_reference_kernels` switches between them — both
paths are bit-identical (``tests/test_glm_dual.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .objective import Objective

__all__ = ["DualLoss", "HingeDual", "SquaredHingeDual", "SquaredDual",
           "LogisticDual", "DUAL_LOSSES", "get_dual_loss",
           "DualSolverSpec", "make_dual_spec", "require_dual_capable",
           "dual_local_solve", "certified_gap", "DUAL_SOLVERS"]

#: Solver-family names accepted by ``TrainerConfig.local_solver`` beyond
#: the primal default ``mgd``.
DUAL_SOLVERS = ("cocoa", "cocoa+")

#: Newton iteration cap for the logistic 1-D subproblem.  The iteration
#: is safeguarded (bisection fallback keeps the iterate inside the open
#: domain), converges quadratically, and breaks early once the step
#: stalls — the cap is a determinism-preserving backstop, not a tuning
#: knob.
_LOGISTIC_NEWTON_STEPS = 32

#: Open-interval clamp for the logistic dual variable ``b = alpha * y``:
#: the entropy conjugate's derivative is infinite at 0 and 1, so the
#: optimizer never sits exactly on a boundary.
_LOGISTIC_EPS = 1e-12


class DualLoss:
    """Conjugate ``l*`` and SDCA coordinate update for one loss.

    ``conjugate`` evaluates ``l*(-alpha_i, y_i)`` elementwise (the term
    the dual objective sums); ``delta`` solves the one-dimensional
    subproblem described in the module docstring and returns the change
    to ``alpha_i``.  ``q`` is the coordinate's curvature
    ``sigma' ||x_i||^2 / (lambda n)`` and ``margin`` is ``x_i . u`` at
    the solver's current local iterate.
    """

    name: str = "abstract"

    def conjugate(self, alpha: np.ndarray, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def delta(self, margin: float, alpha: float, y: float,
              q: float) -> float:
        raise NotImplementedError


class HingeDual(DualLoss):
    """Hinge: ``l*(-alpha) = -alpha y`` on the box ``alpha y in [0, 1]``.

    The classic SDCA-SVM update: unconstrained optimum
    ``(1 - y margin) / q`` along ``y``, clipped to the box.
    """

    name = "hinge"

    def conjugate(self, alpha: np.ndarray, y: np.ndarray) -> np.ndarray:
        return -alpha * y

    def delta(self, margin: float, alpha: float, y: float,
              q: float) -> float:
        b = alpha * y
        if q > 0.0:
            step = (1.0 - y * margin) / q
        else:
            # Empty row: the dual term grows linearly in b, so push to
            # the upper box corner.
            step = 1.0 - b
        step = min(max(step, -b), 1.0 - b)
        return step * y


class SquaredHingeDual(DualLoss):
    """Squared hinge: ``l*(-alpha) = b^2/2 - b`` for ``b = alpha y >= 0``."""

    name = "squared_hinge"

    def conjugate(self, alpha: np.ndarray, y: np.ndarray) -> np.ndarray:
        b = alpha * y
        return 0.5 * b * b - b

    def delta(self, margin: float, alpha: float, y: float,
              q: float) -> float:
        b = alpha * y
        step = (1.0 - y * margin - b) / (1.0 + q)
        step = max(step, -b)
        return step * y


class SquaredDual(DualLoss):
    """Squared: ``l*(-alpha) = alpha^2/2 - alpha y``, unconstrained."""

    name = "squared"

    def conjugate(self, alpha: np.ndarray, y: np.ndarray) -> np.ndarray:
        return 0.5 * alpha * alpha - alpha * y

    def delta(self, margin: float, alpha: float, y: float,
              q: float) -> float:
        return (y - margin - alpha) / (1.0 + q)


class LogisticDual(DualLoss):
    """Logistic: negative-entropy conjugate on ``b = alpha y in (0, 1)``.

    ``l*(-alpha) = b log b + (1-b) log(1-b)``.  The coordinate
    subproblem has no closed form; :meth:`delta` runs a safeguarded
    Newton iteration on the strictly increasing derivative

        g(b') = log(b' / (1 - b')) + y margin + q (b' - b)

    bracketing the unique root in ``(0, 1)`` and falling back to
    bisection whenever a Newton step leaves the bracket.  The iteration
    is a fixed sequence of float operations — deterministic, so dual
    runs stay bit-identical across backends.
    """

    name = "logistic"

    def conjugate(self, alpha: np.ndarray, y: np.ndarray) -> np.ndarray:
        b = np.clip(alpha * y, 0.0, 1.0)
        out = np.zeros_like(b)
        inner = (b > 0.0) & (b < 1.0)
        bi = b[inner]
        out[inner] = bi * np.log(bi) + (1.0 - bi) * np.log1p(-bi)
        return out

    def delta(self, margin: float, alpha: float, y: float,
              q: float) -> float:
        b = alpha * y
        lo, hi = _LOGISTIC_EPS, 1.0 - _LOGISTIC_EPS
        c = y * margin - q * b
        # g(lo) < 0 < g(hi) always (the log term dominates near the
        # boundaries), so the root is bracketed from the start.
        t = min(max(b, lo), hi)
        for _ in range(_LOGISTIC_NEWTON_STEPS):
            g = np.log(t / (1.0 - t)) + c + q * t
            if g > 0.0:
                hi = t
            else:
                lo = t
            curvature = 1.0 / t + 1.0 / (1.0 - t) + q
            t_new = t - g / curvature
            if not lo < t_new < hi:
                t_new = 0.5 * (lo + hi)
            if abs(t_new - t) <= 1e-16:
                t = t_new
                break
            t = t_new
        return (t - b) * y


DUAL_LOSSES: dict[str, type[DualLoss]] = {
    HingeDual.name: HingeDual,
    SquaredHingeDual.name: SquaredHingeDual,
    SquaredDual.name: SquaredDual,
    LogisticDual.name: LogisticDual,
}


def get_dual_loss(name: str) -> DualLoss:
    """Instantiate the dual (conjugate + update rule) of a loss by name."""
    try:
        return DUAL_LOSSES[name]()
    except KeyError:
        raise KeyError(
            f"loss {name!r} has no implemented conjugate; dual solvers "
            f"support {sorted(DUAL_LOSSES)}") from None


def require_dual_capable(objective: Objective) -> None:
    """Raise ``ValueError`` unless ``objective`` admits the dual solver.

    The CoCoA derivation needs a strongly convex regularizer (L2 with
    ``lambda > 0``) and a loss with an implemented conjugate.
    """
    reg = objective.regularizer
    if reg.name != "l2" or reg.strength <= 0.0:
        raise ValueError(
            "dual local solvers (cocoa/cocoa+) require l2 regularization "
            f"with positive strength; objective is {objective.describe()}")
    if objective.loss.name not in DUAL_LOSSES:
        raise ValueError(
            f"loss {objective.loss.name!r} has no implemented conjugate; "
            f"dual solvers support {sorted(DUAL_LOSSES)}")


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DualSolverSpec:
    """Per-run constants of the CoCoA outer loop.

    ``n_total`` is the *global* row count (the ``n`` in the dual's
    ``1/(lambda n)`` scaling — every worker must use the same one),
    ``epochs`` is the local-iteration budget ``H`` (SDCA passes over the
    worker's dual block per superstep), ``gamma`` the aggregation weight
    applied identically to the shipped deltas and the retained dual
    variables, and ``sigma_prime`` the local subproblem scaling
    (``gamma * K``; 1 for CoCoA averaging, K for CoCoA+ adding).
    """

    n_total: int
    epochs: int
    gamma: float
    sigma_prime: float

    def __post_init__(self) -> None:
        if self.n_total < 1:
            raise ValueError("n_total must be at least 1")
        if self.epochs < 1:
            raise ValueError("epochs must be at least 1")
        if self.gamma <= 0.0:
            raise ValueError("gamma must be positive")
        if self.sigma_prime <= 0.0:
            raise ValueError("sigma_prime must be positive")


def make_dual_spec(solver: str, gamma: float | None, local_iters: int,
                   n_total: int, num_workers: int) -> DualSolverSpec:
    """Resolve config knobs into a :class:`DualSolverSpec`.

    ``gamma=None`` picks the family default — ``1/K`` (averaging) for
    ``cocoa``, ``1`` (adding) for ``cocoa+``.  An explicit gamma
    overrides it; ``sigma' = gamma * K`` keeps the local subproblems
    safe for any choice in ``(0, 1]``.
    """
    if solver not in DUAL_SOLVERS:
        raise ValueError(
            f"unknown dual solver {solver!r}; expected one of "
            f"{list(DUAL_SOLVERS)}")
    if num_workers < 1:
        raise ValueError("need at least one worker")
    if gamma is None:
        gamma = 1.0 / num_workers if solver == "cocoa" else 1.0
    return DualSolverSpec(n_total=n_total, epochs=local_iters, gamma=gamma,
                          sigma_prime=gamma * num_workers)


# ----------------------------------------------------------------------
def dual_local_solve(objective: Objective, w: np.ndarray,
                     X: sp.csr_matrix, y: np.ndarray, alpha: np.ndarray,
                     spec: DualSolverSpec, rng: np.random.Generator):
    """Run ``spec.epochs`` SDCA passes over one worker's dual block.

    Starting from the shared iterate ``w`` and the worker's dual
    variables ``alpha`` (one per local row), performs ``H`` permuted
    epochs of coordinate ascent against a private local copy of ``w``,
    then materializes

    * ``delta_w``  — ``gamma / (lambda n) * X^T delta_alpha``, the
      gamma-scaled model delta to be *summed* across workers, and
    * ``new_alpha`` — ``alpha + gamma * delta_alpha``, the worker's
      committed dual block (same gamma, so the primal-dual mapping is
      preserved).

    Returns ``(delta_w, new_alpha, stats)`` with
    :class:`~repro.glm.local_solvers.LocalStats` sized like the primal
    solvers' (nnz touched twice per visit, one dense pass for the local
    iterate copy and one for the delta materialization).

    Inputs are never mutated — ``w`` may be a read-only shared-memory or
    sanitizer-frozen view.  Epoch permutations are drawn from ``rng`` in
    the dispatcher so the fast and reference kernels consume identical
    RNG streams.
    """
    from . import reference
    from .kernels import dual_epoch, dual_row_norms
    from .local_solvers import _KERNEL_MODE, LocalStats

    require_dual_capable(objective)
    n = X.shape[0]
    if alpha.shape != (n,):
        raise ValueError(
            f"dual block has shape {alpha.shape}, expected ({n},) to "
            "match the partition's rows")
    lambda_n = objective.regularizer.strength * spec.n_total
    scale = spec.sigma_prime / lambda_n
    dloss = get_dual_loss(objective.loss.name)

    u = np.array(w, dtype=np.float64, copy=True)
    acur = np.array(alpha, dtype=np.float64, copy=True)
    dalpha = np.zeros(n)
    stats = LocalStats(dense_ops=w.shape[0])
    use_reference = _KERNEL_MODE[0] == "reference"
    if not use_reference:
        norms = dual_row_norms(X.indptr, X.data, n)
    for _ in range(spec.epochs):
        order = rng.permutation(n)
        if use_reference:
            nnz, updates = reference.dual_epoch_reference(
                X, y, u, acur, dalpha, order, scale, dloss.delta)
        else:
            nnz, updates = dual_epoch(X.indptr, X.indices, X.data, y, u,
                                      acur, dalpha, order, scale, norms,
                                      dloss.delta)
        stats.nnz_processed += nnz
        stats.n_updates += updates
    # One sparse pass + one dense write materialize the shipped delta.
    delta_w = np.asarray(X.T @ dalpha).ravel() / lambda_n
    stats.nnz_processed += 2 * int(X.nnz)
    stats.dense_ops += w.shape[0]
    new_alpha = alpha + spec.gamma * dalpha
    return spec.gamma * delta_w, new_alpha, stats


# ----------------------------------------------------------------------
def certified_gap(objective: Objective, w: np.ndarray, partitions,
                  alphas, dataset) -> tuple[float, float, float]:
    """Duality-gap certificate assembled from per-worker dual blocks.

    Returns ``(gap, primal, dual)`` where ``primal = P(w)`` is evaluated
    on the full dataset (the same value the training history records),
    ``dual = D(alpha)`` is computed from the concatenated blocks via the
    mapping ``w(alpha)`` accumulated in partition order, and
    ``gap = primal - dual >= 0`` by weak duality — a certified upper
    bound on ``P(w) - P(w*)`` regardless of float drift between ``w``
    and ``w(alpha)``.  Monitoring only: costs no simulated time and runs
    in the parent, so it is backend-invariant.
    """
    require_dual_capable(objective)
    if len(partitions) != len(alphas):
        raise ValueError(
            f"{len(alphas)} dual blocks for {len(partitions)} partitions")
    lam = objective.regularizer.strength
    n_total = sum(part.X.shape[0] for part in partitions)
    accum = np.zeros(w.shape[0])
    conjugate_total = 0.0
    for part, alpha in zip(partitions, alphas):
        accum += np.asarray(part.X.T @ alpha).ravel()
        conjugate_total += objective.conjugate_sum(alpha, part.y)
    w_alpha = accum / (lam * n_total)
    dual = objective.dual_value(conjugate_total, n_total, w_alpha)
    primal = objective.value(w, dataset.X, dataset.y)
    return primal - dual, primal, dual
