"""Binary-classification evaluation metrics.

The paper evaluates training by objective value (the systems question),
but a library users adopt also needs model-quality metrics.  All metrics
take {-1, +1} labels; threshold-based metrics classify by the sign of the
margin, and :func:`roc_auc` ranks by raw margins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BinaryMetrics", "evaluate_binary", "roc_auc"]


@dataclass(frozen=True)
class BinaryMetrics:
    """Confusion-matrix summary of one evaluation."""

    accuracy: float
    precision: float
    recall: float
    f1: float
    auc: float
    positives: int
    negatives: int

    def describe(self) -> str:
        return (f"acc={self.accuracy:.3f} p={self.precision:.3f} "
                f"r={self.recall:.3f} f1={self.f1:.3f} auc={self.auc:.3f}")


def roc_auc(margins: np.ndarray, y: np.ndarray) -> float:
    """Area under the ROC curve via the rank-sum (Mann-Whitney) identity.

    Ties in the margins contribute half, which matches the trapezoidal
    ROC construction.  Returns 0.5 when either class is absent (no
    ranking information).
    """
    margins = np.asarray(margins, dtype=np.float64)
    y = np.asarray(y)
    pos = margins[y > 0]
    neg = margins[y < 0]
    if pos.size == 0 or neg.size == 0:
        return 0.5
    # Rank-sum with midranks for ties.
    combined = np.concatenate([pos, neg])
    order = np.argsort(combined, kind="mergesort")
    ranks = np.empty_like(combined)
    ranks[order] = np.arange(1, combined.size + 1, dtype=np.float64)
    # Average ranks over tie groups.
    sorted_vals = combined[order]
    i = 0
    while i < sorted_vals.size:
        j = i
        while j + 1 < sorted_vals.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        if j > i:
            mid = 0.5 * (i + j) + 1.0
            ranks[order[i:j + 1]] = mid
        i = j + 1
    rank_sum_pos = float(ranks[:pos.size].sum())
    u = rank_sum_pos - pos.size * (pos.size + 1) / 2.0
    return float(u / (pos.size * neg.size))


def evaluate_binary(margins: np.ndarray, y: np.ndarray) -> BinaryMetrics:
    """Full metric set from raw margins and {-1, +1} labels."""
    margins = np.asarray(margins, dtype=np.float64)
    y = np.asarray(y)
    if margins.shape != y.shape:
        raise ValueError("margins and labels must have the same shape")
    labels = np.unique(y)
    if not np.all(np.isin(labels, (-1.0, 1.0))):
        raise ValueError("labels must be in {-1, +1}")

    preds = np.where(margins >= 0, 1.0, -1.0)
    tp = int(np.sum((preds > 0) & (y > 0)))
    fp = int(np.sum((preds > 0) & (y < 0)))
    fn = int(np.sum((preds < 0) & (y > 0)))
    positives = int(np.sum(y > 0))
    negatives = int(np.sum(y < 0))

    accuracy = float(np.mean(preds == y))
    precision = tp / (tp + fp) if (tp + fp) else 0.0
    recall = tp / (tp + fn) if (tp + fn) else 0.0
    f1 = (2 * precision * recall / (precision + recall)
          if (precision + recall) else 0.0)
    return BinaryMetrics(accuracy=accuracy, precision=precision,
                         recall=recall, f1=f1,
                         auc=roc_auc(margins, y),
                         positives=positives, negatives=negatives)
