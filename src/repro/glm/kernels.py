"""Fast CSR kernels for the local solvers' hot loops.

Profiling the SendModel epoch loop (``sgd_epoch`` with small chunks on a
wide model — the WX regime: 51k features, ~11 nnz per row, chunk size 64)
shows four dominant costs that are pure implementation overhead:

1. **Per-batch fancy indexing** — ``X[rows]`` with a random ``rows``
   gathers scattered CSR rows on *every* batch.  Permuting the epoch once
   (``Xp = X[order]``) and slicing contiguous ranges ``Xp[a:b]`` yields
   byte-identical chunk matrices (``X[order][a:b] == X[order[a:b]]``) at a
   fraction of the cost.
2. **Per-chunk matrix construction** — even a contiguous ``Xp[a:b]``
   slice builds a fresh ``csr_matrix`` (index-dtype checks, shape checks,
   format validation) thousands of times per epoch.  The lazy SGD loop
   therefore works on the raw ``indptr``/``indices``/``data`` arrays:
   a chunk is just the slice ``indices[indptr[a]:indptr[b]]`` and its
   margins are a product + segmented sum (:func:`chunk_margins`) — scipy's
   CSR matvec accumulates each row's products in the same order, so the
   result is bit-identical.
3. **Dense per-chunk gradients** — ``Xc.T @ factor`` materializes an
   ``m``-length array per chunk even though only the chunk's column
   support (``nnz`` entries) is nonzero.  :func:`chunk_grad_touched`
   gathers exactly the touched coordinates; scipy's CSC matvec and
   ``np.bincount`` both accumulate each output coordinate's contributions
   in row-ascending order, so the sums are bit-identical.
4. **Fresh model arrays per update** — ``apply_update`` allocates up to
   four ``m``-length temporaries per batch.  :func:`apply_update_inplace`
   reuses the iterate and one scratch buffer while performing the exact
   same float operations in the exact same order.

Every kernel here is verified bit-identical to the retained reference
implementation (:mod:`repro.glm.reference`) by the property tests in
``tests/test_perf_kernels.py`` — these are wall-clock optimizations only;
the numerics (and therefore the golden convergence values) are unchanged.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .objective import Objective

__all__ = ["permuted_epoch", "touched_columns", "chunk_margins",
           "chunk_grad_touched", "apply_update_inplace", "dual_row_norms",
           "dual_epoch"]


def permuted_epoch(X: sp.csr_matrix, y: np.ndarray, order: np.ndarray,
                   shuffle: bool) -> tuple[sp.csr_matrix, np.ndarray]:
    """Materialize the epoch's row order once.

    Returns ``(X[order], y[order])`` so batch ``t`` is the contiguous
    slice ``Xp[t*b:(t+1)*b]`` — bit-identical to the reference's per-batch
    gather ``X[order[t*b:(t+1)*b]]``.  When ``shuffle`` is off the order
    is the identity and the inputs are returned as-is (no copy).
    """
    if not shuffle:
        return X, y
    return X[order], y[order]


def touched_columns(indices: np.ndarray,
                    single_row: bool = False) -> np.ndarray:
    """Sorted unique column indices of a chunk (``np.unique`` replacement).

    ``indices`` is the chunk's raw CSR index slice.  ``np.unique``
    re-derives sortedness it could assume: a single canonical-format CSR
    row already *is* sorted and duplicate-free (pass ``single_row=True``
    to skip the sort entirely), and for multi-row chunks a plain sort +
    neighbour-diff mask skips unique's generic machinery.  Output is
    bit-identical to ``np.unique(indices)``.
    """
    if indices.size == 0:
        return indices[:0]
    if single_row:
        return indices
    s = np.sort(indices)
    keep = np.empty(s.size, dtype=bool)
    keep[0] = True
    np.not_equal(s[1:], s[:-1], out=keep[1:])
    return s[keep]


def chunk_margins(indices: np.ndarray, data: np.ndarray,
                  row_nnz: np.ndarray, v: np.ndarray,
                  n_rows: int) -> np.ndarray:
    """Row margins ``Xc @ v`` computed from the chunk's raw CSR arrays.

    Bit-identical to scipy's CSR matvec: both form the products
    ``data[k] * v[indices[k]]`` and accumulate them per row in storage
    (row-major, column-ascending) order — ``np.bincount`` adds its
    weights in occurrence order, which is the same sequence of float
    additions.  Avoids constructing a ``csr_matrix`` per chunk.
    """
    if indices.size == 0:
        return np.zeros(n_rows)
    rows_local = np.repeat(np.arange(n_rows), row_nnz)
    return np.bincount(rows_local, weights=data * v[indices],
                       minlength=n_rows)


def chunk_grad_touched(indices: np.ndarray, data: np.ndarray,
                       row_nnz: np.ndarray, factor: np.ndarray,
                       touched: np.ndarray) -> np.ndarray:
    """Mean loss gradient of a chunk, gathered on its column support.

    Bit-identical to ``(np.asarray(Xc.T @ factor) / n_rows)[touched]``
    without materializing the ``m``-length dense gradient: scipy's CSC
    matvec accumulates each column's products in row-ascending order, and
    ``np.bincount`` adds its weights in occurrence order — the same order,
    because CSR data is stored row-major.  ``touched`` must be the sorted
    unique column support of the chunk (see :func:`touched_columns`).
    """
    if touched.size == 0:
        return np.zeros(0)
    per_nnz = np.repeat(factor, row_nnz)
    vals = data * per_nnz
    pos = np.searchsorted(touched, indices)
    return np.bincount(pos, weights=vals,
                       minlength=touched.size) / row_nnz.shape[0]


def dual_row_norms(indptr: np.ndarray, data: np.ndarray,
                   n_rows: int) -> np.ndarray:
    """Per-row squared norms ``||x_i||^2`` from raw CSR arrays.

    The SDCA coordinate update needs a row's squared norm on *every*
    visit; the reference body recomputes it per visit from a fresh
    ``X[i]`` row slice, while the fast epoch computes all of them once
    per local solve.  ``np.bincount`` adds its weights in occurrence
    order — within a row that is the same left-to-right sequence of
    float additions as the reference's running sum, and since every
    weight is a square (``>= +0.0``) the differing seed (``0.0 + s_0``
    vs ``s_0``) cannot flip a zero's sign, so the values are
    bit-identical.
    """
    if data.size == 0:
        return np.zeros(n_rows)
    rows = np.repeat(np.arange(n_rows), np.diff(indptr))
    return np.bincount(rows, weights=data * data, minlength=n_rows)


def dual_epoch(indptr: np.ndarray, indices: np.ndarray, data: np.ndarray,
               y: np.ndarray, u: np.ndarray, acur: np.ndarray,
               dalpha: np.ndarray, order: np.ndarray, scale: float,
               norms: np.ndarray, delta_fn) -> tuple[int, int]:
    """One permuted SDCA pass over a partition's dual block, in place.

    Visits rows in ``order``; for each, forms the margin ``x_i . u``
    from the raw CSR row slice (no per-row ``csr_matrix`` construction),
    asks ``delta_fn(margin, alpha_i, y_i, q)`` for the coordinate step,
    and applies it to the local iterate ``u``, the running dual block
    ``acur`` and the epoch delta ``dalpha`` — all mutated in place.
    ``scale`` is ``sigma' / (lambda n)`` (it multiplies both the
    curvature ``q = scale * ||x_i||^2`` and the iterate update) and
    ``norms`` comes from :func:`dual_row_norms`.

    Bit-identical to :func:`repro.glm.reference.dual_epoch_reference`:
    margins accumulate with ``cumsum`` (sequential left-to-right, the
    same addition order as scipy's CSR matvec C loop) in both paths, the
    update expression ``u[idx] += (scale * d) * dat`` is shared
    verbatim, and zero steps skip the write in both paths so ``-0.0``
    entries are never touched in one path but not the other.

    Returns ``(nnz_processed, n_updates)`` for the cost model — counted
    from the rows *visited* (the logical work), so pricing is identical
    on either kernel path.
    """
    nnz = 0
    updates = 0
    for i in order:
        lo, hi = indptr[i], indptr[i + 1]
        idx = indices[lo:hi]
        dat = data[lo:hi]
        if idx.size:
            margin = (dat * u[idx]).cumsum()[-1]
        else:
            margin = 0.0
        d = delta_fn(margin, acur[i], y[i], scale * norms[i])
        nnz += 2 * int(idx.size)
        if d != 0.0:
            acur[i] += d
            dalpha[i] += d
            u[idx] += (scale * d) * dat
            updates += 1
    return nnz, updates


def apply_update_inplace(w: np.ndarray, grad_loss: np.ndarray, lr: float,
                         objective: Objective,
                         scratch: np.ndarray) -> np.ndarray:
    """In-place ``w <- w - lr * grad_loss - lr * grad_reg(w)``.

    Bit-identical to :func:`repro.glm.local_solvers.apply_update` (the
    regularizer gradient is evaluated at the *pre-update* iterate, exactly
    like the reference) but mutates ``w`` and reuses ``scratch`` instead
    of allocating fresh ``m``-length arrays every batch.  ``w`` must be a
    private, writable copy owned by the caller.
    """
    reg = objective.regularizer
    reg_grad = reg.gradient(w) if reg.strength else None
    np.multiply(grad_loss, lr, out=scratch)
    w -= scratch
    if reg_grad is not None:
        np.multiply(reg_grad, lr, out=scratch)
        w -= scratch
    return w
