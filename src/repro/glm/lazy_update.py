"""Bottou-style lazy (scaled) representation for L2-regularized SGD.

With L2 regularization every SGD update contains a dense decay::

    w <- (1 - eta * lambda) * w - eta * grad_loss

On sparse data the gradient touches only the batch's nonzero coordinates,
but the decay touches *all* ``d`` coordinates — ruinous when ``d`` is tens
of millions (kddb, kdd12, WX).  Bottou's trick [14] stores the model as
``w = scale * v`` so the decay becomes a single scalar multiplication::

    scale <- scale * (1 - eta * lambda)
    v     <- v - (eta / scale) * grad_loss      (sparse touch only)

The scale can underflow after many updates, so whenever it drops below a
threshold the representation is *rebased* (``v <- scale * v; scale <- 1``).
This is the "threshold-based, lazy method" Section IV-B1 cites.

:class:`ScaledVector` tracks how many dense-coordinate operations were
actually performed so the cost model can price lazy vs eager updates — the
subject of the ``bench_ablation_lazy_update`` benchmark.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ScaledVector"]


class ScaledVector:
    """A dense vector stored as ``scale * values`` with lazy L2 decay."""

    #: Rebase when |scale| falls below this threshold.
    REBASE_THRESHOLD = 1.0e-6

    def __init__(self, values: np.ndarray) -> None:
        self._values = np.array(values, dtype=np.float64, copy=True)
        self._scale = 1.0
        #: Dense coordinate operations performed (for the cost model).
        self.dense_ops = 0

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return self._values.shape[0]

    @property
    def scale(self) -> float:
        return self._scale

    @property
    def values(self) -> np.ndarray:
        """Read-only view of the unscaled storage (``w == scale * values``).

        Hot paths (margin computation in ``sgd_epoch``) need the raw
        storage to dot against without materializing ``scale * values``;
        the view is write-protected so callers cannot bypass
        :meth:`axpy_sparse`'s ``dense_ops`` accounting.
        """
        view = self._values.view()
        view.setflags(write=False)
        return view

    def to_array(self) -> np.ndarray:
        """Materialize the logical vector (does not mutate the state)."""
        return self._scale * self._values

    # ------------------------------------------------------------------
    def decay(self, factor: float) -> None:
        """Apply ``w <- factor * w`` in O(1) (the lazy L2 decay)."""
        if factor == 0.0:
            # A zero factor would make future sparse updates impossible to
            # express; fall back to an explicit dense zeroing.
            self._values[:] = 0.0
            self._scale = 1.0
            self.dense_ops += self.dim
            return
        self._scale *= factor
        if abs(self._scale) < self.REBASE_THRESHOLD:
            self._rebase()

    def axpy_sparse(self, coeff: float, indices: np.ndarray,
                    values: np.ndarray) -> None:
        """Apply ``w[indices] += coeff * values`` through the scale."""
        if indices.size == 0:
            return
        self._values[indices] += (coeff / self._scale) * values
        self.dense_ops += int(indices.size)

    def axpy_dense(self, coeff: float, vector: np.ndarray) -> None:
        """Apply ``w += coeff * vector`` (dense; used by eager updates)."""
        self._values += (coeff / self._scale) * vector
        self.dense_ops += self.dim

    def dot_sparse(self, indices: np.ndarray, values: np.ndarray) -> float:
        """Compute ``w[indices] . values`` without materializing w."""
        if indices.size == 0:
            return 0.0
        return float(self._scale * np.dot(self._values[indices], values))

    # ------------------------------------------------------------------
    def _rebase(self) -> None:
        self._values *= self._scale
        self._scale = 1.0
        self.dense_ops += self.dim
