"""L-BFGS: the second-order optimizer behind ``spark.ml`` (paper §VII).

The paper's conclusion raises an open question: Spark's second-generation
``spark.ml`` library trains GLMs with L-BFGS [27] instead of MGD — can the
same communication techniques (AllReduce instead of the driver round-trip)
speed it up too?  The ``repro.core.spark_ml`` trainers explore exactly
that; this module supplies the optimizer.

Two entry points:

* :class:`LbfgsState` — the incremental interface distributed trainers
  drive: ``direction(grad)`` runs the two-loop recursion over the stored
  curvature pairs, ``push(s, y)`` records a new pair.  The trainer owns
  the outer loop so it can charge simulated time to each distributed
  function/gradient evaluation.
* :func:`minimize` — a standalone batch driver with Armijo backtracking
  line search, used by the unit tests against analytic problems.

Only smooth objectives should be optimized (logistic or squared loss, or
hinge + L2 where the subgradient is well-behaved away from kinks);
``spark.ml``'s linear SVM uses smoothed variants for the same reason.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["LbfgsState", "LineSearchResult", "armijo_line_search",
           "WolfeResult", "wolfe_line_search", "minimize", "MinimizeResult"]

#: Curvature pairs with s.y below this are discarded (preserves positive
#: definiteness of the implicit Hessian approximation).
CURVATURE_EPS = 1.0e-10


class LbfgsState:
    """Limited-memory BFGS curvature history + two-loop recursion."""

    def __init__(self, memory: int = 10) -> None:
        if memory < 1:
            raise ValueError("memory must be at least 1")
        self.memory = memory
        self._s: deque[np.ndarray] = deque(maxlen=memory)
        self._y: deque[np.ndarray] = deque(maxlen=memory)
        self._rho: deque[float] = deque(maxlen=memory)

    def __len__(self) -> int:
        return len(self._s)

    def push(self, s: np.ndarray, y: np.ndarray) -> bool:
        """Record a step/gradient-difference pair.

        Returns False (and stores nothing) when the curvature ``s . y`` is
        too small to keep the approximation positive definite.
        """
        sy = float(np.dot(s, y))
        if sy <= CURVATURE_EPS:
            return False
        self._s.append(np.array(s, copy=True))
        self._y.append(np.array(y, copy=True))
        self._rho.append(1.0 / sy)
        return True

    def direction(self, grad: np.ndarray) -> np.ndarray:
        """Two-loop recursion: the descent direction ``-H_k grad``."""
        q = np.array(grad, copy=True)
        if not self._s:
            return -q
        alphas = []
        for s, y, rho in zip(reversed(self._s), reversed(self._y),
                             reversed(self._rho)):
            alpha = rho * np.dot(s, q)
            q -= alpha * y
            alphas.append(alpha)
        # Initial Hessian scaling (Nocedal & Wright eq. 7.20).
        s_last, y_last = self._s[-1], self._y[-1]
        gamma = float(np.dot(s_last, y_last) / np.dot(y_last, y_last))
        q *= gamma
        for (s, y, rho), alpha in zip(zip(self._s, self._y, self._rho),
                                      reversed(alphas)):
            beta = rho * np.dot(y, q)
            q += (alpha - beta) * s
        return -q


@dataclass(frozen=True)
class LineSearchResult:
    """Outcome of a backtracking line search."""

    step: float
    fval: float
    evaluations: int
    success: bool


def armijo_line_search(f: Callable[[np.ndarray], float], w: np.ndarray,
                       direction: np.ndarray, fval: float,
                       grad: np.ndarray, initial_step: float = 1.0,
                       c1: float = 1.0e-4, shrink: float = 0.5,
                       max_evals: int = 20) -> LineSearchResult:
    """Backtrack until the Armijo sufficient-decrease condition holds.

    Each trial costs one objective evaluation — in the distributed setting
    that is a full pass over the data, which is why the trainers account
    for ``evaluations`` explicitly.
    """
    slope = float(np.dot(grad, direction))
    if slope >= 0:
        # Not a descent direction (can happen with stale curvature);
        # caller should reset to steepest descent.
        return LineSearchResult(step=0.0, fval=fval, evaluations=0,
                                success=False)
    step = initial_step
    for evals in range(1, max_evals + 1):
        candidate = f(w + step * direction)
        if candidate <= fval + c1 * step * slope:
            return LineSearchResult(step=step, fval=candidate,
                                    evaluations=evals, success=True)
        step *= shrink
    return LineSearchResult(step=0.0, fval=fval, evaluations=max_evals,
                            success=False)


@dataclass(frozen=True)
class WolfeResult:
    """Outcome of a strong-Wolfe line search.

    When ``success`` is True, ``fval`` and ``grad`` are the objective and
    gradient at the accepted point ``w + step * direction`` — callers can
    reuse them and skip one full evaluation.
    """

    step: float
    fval: float
    grad: np.ndarray | None
    evaluations: int
    success: bool


def wolfe_line_search(fg: Callable[[np.ndarray],
                                   tuple[float, np.ndarray]],
                      w: np.ndarray, direction: np.ndarray, fval: float,
                      grad: np.ndarray, c1: float = 1.0e-4,
                      c2: float = 0.9, max_evals: int = 20,
                      max_step: float = 1.0e3) -> WolfeResult:
    """Strong Wolfe line search (Nocedal & Wright, Algorithms 3.5/3.6).

    Unlike Armijo backtracking, the curvature condition guarantees
    ``s . y > 0`` for the accepted step, which keeps the L-BFGS Hessian
    approximation positive definite — this is what spark.ml's optimizer
    (breeze ``StrongWolfeLineSearch``) uses.  Each trial evaluates both
    the objective and the gradient; distributed callers charge a full
    pass per trial.
    """
    dphi0 = float(np.dot(grad, direction))
    if dphi0 >= 0:
        return WolfeResult(step=0.0, fval=fval, grad=None, evaluations=0,
                           success=False)
    evals = 0

    def phi(alpha: float) -> tuple[float, np.ndarray, float]:
        nonlocal evals
        evals += 1
        value, gradient = fg(w + alpha * direction)
        return value, gradient, float(np.dot(gradient, direction))

    def zoom(lo: float, phi_lo: float, hi: float) -> WolfeResult:
        """Bisection zoom between a low (good) and high bound."""
        while evals < max_evals:
            alpha = 0.5 * (lo + hi)
            value, gradient, slope = phi(alpha)
            if value > fval + c1 * alpha * dphi0 or value >= phi_lo:
                hi = alpha
            else:
                if abs(slope) <= -c2 * dphi0:
                    return WolfeResult(step=alpha, fval=value,
                                       grad=gradient, evaluations=evals,
                                       success=True)
                if slope * (hi - lo) >= 0:
                    hi = lo
                lo, phi_lo = alpha, value
        return WolfeResult(step=0.0, fval=fval, grad=None,
                           evaluations=evals, success=False)

    alpha_prev, phi_prev = 0.0, fval
    alpha = 1.0
    first = True
    while evals < max_evals:
        value, gradient, slope = phi(alpha)
        if value > fval + c1 * alpha * dphi0 or (
                not first and value >= phi_prev):
            return zoom(alpha_prev, phi_prev, alpha)
        if abs(slope) <= -c2 * dphi0:
            return WolfeResult(step=alpha, fval=value, grad=gradient,
                               evaluations=evals, success=True)
        if slope >= 0:
            return zoom(alpha, value, alpha_prev)
        alpha_prev, phi_prev = alpha, value
        alpha = min(2.0 * alpha, max_step)
        first = False
        if alpha >= max_step:
            return WolfeResult(step=0.0, fval=fval, grad=None,
                               evaluations=evals, success=False)
    return WolfeResult(step=0.0, fval=fval, grad=None, evaluations=evals,
                       success=False)


@dataclass(frozen=True)
class MinimizeResult:
    """Result of the standalone :func:`minimize` driver."""

    w: np.ndarray
    fval: float
    iterations: int
    converged: bool
    function_evals: int
    gradient_evals: int


def minimize(fg: Callable[[np.ndarray], tuple[float, np.ndarray]],
             w0: np.ndarray, max_iters: int = 100, memory: int = 10,
             gtol: float = 1.0e-6) -> MinimizeResult:
    """Minimize a smooth function given ``fg(w) -> (f, grad)``."""
    state = LbfgsState(memory=memory)
    w = np.array(w0, dtype=np.float64, copy=True)
    fval, grad = fg(w)
    f_evals = g_evals = 1

    for iteration in range(1, max_iters + 1):
        if float(np.linalg.norm(grad, ord=np.inf)) <= gtol:
            return MinimizeResult(w=w, fval=fval, iterations=iteration - 1,
                                  converged=True, function_evals=f_evals,
                                  gradient_evals=g_evals)
        direction = state.direction(grad)
        search = wolfe_line_search(fg, w, direction, fval, grad)
        f_evals += search.evaluations
        g_evals += search.evaluations
        if not search.success:
            # Restart from steepest descent once; give up if that fails.
            state = LbfgsState(memory=memory)
            direction = -grad
            search = wolfe_line_search(fg, w, direction, fval, grad)
            f_evals += search.evaluations
            g_evals += search.evaluations
            if not search.success:
                break
        new_w = w + search.step * direction
        new_fval, new_grad = search.fval, search.grad
        assert new_grad is not None
        state.push(new_w - w, new_grad - grad)
        w, fval, grad = new_w, new_fval, new_grad

    converged = float(np.linalg.norm(grad, ord=np.inf)) <= gtol
    return MinimizeResult(w=w, fval=fval, iterations=max_iters,
                          converged=converged, function_evals=f_evals,
                          gradient_evals=g_evals)
