"""Worker-side local solvers: the computations of Algorithms 1-3.

These functions run the *local* part of distributed MGD on one worker's
partition.  Three flavours cover every system in the paper:

* :func:`gd_step` — one full-batch gradient-descent update (what Angel and
  regularized Petuum do per batch, and what the MLlib driver does with an
  aggregated gradient);
* :func:`mgd_epoch` — a pass of mini-batch GD over the partition (Angel's
  per-epoch local work, Algorithm 1);
* :func:`sgd_epoch` — per-example (or small-chunk) SGD over the partition
  with optional Bottou lazy L2 updates (unregularized Petuum's "parallel
  SGD inside each batch" and MLlib*'s ``UpdateModel`` in Algorithm 3).

All solvers return a fresh weight vector plus :class:`LocalStats` so the
cluster cost model can convert the work into simulated seconds.  ``y``
labels are in {-1, +1}; gradients are means over the examples used.

The epoch loops run on the fast CSR kernels of :mod:`repro.glm.kernels`
(pre-permuted epoch slicing, support-gathered gradients, in-place
updates).  :func:`use_reference_kernels` temporarily routes them to the
retained pre-optimization bodies in :mod:`repro.glm.reference` — both
paths are bit-identical (enforced by ``tests/test_perf_kernels.py``); the
switch exists so tests can compare them and so the wall-clock bench can
measure the "before" baseline.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

import numpy as np
import scipy.sparse as sp

from .kernels import (apply_update_inplace, chunk_grad_touched,
                      chunk_margins, permuted_epoch, touched_columns)
from .lazy_update import ScaledVector
from .objective import Objective

__all__ = ["LocalStats", "gd_step", "mgd_epoch", "sgd_epoch",
           "sample_batch", "apply_update", "use_reference_kernels"]

#: Active kernel implementation: ``"fast"`` (default) or ``"reference"``.
#: Module-level so :func:`use_reference_kernels` can flip it for a scope;
#: it selects between bit-identical implementations, so it can never
#: change results — only wall-clock speed.
_KERNEL_MODE = ["fast"]


@contextmanager
def use_reference_kernels() -> Iterator[None]:
    """Run epoch solvers on the retained reference implementations.

    For tests (comparing fast vs reference bit-for-bit) and for the
    wall-clock benchmark's "before" baseline.  Process-local: parallel
    backends do not see a flip made after their pool started, so
    benchmarks pair reference kernels with the serial backend.
    """
    previous = _KERNEL_MODE[0]
    _KERNEL_MODE[0] = "reference"
    try:
        yield
    finally:
        _KERNEL_MODE[0] = previous


@dataclass
class LocalStats:
    """Work performed by a local solver (inputs to the cost model).

    ``nnz_processed`` counts stored nonzeros touched by gradient math,
    ``n_updates`` counts model updates applied, and ``dense_ops`` counts
    dense model coordinates written (where eager L2 pays and lazy L2 saves).
    """

    nnz_processed: int = 0
    n_updates: int = 0
    dense_ops: int = 0

    def merge(self, other: "LocalStats") -> "LocalStats":
        return LocalStats(
            nnz_processed=self.nnz_processed + other.nnz_processed,
            n_updates=self.n_updates + other.n_updates,
            dense_ops=self.dense_ops + other.dense_ops,
        )


def sample_batch(X: sp.csr_matrix, y: np.ndarray, batch_size: int,
                 rng: np.random.Generator) -> tuple[sp.csr_matrix, np.ndarray]:
    """Sample a batch without replacement (Algorithm 1's ``XB``)."""
    n = X.shape[0]
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    if n == 0:
        raise ValueError("partition is empty: cannot sample a batch from "
                         "zero rows")
    take = min(batch_size, n)
    rows = rng.choice(n, size=take, replace=False)
    return X[rows], y[rows]


def apply_update(w: np.ndarray, grad_loss: np.ndarray, lr: float,
                 objective: Objective) -> np.ndarray:
    """One GD update ``w <- w - lr * grad_loss - lr * grad_reg(w)``.

    This is the central-node update rule of Algorithm 2 (SendGradient) and
    the per-batch update of Algorithm 1.  Returns a new array.
    """
    new_w = w - lr * grad_loss
    reg = objective.regularizer
    if reg.strength:
        new_w -= lr * reg.gradient(w)
    return new_w


def gd_step(objective: Objective, w: np.ndarray, X: sp.csr_matrix,
            y: np.ndarray, lr: float) -> tuple[np.ndarray, LocalStats]:
    """One full-batch gradient step over (X, y)."""
    grad = objective.batch_loss_gradient(w, X, y)
    new_w = apply_update(w, grad, lr, objective)
    dense = w.shape[0] if objective.regularizer.is_dense else 0
    stats = LocalStats(nnz_processed=2 * int(X.nnz), n_updates=1,
                       dense_ops=dense)
    return new_w, stats


def mgd_epoch(objective: Objective, w: np.ndarray, X: sp.csr_matrix,
              y: np.ndarray, lr: float, batch_size: int,
              rng: np.random.Generator,
              shuffle: bool = True) -> tuple[np.ndarray, LocalStats]:
    """One pass of mini-batch GD over the partition (Algorithm 1).

    Batches tile the (optionally shuffled) partition; each batch applies one
    eager GD update.  This is Angel's local computation and regularized
    Petuum's per-batch behaviour.
    """
    n = X.shape[0]
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    order = rng.permutation(n) if shuffle else np.arange(n)
    if _KERNEL_MODE[0] == "reference":
        from . import reference
        return reference.mgd_epoch_reference(objective, w, X, y, lr,
                                             batch_size, order)
    Xp, yp = permuted_epoch(X, y, order, shuffle)
    stats = LocalStats()
    current = np.array(w, copy=True)
    scratch = np.empty_like(current)
    for start in range(0, n, batch_size):
        Xb = Xp[start:start + batch_size]
        yb = yp[start:start + batch_size]
        grad = objective.batch_loss_gradient(current, Xb, yb)
        apply_update_inplace(current, grad, lr, objective, scratch)
        stats.nnz_processed += 2 * int(Xb.nnz)
        stats.n_updates += 1
        if objective.regularizer.is_dense:
            stats.dense_ops += w.shape[0]
    return current, stats


def _sgd_epoch_lazy(objective: Objective, w: np.ndarray, Xp: sp.csr_matrix,
                    yp: np.ndarray, lr: float,
                    chunk_size: int) -> tuple[np.ndarray, LocalStats]:
    """Chunked SGD with L2 handled through a :class:`ScaledVector`.

    ``Xp``/``yp`` are already in epoch order (see
    :func:`repro.glm.kernels.permuted_epoch`), so each chunk is a
    contiguous slice of the raw CSR arrays — no ``csr_matrix`` is
    constructed per chunk — and gradients are gathered on the chunk's
    column support instead of materializing an ``m``-length dense array.
    """
    lam = objective.regularizer.strength
    sv = ScaledVector(w)
    stats = LocalStats()
    n = Xp.shape[0]
    indptr, indices, data = Xp.indptr, Xp.indices, Xp.data
    single_row = chunk_size == 1 and Xp.has_canonical_format
    for start in range(0, n, chunk_size):
        end = min(start + chunk_size, n)
        yc = yp[start:end]
        lo, hi = indptr[start], indptr[end]
        idx = indices[lo:hi]
        dat = data[lo:hi]
        row_nnz = np.diff(indptr[start:end + 1])
        margins = sv.scale * chunk_margins(idx, dat, row_nnz, sv.values,
                                           end - start)
        factor = objective.loss.gradient_factor(margins, yc)
        touched = touched_columns(idx, single_row=single_row)
        grad = chunk_grad_touched(idx, dat, row_nnz, factor, touched)
        if lam:
            decay = 1.0 - lr * lam
            if decay <= 0:
                raise ValueError(
                    f"lr * lambda = {lr * lam:g} >= 1 makes the lazy decay "
                    "non-positive; lower the learning rate")
            sv.decay(decay)
        sv.axpy_sparse(-lr, touched, grad)
        stats.nnz_processed += 2 * int(idx.size)
        stats.n_updates += 1
    stats.dense_ops = sv.dense_ops + sv.dim  # final materialization
    return sv.to_array(), stats


def _sgd_epoch_eager(objective: Objective, w: np.ndarray, Xp: sp.csr_matrix,
                     yp: np.ndarray, lr: float,
                     chunk_size: int) -> tuple[np.ndarray, LocalStats]:
    """Chunked SGD with the regularizer applied densely every update."""
    stats = LocalStats()
    current = np.array(w, copy=True)
    scratch = np.empty_like(current)
    reg = objective.regularizer
    n = Xp.shape[0]
    for start in range(0, n, chunk_size):
        Xc = Xp[start:start + chunk_size]
        yc = yp[start:start + chunk_size]
        grad = objective.batch_loss_gradient(current, Xc, yc)
        apply_update_inplace(current, grad, lr, objective, scratch)
        stats.nnz_processed += 2 * int(Xc.nnz)
        stats.n_updates += 1
        if reg.is_dense:
            stats.dense_ops += w.shape[0]
    return current, stats


def sgd_epoch(objective: Objective, w: np.ndarray, X: sp.csr_matrix,
              y: np.ndarray, lr: float, rng: np.random.Generator,
              chunk_size: int = 1, lazy: bool = True,
              shuffle: bool = True) -> tuple[np.ndarray, LocalStats]:
    """One SGD pass over the partition (Algorithm 3's ``UpdateModel``).

    ``chunk_size=1`` is textbook per-example SGD; larger chunks vectorize
    the same schedule (each chunk is one update at the current iterate),
    trading update granularity for NumPy throughput.  With L2
    regularization and ``lazy=True`` the decay is applied through the
    scaled representation (Bottou's trick); L1 always takes the eager path
    because its subgradient is not a uniform rescaling.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least 1")
    n = X.shape[0]
    order = rng.permutation(n) if shuffle else np.arange(n)
    use_lazy = (lazy and objective.regularizer.name in ("none", "l2"))
    if _KERNEL_MODE[0] == "reference":
        from . import reference
        if use_lazy:
            return reference.sgd_epoch_lazy_reference(
                objective, w, X, y, lr, chunk_size, order)
        return reference.sgd_epoch_eager_reference(
            objective, w, X, y, lr, chunk_size, order)
    Xp, yp = permuted_epoch(X, y, order, shuffle)
    if use_lazy:
        return _sgd_epoch_lazy(objective, w, Xp, yp, lr, chunk_size)
    return _sgd_epoch_eager(objective, w, Xp, yp, lr, chunk_size)
