"""Loss functions for generalized linear models.

Every loss works on binary labels in {-1, +1} and exposes:

* ``value(margins, y)``  — mean loss given margins ``X @ w``;
* ``gradient_factor(margins, y)`` — the per-example scalar ``dl/d(margin)``
  such that the batch gradient is ``X.T @ factor / len(batch)``.

Keeping the loss in margin form lets every trainer share one vectorized
sparse gradient kernel (``repro.glm.objective.batch_gradient``) regardless
of the loss, which mirrors how MLlib's ``Gradient`` classes are structured.

Implemented losses: hinge (linear SVM — the paper's workload), logistic
(logistic regression) and squared (least squares), matching the paper's
"0-1 loss, square loss, hinge loss, etc." enumeration in Section II-A.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Loss", "HingeLoss", "LogisticLoss", "SquaredHingeLoss",
           "SquaredLoss", "get_loss", "LOSSES"]


class Loss:
    """Interface for margin-based losses."""

    name: str = "abstract"

    def value(self, margins: np.ndarray, y: np.ndarray) -> float:
        """Mean loss over a batch."""
        raise NotImplementedError

    def gradient_factor(self, margins: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Per-example d(loss)/d(margin); batch gradient is X.T @ factor / n."""
        raise NotImplementedError


class HingeLoss(Loss):
    """Hinge loss ``max(0, 1 - y * margin)`` — linear SVM."""

    name = "hinge"

    def value(self, margins: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(np.maximum(0.0, 1.0 - y * margins)))

    def gradient_factor(self, margins: np.ndarray, y: np.ndarray) -> np.ndarray:
        active = (y * margins) < 1.0
        return np.where(active, -y, 0.0)


class LogisticLoss(Loss):
    """Logistic loss ``log(1 + exp(-y * margin))`` — logistic regression.

    Uses the numerically stable log1p/expit formulation to avoid overflow
    for large negative margins.
    """

    name = "logistic"

    def value(self, margins: np.ndarray, y: np.ndarray) -> float:
        z = y * margins
        # log(1 + exp(-z)) computed stably for both signs of z.
        return float(np.mean(np.logaddexp(0.0, -z)))

    def gradient_factor(self, margins: np.ndarray, y: np.ndarray) -> np.ndarray:
        z = y * margins
        # sigma(-z) = 1 / (1 + exp(z)), computed stably.
        sig = np.empty_like(z)
        pos = z >= 0
        sig[pos] = np.exp(-z[pos]) / (1.0 + np.exp(-z[pos]))
        sig[~pos] = 1.0 / (1.0 + np.exp(z[~pos]))
        return -y * sig


class SquaredHingeLoss(Loss):
    """Squared hinge ``0.5 * max(0, 1 - y * margin)^2`` — smoothed SVM.

    This is the loss ``spark.ml``'s ``LinearSVC`` actually optimizes: it
    is differentiable everywhere (gradient continuous at the hinge point),
    which the L-BFGS trainers require.
    """

    name = "squared_hinge"

    def value(self, margins: np.ndarray, y: np.ndarray) -> float:
        slack = np.maximum(0.0, 1.0 - y * margins)
        return float(0.5 * np.mean(slack * slack))

    def gradient_factor(self, margins: np.ndarray, y: np.ndarray) -> np.ndarray:
        slack = np.maximum(0.0, 1.0 - y * margins)
        return -y * slack


class SquaredLoss(Loss):
    """Squared loss ``0.5 * (margin - y)^2`` — least squares."""

    name = "squared"

    def value(self, margins: np.ndarray, y: np.ndarray) -> float:
        diff = margins - y
        return float(0.5 * np.mean(diff * diff))

    def gradient_factor(self, margins: np.ndarray, y: np.ndarray) -> np.ndarray:
        return margins - y


LOSSES: dict[str, type[Loss]] = {
    HingeLoss.name: HingeLoss,
    LogisticLoss.name: LogisticLoss,
    SquaredHingeLoss.name: SquaredHingeLoss,
    SquaredLoss.name: SquaredLoss,
}


def get_loss(name: str) -> Loss:
    """Instantiate a loss by name (``hinge``, ``logistic``, ``squared``)."""
    try:
        return LOSSES[name]()
    except KeyError:
        raise KeyError(
            f"unknown loss {name!r}; expected one of {sorted(LOSSES)}"
        ) from None
