"""Trained GLM models: prediction, evaluation and on-disk artifacts.

A model artifact is a single ``.npz`` file holding the dense weight
vector plus a JSON metadata record (objective spec, dataset provenance,
format version) and a SHA-256 digest over both.  :meth:`GLMModel.load`
recomputes the digest and refuses corrupted or truncated artifacts, so a
registry (:mod:`repro.serve.registry`) can promote versions knowing the
bytes it will serve are exactly the bytes training produced.
"""

from __future__ import annotations

import hashlib
import json
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from .evaluation import BinaryMetrics, evaluate_binary
from .objective import Objective

__all__ = ["GLMModel", "ArtifactError", "ARTIFACT_FORMAT",
           "ARTIFACT_VERSION", "read_artifact_meta"]

#: Identifies a ``.npz`` file as a repro model artifact.
ARTIFACT_FORMAT = "repro.glm-model"
#: Bumped on any incompatible change to the artifact layout.
ARTIFACT_VERSION = 1


class ArtifactError(Exception):
    """A model artifact is missing, malformed, or fails verification."""


def _artifact_digest(weights: np.ndarray, meta: dict) -> str:
    """SHA-256 over the weight bytes and the canonical metadata JSON.

    ``meta`` must not contain the ``digest`` key itself; canonical JSON
    (sorted keys, no whitespace) keeps the digest independent of dict
    ordering and formatting.
    """
    hasher = hashlib.sha256()
    hasher.update(weights.tobytes())
    hasher.update(json.dumps(meta, sort_keys=True,
                             separators=(",", ":")).encode("ascii"))
    return hasher.hexdigest()


def _normalize_artifact_path(path: str | Path) -> Path:
    """``np.savez`` appends ``.npz`` silently; make that explicit."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def read_artifact_meta(path: str | Path) -> dict:
    """Read and validate the metadata record of an artifact.

    Cheap (does not verify the weight digest — :meth:`GLMModel.load`
    does); used by the registry to list versions.
    """
    path = _normalize_artifact_path(path)
    if not path.is_file():
        raise ArtifactError(f"no model artifact at {path}")
    try:
        with np.load(path, allow_pickle=False) as data:
            if "meta" not in data.files:
                raise ArtifactError(
                    f"{path}: not a model artifact (no 'meta' entry)")
            meta_text = str(data["meta"][()])
    except (ValueError, OSError, zipfile.BadZipFile) as exc:
        raise ArtifactError(f"{path}: unreadable artifact: {exc}") from exc
    try:
        meta = json.loads(meta_text)
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{path}: malformed metadata JSON") from exc
    if not isinstance(meta, dict) or meta.get("format") != ARTIFACT_FORMAT:
        raise ArtifactError(
            f"{path}: not a {ARTIFACT_FORMAT} artifact")
    if meta.get("format_version") != ARTIFACT_VERSION:
        raise ArtifactError(
            f"{path}: artifact format version {meta.get('format_version')!r} "
            f"is not supported (expected {ARTIFACT_VERSION})")
    return meta


@dataclass(frozen=True)
class GLMModel:
    """An immutable trained linear model.

    ``weights`` is the dense coefficient vector; ``objective`` records what
    the model was trained to minimize (used by :meth:`objective_value`).
    """

    weights: np.ndarray
    objective: Objective

    def __post_init__(self) -> None:
        if self.weights.ndim != 1:
            raise ValueError("weights must be a 1-D vector")

    @property
    def dim(self) -> int:
        return int(self.weights.shape[0])

    def decision_function(self, X: sp.csr_matrix) -> np.ndarray:
        """Raw margins ``X @ w``."""
        if X.shape[1] != self.dim:
            raise ValueError(
                f"X has {X.shape[1]} features, model expects {self.dim}")
        return np.asarray(X @ self.weights)

    def predict(self, X: sp.csr_matrix) -> np.ndarray:
        """Hard {-1, +1} predictions."""
        margins = self.decision_function(X)
        return np.where(margins >= 0, 1.0, -1.0)

    def accuracy(self, X: sp.csr_matrix, y: np.ndarray) -> float:
        """Fraction of correctly classified examples."""
        return float(np.mean(self.predict(X) == y))

    def objective_value(self, X: sp.csr_matrix, y: np.ndarray) -> float:
        """f(w, X) under the training objective."""
        return self.objective.value(self.weights, X, y)

    def evaluate(self, X: sp.csr_matrix, y: np.ndarray) -> BinaryMetrics:
        """Full metric set (accuracy/precision/recall/F1/AUC)."""
        return evaluate_binary(self.decision_function(X), y)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path,
             provenance: dict | None = None) -> Path:
        """Write a verifiable single-file artifact; return the path.

        ``provenance`` is an arbitrary JSON-serializable record (dataset
        name, trainer system, seed, final objective, ...) stored verbatim
        in the metadata and covered by the digest.  A ``.npz`` suffix is
        appended when missing; the actual path written is returned.
        """
        path = _normalize_artifact_path(path)
        meta = {
            "format": ARTIFACT_FORMAT,
            "format_version": ARTIFACT_VERSION,
            "dim": self.dim,
            "dtype": str(self.weights.dtype),
            "objective": self.objective.spec(),
            "provenance": dict(provenance or {}),
        }
        meta["digest"] = _artifact_digest(self.weights, meta)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("wb") as handle:
            np.savez(handle, weights=self.weights,
                     meta=np.array(json.dumps(meta, sort_keys=True)))
        return path

    @classmethod
    def load(cls, path: str | Path) -> "GLMModel":
        """Load an artifact written by :meth:`save`, verifying it.

        Raises :class:`ArtifactError` when the file is unreadable, the
        stored dimension disagrees with the weight vector, or the SHA-256
        digest does not match the stored weights + metadata (bit rot,
        truncation, or hand-edited files).
        """
        path = _normalize_artifact_path(path)
        meta = read_artifact_meta(path)
        try:
            with np.load(path, allow_pickle=False) as data:
                if "weights" not in data.files:
                    raise ArtifactError(
                        f"{path}: artifact has no 'weights' entry")
                weights = np.array(data["weights"])
        except (ValueError, OSError, zipfile.BadZipFile) as exc:
            raise ArtifactError(
                f"{path}: unreadable artifact: {exc}") from exc
        if weights.ndim != 1:
            raise ArtifactError(
                f"{path}: weights must be 1-D, got shape {weights.shape}")
        if meta.get("dim") != weights.shape[0]:
            raise ArtifactError(
                f"{path}: dimension mismatch — metadata says "
                f"{meta.get('dim')}, weight vector has {weights.shape[0]}")
        stored = meta.get("digest")
        unsigned = {k: v for k, v in meta.items() if k != "digest"}
        actual = _artifact_digest(weights, unsigned)
        if stored != actual:
            raise ArtifactError(
                f"{path}: SHA-256 digest mismatch (stored {stored!r}, "
                f"computed {actual!r}) — the artifact is corrupted or was "
                "modified after saving")
        try:
            objective = Objective.from_spec(meta["objective"])
        except (KeyError, ValueError, TypeError) as exc:
            raise ArtifactError(
                f"{path}: cannot rebuild objective: {exc}") from exc
        return cls(weights=weights, objective=objective)
