"""Trained GLM models: prediction and evaluation helpers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from .evaluation import BinaryMetrics, evaluate_binary
from .objective import Objective

__all__ = ["GLMModel"]


@dataclass(frozen=True)
class GLMModel:
    """An immutable trained linear model.

    ``weights`` is the dense coefficient vector; ``objective`` records what
    the model was trained to minimize (used by :meth:`objective_value`).
    """

    weights: np.ndarray
    objective: Objective

    def __post_init__(self) -> None:
        if self.weights.ndim != 1:
            raise ValueError("weights must be a 1-D vector")

    @property
    def dim(self) -> int:
        return int(self.weights.shape[0])

    def decision_function(self, X: sp.csr_matrix) -> np.ndarray:
        """Raw margins ``X @ w``."""
        if X.shape[1] != self.dim:
            raise ValueError(
                f"X has {X.shape[1]} features, model expects {self.dim}")
        return np.asarray(X @ self.weights)

    def predict(self, X: sp.csr_matrix) -> np.ndarray:
        """Hard {-1, +1} predictions."""
        margins = self.decision_function(X)
        return np.where(margins >= 0, 1.0, -1.0)

    def accuracy(self, X: sp.csr_matrix, y: np.ndarray) -> float:
        """Fraction of correctly classified examples."""
        return float(np.mean(self.predict(X) == y))

    def objective_value(self, X: sp.csr_matrix, y: np.ndarray) -> float:
        """f(w, X) under the training objective."""
        return self.objective.value(self.weights, X, y)

    def evaluate(self, X: sp.csr_matrix, y: np.ndarray) -> BinaryMetrics:
        """Full metric set (accuracy/precision/recall/F1/AUC)."""
        return evaluate_binary(self.decision_function(X), y)
