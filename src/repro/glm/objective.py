"""The GLM objective f(w, X) = l(w, X) + Omega(w) (paper Equation 1).

An :class:`Objective` bundles a margin-based loss with a regularizer and
provides the vectorized sparse kernels every trainer shares:

* :meth:`Objective.value` — full-dataset objective, the y-axis of every
  convergence figure in the paper;
* :meth:`Objective.batch_gradient` — mean gradient over a CSR batch, the
  worker-side computation of the SendGradient paradigm;
* :meth:`Objective.batch_loss_gradient` — the loss part alone, used by
  SendModel workers that handle regularization lazily.

All gradients are mean (not sum) over the batch so learning rates are
comparable across batch sizes — the convention MLlib's ``miniBatchFraction``
API uses.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .losses import Loss, get_loss
from .regularizers import Regularizer, get_regularizer

__all__ = ["Objective"]


class Objective:
    """Loss + regularizer over sparse data.

    Parameters
    ----------
    loss:
        A :class:`~repro.glm.losses.Loss` instance or its name.
    regularizer:
        A :class:`~repro.glm.regularizers.Regularizer` instance or name.
    strength:
        Regularization strength, used only when ``regularizer`` is a name.
    """

    def __init__(self, loss: Loss | str = "hinge",
                 regularizer: Regularizer | str = "none",
                 strength: float = 0.0) -> None:
        self.loss = get_loss(loss) if isinstance(loss, str) else loss
        if isinstance(regularizer, str):
            self.regularizer = get_regularizer(regularizer, strength)
        else:
            self.regularizer = regularizer

    # ------------------------------------------------------------------
    def value(self, w: np.ndarray, X: sp.csr_matrix, y: np.ndarray) -> float:
        """f(w, X): mean loss over all of X plus Omega(w)."""
        margins = X @ w
        return self.loss.value(margins, y) + self.regularizer.value(w)

    def loss_value(self, w: np.ndarray, X: sp.csr_matrix,
                   y: np.ndarray) -> float:
        """Mean loss alone (no regularization term)."""
        return self.loss.value(X @ w, y)

    def batch_loss_gradient(self, w: np.ndarray, X: sp.csr_matrix,
                            y: np.ndarray) -> np.ndarray:
        """Mean gradient of the loss term over the batch (sparse-friendly)."""
        if X.shape[0] == 0:
            return np.zeros_like(w)
        factor = self.loss.gradient_factor(X @ w, y)
        return np.asarray(X.T @ factor) / X.shape[0]

    def batch_gradient(self, w: np.ndarray, X: sp.csr_matrix,
                       y: np.ndarray) -> np.ndarray:
        """Mean gradient of the full objective (loss + regularization)."""
        grad = self.batch_loss_gradient(w, X, y)
        if self.regularizer.strength:
            grad = grad + self.regularizer.gradient(w)
        return grad

    # ------------------------------------------------------------------
    # Dual-side evaluations (CoCoA-family solvers, repro.glm.dual).
    def conjugate_sum(self, alpha: np.ndarray, y: np.ndarray) -> float:
        """``sum_i l*(-alpha_i, y_i)`` over one block of dual variables.

        The block contribution to the dual objective's conjugate term;
        requires the loss to have an implemented conjugate (see
        :data:`repro.glm.dual.DUAL_LOSSES`).
        """
        from .dual import get_dual_loss
        return float(np.sum(get_dual_loss(self.loss.name).conjugate(alpha, y)))

    def dual_value(self, conjugate_total: float, n_total: int,
                   w_alpha: np.ndarray) -> float:
        """``D(alpha) = -(1/n) sum_i l*(-alpha_i) - Omega(w(alpha))``.

        ``conjugate_total`` is the :meth:`conjugate_sum` over all blocks
        and ``w_alpha = X^T alpha / (lambda n)`` the primal image of the
        dual iterate.
        """
        return (-conjugate_total / n_total
                - self.regularizer.value(w_alpha))

    def duality_gap(self, w: np.ndarray, X: sp.csr_matrix, y: np.ndarray,
                    alpha: np.ndarray) -> float:
        """Certified suboptimality bound ``P(w) - D(alpha)``.

        By weak duality this is non-negative and upper-bounds
        ``P(w) - P(w*)`` for *any* primal iterate ``w`` and feasible
        dual vector ``alpha`` — no optimum or reference run needed,
        which is what makes it a certificate rather than an estimate.
        Requires L2 regularization with positive strength (the dual
        mapping divides by ``lambda``).  For the partitioned,
        per-worker-block variant see :func:`repro.glm.dual.certified_gap`.
        """
        from .dual import require_dual_capable
        require_dual_capable(self)
        n = X.shape[0]
        lam = self.regularizer.strength
        w_alpha = np.asarray(X.T @ alpha).ravel() / (lam * n)
        dual = self.dual_value(self.conjugate_sum(alpha, y), n, w_alpha)
        return self.value(w, X, y) - dual

    # ------------------------------------------------------------------
    def spec(self) -> dict:
        """JSON-serializable recipe that :meth:`from_spec` reverses.

        Both loss and regularizer are registry-backed (see
        :data:`~repro.glm.losses.LOSSES`), so name + strength fully
        determine the objective — this is what model artifacts persist.
        """
        return {"loss": self.loss.name,
                "regularizer": self.regularizer.name,
                "strength": float(self.regularizer.strength)}

    @classmethod
    def from_spec(cls, spec: dict) -> "Objective":
        """Rebuild an objective from a :meth:`spec` dict."""
        try:
            loss = spec["loss"]
            regularizer = spec["regularizer"]
        except KeyError as exc:
            raise ValueError(
                f"objective spec is missing the {exc.args[0]!r} key") from None
        return cls(loss, regularizer, float(spec.get("strength", 0.0)))

    # ------------------------------------------------------------------
    @property
    def is_regularized(self) -> bool:
        return self.regularizer.strength > 0.0

    def describe(self) -> str:
        return (f"{self.loss.name}+{self.regularizer.name}"
                f"({self.regularizer.strength:g})")

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"Objective({self.describe()})"
