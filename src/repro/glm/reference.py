"""Retained reference implementations of the local-solver hot loops.

These are the pre-optimization bodies of :func:`repro.glm.mgd_epoch` and
:func:`repro.glm.sgd_epoch`, kept verbatim so the fast kernels in
:mod:`repro.glm.kernels` have a bit-exact oracle:

* the property tests (``tests/test_perf_kernels.py``) assert fast ==
  reference across densities, chunk sizes and regularizers;
* the wall-clock harness (:mod:`repro.perf.harness`) times reference vs
  fast to report per-kernel speedups in ``BENCH_wallclock.json``;
* :func:`repro.glm.use_reference_kernels` routes the public solver entry
  points here, so whole training runs can be executed on the reference
  path (the "before" baseline of the end-to-end benchmark).

Each function takes the epoch's row ``order`` instead of an RNG — the
dispatcher draws the permutation once, so reference and fast runs consume
identical RNG streams.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .lazy_update import ScaledVector
from .local_solvers import LocalStats, apply_update
from .objective import Objective

__all__ = ["mgd_epoch_reference", "sgd_epoch_lazy_reference",
           "sgd_epoch_eager_reference", "dual_epoch_reference"]


def mgd_epoch_reference(objective: Objective, w: np.ndarray,
                        X: sp.csr_matrix, y: np.ndarray, lr: float,
                        batch_size: int,
                        order: np.ndarray) -> tuple[np.ndarray, LocalStats]:
    """Reference mini-batch GD pass: per-batch gather + fresh arrays."""
    n = X.shape[0]
    stats = LocalStats()
    current = np.array(w, copy=True)
    for start in range(0, n, batch_size):
        rows = order[start:start + batch_size]
        Xb, yb = X[rows], y[rows]
        grad = objective.batch_loss_gradient(current, Xb, yb)
        current = apply_update(current, grad, lr, objective)
        stats.nnz_processed += 2 * int(Xb.nnz)
        stats.n_updates += 1
        if objective.regularizer.is_dense:
            stats.dense_ops += w.shape[0]
    return current, stats


def sgd_epoch_lazy_reference(objective: Objective, w: np.ndarray,
                             X: sp.csr_matrix, y: np.ndarray, lr: float,
                             chunk_size: int, order: np.ndarray,
                             ) -> tuple[np.ndarray, LocalStats]:
    """Reference chunked SGD with lazy L2: per-chunk gather, dense
    per-chunk gradient, ``np.unique`` support."""
    lam = objective.regularizer.strength
    sv = ScaledVector(w)
    stats = LocalStats()
    for start in range(0, order.size, chunk_size):
        rows = order[start:start + chunk_size]
        Xc, yc = X[rows], y[rows]
        margins = sv.scale * (Xc @ sv.values)
        factor = objective.loss.gradient_factor(margins, yc)
        grad = np.asarray(Xc.T @ factor) / Xc.shape[0]
        if lam:
            decay = 1.0 - lr * lam
            if decay <= 0:
                raise ValueError(
                    f"lr * lambda = {lr * lam:g} >= 1 makes the lazy decay "
                    "non-positive; lower the learning rate")
            sv.decay(decay)
        touched = np.unique(Xc.indices)
        sv.axpy_sparse(-lr, touched, grad[touched])
        stats.nnz_processed += 2 * int(Xc.nnz)
        stats.n_updates += 1
    stats.dense_ops = sv.dense_ops + sv.dim  # final materialization
    return sv.to_array(), stats


def sgd_epoch_eager_reference(objective: Objective, w: np.ndarray,
                              X: sp.csr_matrix, y: np.ndarray, lr: float,
                              chunk_size: int, order: np.ndarray,
                              ) -> tuple[np.ndarray, LocalStats]:
    """Reference chunked SGD with the regularizer applied densely."""
    stats = LocalStats()
    current = np.array(w, copy=True)
    reg = objective.regularizer
    for start in range(0, order.size, chunk_size):
        rows = order[start:start + chunk_size]
        Xc, yc = X[rows], y[rows]
        grad = objective.batch_loss_gradient(current, Xc, yc)
        current = apply_update(current, grad, lr, objective)
        stats.nnz_processed += 2 * int(Xc.nnz)
        stats.n_updates += 1
        if reg.is_dense:
            stats.dense_ops += w.shape[0]
    return current, stats


def dual_epoch_reference(X: sp.csr_matrix, y: np.ndarray, u: np.ndarray,
                         acur: np.ndarray, dalpha: np.ndarray,
                         order: np.ndarray, scale: float,
                         delta_fn) -> tuple[int, int]:
    """Reference SDCA pass: per-visit ``X[i]`` row slicing.

    The pre-optimization body of :func:`repro.glm.kernels.dual_epoch`:
    every coordinate visit constructs a fresh one-row ``csr_matrix``
    (index-dtype checks, shape checks, format validation) and recomputes
    the row's squared norm from scratch.  The float operations — margin
    and norm accumulated left-to-right with ``cumsum``, the shared
    update expression ``u[idx] += (scale * d) * dat`` — are the fast
    kernel's exactly, so both paths are bit-identical.
    """
    nnz = 0
    updates = 0
    for i in order:
        Xi = X[i]
        idx = Xi.indices
        dat = Xi.data
        if idx.size:
            margin = (dat * u[idx]).cumsum()[-1]
            norm = (dat * dat).cumsum()[-1]
        else:
            margin = 0.0
            norm = 0.0
        d = delta_fn(margin, acur[i], y[i], scale * norm)
        nnz += 2 * int(idx.size)
        if d != 0.0:
            acur[i] += d
            dalpha[i] += d
            u[idx] += (scale * d) * dat
            updates += 1
    return nnz, updates
