"""Regularization terms Omega(w) for the GLM objective.

The paper trains SVMs "with and without L2 regularization"; L1 is included
because Section II-A lists it and it exercises the subgradient path.

Each regularizer exposes value, gradient (or subgradient) and the in-place
update step the local solvers apply.  L2's gradient is dense — every model
coordinate decays every update — which is exactly why the paper adopts
Bottou's lazy update (see :mod:`repro.glm.lazy_update`).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Regularizer", "NoRegularizer", "L2Regularizer", "L1Regularizer",
           "get_regularizer", "REGULARIZERS"]


class Regularizer:
    """Interface for regularization terms."""

    name: str = "abstract"
    #: Regularization strength (lambda); 0 for the no-op regularizer.
    strength: float = 0.0

    def value(self, w: np.ndarray) -> float:
        """Omega(w)."""
        raise NotImplementedError

    def gradient(self, w: np.ndarray) -> np.ndarray:
        """(Sub)gradient of Omega at w."""
        raise NotImplementedError

    @property
    def is_dense(self) -> bool:
        """True when the gradient touches every coordinate of w."""
        return False


class NoRegularizer(Regularizer):
    """Omega(w) = 0 (the paper's "L2 = 0" configurations)."""

    name = "none"
    strength = 0.0

    def value(self, w: np.ndarray) -> float:
        return 0.0

    def gradient(self, w: np.ndarray) -> np.ndarray:
        return np.zeros_like(w)


class L2Regularizer(Regularizer):
    """Omega(w) = (lambda / 2) * ||w||^2."""

    name = "l2"

    def __init__(self, strength: float = 0.1) -> None:
        if strength <= 0:
            raise ValueError("l2 strength must be positive; "
                             "use NoRegularizer for zero")
        self.strength = strength

    def value(self, w: np.ndarray) -> float:
        return float(0.5 * self.strength * np.dot(w, w))

    def gradient(self, w: np.ndarray) -> np.ndarray:
        return self.strength * w

    @property
    def is_dense(self) -> bool:
        return True


class L1Regularizer(Regularizer):
    """Omega(w) = lambda * ||w||_1 (subgradient: lambda * sign(w))."""

    name = "l1"

    def __init__(self, strength: float = 0.1) -> None:
        if strength <= 0:
            raise ValueError("l1 strength must be positive; "
                             "use NoRegularizer for zero")
        self.strength = strength

    def value(self, w: np.ndarray) -> float:
        return float(self.strength * np.sum(np.abs(w)))

    def gradient(self, w: np.ndarray) -> np.ndarray:
        return self.strength * np.sign(w)

    @property
    def is_dense(self) -> bool:
        return True


REGULARIZERS = ("none", "l1", "l2")


def get_regularizer(name: str, strength: float = 0.0) -> Regularizer:
    """Build a regularizer by name.

    ``strength == 0`` always yields :class:`NoRegularizer`, matching the
    paper's convention that "L2 = 0" means no regularization at all.
    """
    if name not in REGULARIZERS:
        raise KeyError(f"unknown regularizer {name!r}; "
                       f"expected one of {REGULARIZERS}")
    if name == "none" or strength == 0.0:
        return NoRegularizer()
    if name == "l2":
        return L2Regularizer(strength)
    return L1Regularizer(strength)
