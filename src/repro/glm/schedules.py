"""Learning-rate schedules.

MLlib's ``GradientDescent`` decays the step size as ``stepSize / sqrt(t)``
over outer iterations; parameter-server systems commonly use a constant or
inverse-sqrt rate tuned by grid search.  Schedules are indexed by the
*global* step count ``t`` (1-based), whatever that means for the trainer
(communication steps for SendGradient, local updates for SendModel).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["LearningRate", "ConstantLR", "InvSqrtLR", "InvTimeLR",
           "get_schedule"]


class LearningRate:
    """Interface: maps a 1-based step index to a step size."""

    def at(self, step: int) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantLR(LearningRate):
    """eta_t = eta0."""

    eta0: float

    def __post_init__(self) -> None:
        if self.eta0 <= 0:
            raise ValueError("learning rate must be positive")

    def at(self, step: int) -> float:
        return self.eta0


@dataclass(frozen=True)
class InvSqrtLR(LearningRate):
    """eta_t = eta0 / sqrt(t) (MLlib's default decay)."""

    eta0: float

    def __post_init__(self) -> None:
        if self.eta0 <= 0:
            raise ValueError("learning rate must be positive")

    def at(self, step: int) -> float:
        if step < 1:
            raise ValueError("step index is 1-based")
        return self.eta0 / math.sqrt(step)


@dataclass(frozen=True)
class InvTimeLR(LearningRate):
    """eta_t = eta0 / (1 + decay * t), the classic Robbins-Monro decay."""

    eta0: float
    decay: float = 1.0e-3

    def __post_init__(self) -> None:
        if self.eta0 <= 0:
            raise ValueError("learning rate must be positive")
        if self.decay < 0:
            raise ValueError("decay must be non-negative")

    def at(self, step: int) -> float:
        if step < 1:
            raise ValueError("step index is 1-based")
        return self.eta0 / (1.0 + self.decay * step)


def get_schedule(name: str, eta0: float, decay: float = 1.0e-3) -> LearningRate:
    """Build a schedule by name (``constant``, ``inv_sqrt``, ``inv_time``)."""
    if name == "constant":
        return ConstantLR(eta0)
    if name == "inv_sqrt":
        return InvSqrtLR(eta0)
    if name == "inv_time":
        return InvTimeLR(eta0, decay)
    raise KeyError(f"unknown schedule {name!r}; "
                   "expected constant, inv_sqrt or inv_time")
