"""Metrics: histories, convergence/speedup, gantt charts, result tables."""

from .convergence import (ACCURACY_LOSS, ConvergenceResult,
                          convergence_threshold, evaluate_convergence,
                          speedup)
from .export import (history_to_rows, write_histories_json,
                     write_history_csv, write_trace_csv)
from .gantt import KIND_CHARS, GanttSummary, render_ascii, summarize
from .histogram import LatencyHistogram
from .history import HistoryPoint, TrainingHistory
from .plots import CURVE_GLYPHS, render_curves
from .reporting import (CommReport, RecoveryReport, SchedReport,
                        ServingReport, comm_report, format_speedup,
                        format_table, recovery_report, sched_report,
                        serving_report)

__all__ = [
    "TrainingHistory", "HistoryPoint",
    "ACCURACY_LOSS", "convergence_threshold", "ConvergenceResult",
    "evaluate_convergence", "speedup",
    "GanttSummary", "summarize", "render_ascii", "KIND_CHARS",
    "format_table", "format_speedup", "CommReport", "comm_report",
    "RecoveryReport", "recovery_report",
    "LatencyHistogram", "ServingReport", "serving_report",
    "SchedReport", "sched_report",
    "history_to_rows", "write_history_csv", "write_histories_json",
    "write_trace_csv",
    "render_curves", "CURVE_GLYPHS",
]
