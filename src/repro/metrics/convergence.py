"""Convergence detection and speedup computation.

The paper's rule (Section V-A, Metrics): "Speedup is calculated when the
accuracy loss (compared to the optimum) is 0.01" — i.e. a system has
converged once its objective is within 0.01 of the best objective any
participating system reaches on that workload.  The dotted line in
Figures 4 and 5 is that threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

from .history import HistoryPoint, TrainingHistory

__all__ = ["ACCURACY_LOSS", "convergence_threshold", "ConvergenceResult",
           "evaluate_convergence", "speedup"]

#: The paper's accuracy-loss tolerance for declaring convergence.
ACCURACY_LOSS = 0.01


def convergence_threshold(histories: list[TrainingHistory],
                          accuracy_loss: float = ACCURACY_LOSS) -> float:
    """Optimum across all systems plus the tolerated loss."""
    if not histories:
        raise ValueError("need at least one history")
    optimum = min(h.best_objective for h in histories)
    return optimum + accuracy_loss


@dataclass(frozen=True)
class ConvergenceResult:
    """Whether and when a system reached the threshold."""

    system: str
    converged: bool
    steps: int | None
    seconds: float | None
    final_objective: float

    @classmethod
    def from_history(cls, history: TrainingHistory,
                     threshold: float) -> "ConvergenceResult":
        point: HistoryPoint | None = history.first_reaching(threshold)
        if point is None:
            return cls(system=history.system, converged=False, steps=None,
                       seconds=None, final_objective=history.final_objective)
        return cls(system=history.system, converged=True, steps=point.step,
                   seconds=point.seconds,
                   final_objective=history.final_objective)


def evaluate_convergence(histories: list[TrainingHistory],
                         accuracy_loss: float = ACCURACY_LOSS,
                         ) -> dict[str, ConvergenceResult]:
    """Per-system convergence against the shared threshold."""
    threshold = convergence_threshold(histories, accuracy_loss)
    return {h.system: ConvergenceResult.from_history(h, threshold)
            for h in histories}


def speedup(baseline: ConvergenceResult, improved: ConvergenceResult,
            axis: str = "seconds") -> float | None:
    """How much faster ``improved`` reached the threshold than ``baseline``.

    ``axis`` is ``"seconds"`` (wall-clock speedup, right-hand plots of
    Figure 4) or ``"steps"`` (communication-step speedup, left-hand plots).
    Returns None when either system failed to converge (the url/kddb
    unregularized cases where MLlib never reaches the threshold).
    """
    if axis not in ("seconds", "steps"):
        raise ValueError("axis must be 'seconds' or 'steps'")
    if not (baseline.converged and improved.converged):
        return None
    base = getattr(baseline, axis)
    imp = getattr(improved, axis)
    if imp == 0:
        # Converged before the first communication step completed; treat
        # the cost of that first step as the unit.
        imp = 1 if axis == "steps" else 1e-9
    return float(base) / float(imp)
