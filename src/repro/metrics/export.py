"""Export training histories and traces to CSV / JSON.

The benches print tables, but downstream users typically want the raw
convergence series (objective vs steps vs simulated seconds — the data
behind every figure in the paper) in a file they can plot.  These helpers
write plain CSV and JSON with no third-party dependencies.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from ..cluster import Trace
from .history import TrainingHistory

__all__ = ["history_to_rows", "write_history_csv", "write_histories_json",
           "write_trace_csv"]


def history_to_rows(history: TrainingHistory) -> list[dict]:
    """History as a list of plain dicts (one per measurement)."""
    return [
        {"system": history.system, "dataset": history.dataset,
         "detail": history.detail, "step": p.step, "seconds": p.seconds,
         "objective": p.objective}
        for p in history
    ]


def write_history_csv(histories: list[TrainingHistory],
                      path: str | Path) -> None:
    """Write one or more histories to a single long-format CSV."""
    if not histories:
        raise ValueError("need at least one history")
    path = Path(path)
    fields = ["system", "dataset", "detail", "step", "seconds", "objective"]
    with path.open("w", newline="", encoding="ascii") as handle:
        writer = csv.DictWriter(handle, fieldnames=fields)
        writer.writeheader()
        for history in histories:
            writer.writerows(history_to_rows(history))


def write_histories_json(histories: list[TrainingHistory],
                         path: str | Path) -> None:
    """Write histories as JSON: one object per system with series arrays."""
    if not histories:
        raise ValueError("need at least one history")
    payload = [
        {
            "system": h.system,
            "dataset": h.dataset,
            "detail": h.detail,
            "steps": h.steps(),
            "seconds": h.seconds(),
            "objectives": h.objectives(),
        }
        for h in histories
    ]
    Path(path).write_text(json.dumps(payload, indent=2), encoding="ascii")


def write_trace_csv(trace: Trace, path: str | Path) -> None:
    """Write a gantt trace (node/start/end/kind/step) to CSV."""
    path = Path(path)
    with path.open("w", newline="", encoding="ascii") as handle:
        writer = csv.writer(handle)
        writer.writerow(["node", "start", "end", "kind", "step"])
        for span in trace.spans:
            writer.writerow([span.node, span.start, span.end, span.kind,
                             span.step])
