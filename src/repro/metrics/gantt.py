"""Gantt-chart assembly and ASCII rendering (paper Figure 3).

The paper uses gantt charts to make the two bottlenecks visible: colored
bars per cluster node over time.  We render the same information as text
(one row per node, one character per time bucket) and compute the summary
statistics that the figure is meant to convey — driver busy fraction and
mean executor wait fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import Trace

__all__ = ["GanttSummary", "summarize", "render_ascii", "KIND_CHARS"]

#: Character used per span kind in the ASCII rendering.
KIND_CHARS = {
    "compute": "C",
    "aggregate": "A",
    "send": "s",
    "recv": "r",
    "wait": ".",
    "update": "U",
    "barrier": "|",
    "recovery": "X",
    "checkpoint": "K",
}


@dataclass(frozen=True)
class GanttSummary:
    """The quantitative content of a gantt chart."""

    makespan: float
    driver_busy_fraction: float
    executor_busy_fraction: float
    executor_wait_fraction: float
    per_node_busy: dict[str, float]

    def describe(self) -> str:
        return (f"makespan={self.makespan:.2f}s "
                f"driver_busy={self.driver_busy_fraction:.0%} "
                f"executors_busy={self.executor_busy_fraction:.0%} "
                f"executors_waiting={self.executor_wait_fraction:.0%}")


def summarize(trace: Trace, driver_label: str = "driver") -> GanttSummary:
    """Compute busy/wait fractions from a trace."""
    makespan = trace.end_time()
    nodes = trace.nodes()
    executors = [n for n in nodes if n != driver_label]
    per_node = {n: trace.utilization(n) for n in nodes}
    driver_busy = per_node.get(driver_label, 0.0)
    if executors and makespan > 0:
        busy = sum(per_node[n] for n in executors) / len(executors)
        wait = sum(trace.wait_seconds(n) for n in executors) / (
            len(executors) * makespan)
    else:
        busy, wait = 0.0, 0.0
    return GanttSummary(makespan=makespan, driver_busy_fraction=driver_busy,
                        executor_busy_fraction=busy,
                        executor_wait_fraction=wait, per_node_busy=per_node)


def render_ascii(trace: Trace, width: int = 100,
                 driver_label: str = "driver") -> str:
    """Render the trace as a text gantt chart.

    One row per node; each column is a ``makespan / width`` bucket filled
    with the character of the span kind active for the longest time in
    that bucket (``.`` = waiting, space = nothing recorded).
    """
    if width < 1:
        raise ValueError("width must be at least 1")
    makespan = trace.end_time()
    if makespan <= 0:
        return "(empty trace)"
    bucket = makespan / width

    nodes = trace.nodes()
    # Keep the paper's row order: driver on top, then executors.
    if driver_label in nodes:
        nodes = [driver_label] + [n for n in nodes if n != driver_label]

    label_width = max(len(n) for n in nodes)
    lines: list[str] = []
    for node in nodes:
        occupancy = [dict() for _ in range(width)]
        for span in trace.spans_for(node):
            first = min(width - 1, int(span.start / bucket))
            last = min(width - 1, int(max(span.start, span.end - 1e-12)
                                      / bucket))
            for col in range(first, last + 1):
                lo = max(span.start, col * bucket)
                hi = min(span.end, (col + 1) * bucket)
                if hi > lo:
                    cell = occupancy[col]
                    cell[span.kind] = cell.get(span.kind, 0.0) + (hi - lo)
        row = []
        for cell in occupancy:
            if not cell:
                row.append(" ")
            else:
                kind = max(cell, key=cell.get)
                row.append(KIND_CHARS.get(kind, "?"))
        lines.append(f"{node:>{label_width}} |{''.join(row)}|")
    legend = "  ".join(f"{c}={k}" for k, c in KIND_CHARS.items()
                       if c != "|")
    lines.append(f"{'':>{label_width}}  [{legend}]")
    return "\n".join(lines)
