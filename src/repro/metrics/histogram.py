"""Latency histograms for the serving layer.

A :class:`LatencyHistogram` records per-request (simulated) latencies and
answers two questions:

* **exact quantiles** — p50/p95/p99 computed from the raw samples with a
  deterministic nearest-rank rule (no interpolation, so results are
  bit-identical across platforms and library versions);
* **shape** — log-spaced bucket counts for display, the classic
  "how wide is the tail" view SLO dashboards plot.

Samples are simulated seconds (the repo has no wall clock — see rule
DET001), but nothing here assumes a time unit.
"""

from __future__ import annotations

import math
from bisect import bisect_left

__all__ = ["LatencyHistogram"]


class LatencyHistogram:
    """Streaming latency recorder with exact nearest-rank quantiles.

    Parameters
    ----------
    lo:
        Lower edge of the first display bucket; smaller samples land in
        an underflow bucket.
    decades:
        Number of decades the bucket grid spans above ``lo``.
    buckets_per_decade:
        Display resolution (10 gives ~25% wide buckets).
    """

    def __init__(self, lo: float = 1.0e-6, decades: int = 7,
                 buckets_per_decade: int = 10) -> None:
        if lo <= 0:
            raise ValueError("lo must be positive")
        if decades < 1 or buckets_per_decade < 1:
            raise ValueError("need at least one decade and one bucket")
        self._lo = lo
        self._n_buckets = decades * buckets_per_decade + 1
        self._per_decade = buckets_per_decade
        # underflow bucket 0, log-spaced buckets, overflow bucket at end
        self._counts = [0] * (self._n_buckets + 1)
        self._samples: list[float] = []
        self._total = 0.0
        # Upper edges of the regular buckets 1.._n_buckets-1, computed once
        # by the same formula the display labels use.  Bucketing compares
        # against these directly (bisect) instead of inverting them with
        # log10 — the roundoff of log10(edge/lo) * per_decade can land an
        # exact-edge sample one bucket too high, off by one vs its label.
        self._edges = [self._bucket_edge(i)
                       for i in range(1, self._n_buckets)]
        # Sorted-sample cache for the percentile methods; invalidated on
        # record so summary() doesn't re-sort once per percentile.
        self._sorted: list[float] | None = None

    # ------------------------------------------------------------------
    def record(self, value: float) -> None:
        """Add one latency sample (must be non-negative)."""
        if value < 0:
            raise ValueError("latency cannot be negative")
        self._samples.append(value)
        self._total += value
        self._sorted = None
        self._counts[self._bucket_index(value)] += 1

    def _bucket_index(self, value: float) -> int:
        if value < self._lo:
            return 0
        # First bucket whose upper edge covers the value; a sample lying
        # exactly on an edge belongs to that edge's bucket ("<= edge").
        return 1 + bisect_left(self._edges, value)

    def _bucket_edge(self, idx: int) -> float:
        """Upper edge of bucket ``idx`` (0 = underflow)."""
        return self._lo * 10.0 ** (idx / self._per_decade)

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return self._total / len(self._samples)

    @property
    def max(self) -> float:
        return max(self._samples) if self._samples else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank quantile of the raw samples (q in [0, 100]).

        ``percentile(50)`` of ``[1, 2, 3, 4]`` is 2: the smallest sample
        whose rank covers q% of the data.  Deterministic and exact — a
        value that was actually observed, never an interpolation.
        """
        if not 0 <= q <= 100:
            raise ValueError("q must be in [0, 100]")
        if not self._samples:
            raise ValueError("no samples recorded")
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        ordered = self._sorted
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def summary(self) -> dict:
        """The SLO numbers as a plain dict (JSON-exportable)."""
        if not self._samples:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max,
        }

    def bucket_rows(self) -> list[list[object]]:
        """Non-empty display buckets as ``[upper-edge, count, bar]`` rows.

        Pairs with ``format_table(["<= seconds", "count", ""], rows)``.
        """
        rows: list[list[object]] = []
        peak = max(self._counts) if self.count else 0
        for idx, count in enumerate(self._counts):
            if count == 0:
                continue
            if idx == self._n_buckets:
                label = f"> {self._bucket_edge(idx - 1):.3g}"
            else:
                label = f"<= {self._bucket_edge(idx):.3g}"
            bar = "#" * max(1, round(24 * count / peak))
            rows.append([label, count, bar])
        return rows

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram's samples into this one."""
        for value in other._samples:
            self.record(value)
