"""Training histories: the data behind every convergence figure.

Each record pairs a *communication step* count with the *simulated* elapsed
seconds and the (real, exactly computed) objective value at that point —
the two x-axes the paper plots objective value against in Figures 4-6.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HistoryPoint", "TrainingHistory"]


@dataclass(frozen=True)
class HistoryPoint:
    """One measurement: after ``step`` communication steps, at simulated
    time ``seconds``, the full-dataset objective was ``objective``."""

    step: int
    seconds: float
    objective: float

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ValueError("step must be non-negative")
        if self.seconds < 0:
            raise ValueError("seconds must be non-negative")


class TrainingHistory:
    """Append-only sequence of :class:`HistoryPoint` with lookup helpers."""

    def __init__(self, system: str, dataset: str = "",
                 detail: str = "") -> None:
        self.system = system
        self.dataset = dataset
        self.detail = detail
        self._points: list[HistoryPoint] = []

    # ------------------------------------------------------------------
    def record(self, step: int, seconds: float, objective: float) -> None:
        if self._points:
            last = self._points[-1]
            if step < last.step:
                raise ValueError("steps must be non-decreasing")
            if seconds < last.seconds - 1e-12:
                raise ValueError("simulated time must be non-decreasing")
        self._points.append(HistoryPoint(step, seconds, objective))

    @property
    def points(self) -> tuple[HistoryPoint, ...]:
        return tuple(self._points)

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    # ------------------------------------------------------------------
    @property
    def final_objective(self) -> float:
        self._require_points()
        return self._points[-1].objective

    @property
    def best_objective(self) -> float:
        self._require_points()
        return min(p.objective for p in self._points)

    @property
    def total_steps(self) -> int:
        self._require_points()
        return self._points[-1].step

    @property
    def total_seconds(self) -> float:
        self._require_points()
        return self._points[-1].seconds

    def objectives(self) -> list[float]:
        return [p.objective for p in self._points]

    def steps(self) -> list[int]:
        return [p.step for p in self._points]

    def seconds(self) -> list[float]:
        return [p.seconds for p in self._points]

    # ------------------------------------------------------------------
    def first_reaching(self, threshold: float) -> HistoryPoint | None:
        """Earliest point with objective <= threshold, or None."""
        for point in self._points:
            if point.objective <= threshold:
                return point
        return None

    def _require_points(self) -> None:
        if not self._points:
            raise ValueError("history is empty")

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        n = len(self._points)
        tail = f", final={self.final_objective:.4f}" if n else ""
        return f"TrainingHistory({self.system}/{self.dataset}, {n} points{tail})"
