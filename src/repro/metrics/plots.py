"""ASCII line plots of convergence curves.

The paper's Figures 4-6 are objective-vs-steps and objective-vs-time line
charts; this module renders the same curves in a terminal.  Multiple
histories share one canvas (one glyph per system), the x-axis can be
linear or logarithmic (the paper's time axes are log-scale), and the
optional threshold line mirrors the paper's dotted 0.01-accuracy-loss
marker.
"""

from __future__ import annotations

import math

from .history import TrainingHistory

__all__ = ["render_curves", "CURVE_GLYPHS"]

#: Glyphs assigned to systems in plotting order.
CURVE_GLYPHS = "*o+x#@%&"


def _x_value(point_x: float, log_x: bool) -> float | None:
    if not log_x:
        return point_x
    if point_x <= 0:
        return None
    return math.log10(point_x)


def render_curves(histories: list[TrainingHistory], x_axis: str = "steps",
                  width: int = 72, height: int = 18, log_x: bool = False,
                  threshold: float | None = None) -> str:
    """Render objective curves for several systems on one canvas.

    Parameters
    ----------
    histories:
        One curve per history; the legend uses ``history.system``.
    x_axis:
        ``"steps"`` (communication steps, the paper's left plots) or
        ``"seconds"`` (simulated time, the right plots).
    log_x:
        Log-scale the x axis (points at x <= 0 are dropped), matching the
        paper's time axes.
    threshold:
        Draw a horizontal marker row of ``-`` at this objective value
        (the 0.01-accuracy-loss line).
    """
    if x_axis not in ("steps", "seconds"):
        raise ValueError("x_axis must be 'steps' or 'seconds'")
    if not histories:
        raise ValueError("need at least one history")
    if width < 8 or height < 4:
        raise ValueError("canvas too small")
    if len(histories) > len(CURVE_GLYPHS):
        raise ValueError(
            f"at most {len(CURVE_GLYPHS)} curves per plot")

    series = []
    for history in histories:
        xs_raw = (history.steps() if x_axis == "steps"
                  else history.seconds())
        pairs = []
        for x_raw, y in zip(xs_raw, history.objectives()):
            x = _x_value(float(x_raw), log_x)
            if x is not None and math.isfinite(y):
                pairs.append((x, y))
        series.append(pairs)

    points = [p for pairs in series for p in pairs]
    if not points:
        return "(no plottable points)"
    x_lo = min(p[0] for p in points)
    x_hi = max(p[0] for p in points)
    y_values = [p[1] for p in points]
    if threshold is not None:
        y_values.append(threshold)
    y_lo, y_hi = min(y_values), max(y_values)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> tuple[int, int]:
        col = int((x - x_lo) / x_span * (width - 1))
        row = int((y_hi - y) / y_span * (height - 1))
        return row, col

    if threshold is not None:
        t_row, _ = cell(x_lo, threshold)
        for col in range(width):
            grid[t_row][col] = "-"

    for pairs, glyph in zip(series, CURVE_GLYPHS):
        for x, y in pairs:
            row, col = cell(x, y)
            grid[row][col] = glyph

    y_labels = [f"{y_hi:.3f}", f"{(y_hi + y_lo) / 2:.3f}", f"{y_lo:.3f}"]
    label_width = max(len(l) for l in y_labels)
    lines = []
    for i, row in enumerate(grid):
        if i == 0:
            label = y_labels[0]
        elif i == height // 2:
            label = y_labels[1]
        elif i == height - 1:
            label = y_labels[2]
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |{''.join(row)}|")

    axis_name = x_axis if not log_x else f"log10({x_axis})"
    left = f"{x_lo:.3g}"
    right = f"{x_hi:.3g}"
    pad = width - len(left) - len(right)
    lines.append(f"{'':>{label_width}}  {left}{' ' * max(1, pad)}{right}"
                 f"  [{axis_name}]")
    legend = "  ".join(f"{glyph}={h.system}"
                       for h, glyph in zip(histories, CURVE_GLYPHS))
    lines.append(f"{'':>{label_width}}  {legend}")
    return "\n".join(lines)
