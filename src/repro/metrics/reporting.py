"""Plain-text result tables for the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["format_table", "format_speedup", "RecoveryReport",
           "recovery_report"]


def format_table(headers: list[str], rows: list[list[object]],
                 title: str = "") -> str:
    """Render an aligned monospace table.

    Floats are shown with 4 significant digits; None renders as ``-``.
    """
    def fmt(value: object) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    text_rows = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: list[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)


def format_speedup(value: float | None) -> str:
    """Speedups print as ``12.3x``; non-convergence prints as ``n/c``."""
    if value is None:
        return "n/c"
    return f"{value:.3g}x"


@dataclass(frozen=True)
class RecoveryReport:
    """Per-system fault-recovery accounting for one training run."""

    system: str
    num_failures: int
    recovery_seconds: float
    total_seconds: float

    @property
    def overhead_fraction(self) -> float:
        """Share of the makespan spent in recovery downtime."""
        if self.total_seconds <= 0:
            return 0.0
        return self.recovery_seconds / self.total_seconds

    def row(self) -> list[object]:
        return [self.system, self.num_failures,
                round(self.recovery_seconds, 4),
                round(self.total_seconds, 4),
                f"{self.overhead_fraction:.1%}"]


def recovery_report(result) -> RecoveryReport:
    """Summarize the fault-recovery cost of a ``TrainResult``.

    Pairs with ``format_table(["system", "failures", "recovery s",
    "total s", "overhead"], [r.row() for r in reports])`` in the
    fault-recovery bench.
    """
    return RecoveryReport(
        system=result.history.system,
        num_failures=len(result.failures),
        recovery_seconds=result.recovery_seconds,
        total_seconds=result.history.total_seconds)
