"""Plain-text result tables for the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["format_table", "format_speedup", "CommReport", "comm_report",
           "RecoveryReport", "recovery_report", "ServingReport",
           "serving_report", "SchedReport", "sched_report"]


def format_table(headers: list[str], rows: list[list[object]],
                 title: str = "") -> str:
    """Render an aligned monospace table.

    Floats are shown with 4 significant digits; None renders as ``-``.
    """
    def fmt(value: object) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    text_rows = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: list[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)


def format_speedup(value: float | None) -> str:
    """Speedups print as ``12.3x``; non-convergence prints as ``n/c``."""
    if value is None:
        return "n/c"
    return f"{value:.3g}x"


@dataclass(frozen=True)
class CommReport:
    """Wire-volume and priced-seconds accounting for one training run.

    Aggregated over the run's :class:`~repro.engine.CommRecord` entries;
    ``by_phase`` maps each phase name to its (dense values, wire values)
    totals, in first-appearance order.
    """

    system: str
    phases: int
    steps: int
    dense_values: float
    wire_values: float
    comm_seconds: float
    dense_comm_seconds: float
    by_phase: tuple[tuple[str, float, float], ...]

    @property
    def compression(self) -> float:
        """Dense-over-wire volume ratio across the whole run."""
        if self.wire_values <= 0:
            return 1.0
        return self.dense_values / self.wire_values

    @property
    def speedup(self) -> float:
        """Dense-over-wire priced communication-seconds ratio."""
        if self.comm_seconds <= 0:
            return 1.0
        return self.dense_comm_seconds / self.comm_seconds

    HEADERS = ["system", "phases", "dense values", "wire values",
               "compression", "comm s", "dense comm s", "speedup"]

    def row(self) -> list[object]:
        return [self.system, self.phases, self.dense_values,
                self.wire_values, format_speedup(self.compression),
                round(self.comm_seconds, 4),
                round(self.dense_comm_seconds, 4),
                format_speedup(self.speedup)]

    def describe(self) -> str:
        lines = [
            f"wire volume {self.wire_values:.0f} values vs "
            f"{self.dense_values:.0f} dense "
            f"({self.compression:.3g}x compression) over "
            f"{self.phases} comm phases",
            f"priced communication {self.comm_seconds:.4f}s vs "
            f"{self.dense_comm_seconds:.4f}s dense "
            f"({self.speedup:.3g}x)",
        ]
        for phase, dense, wire in self.by_phase:
            ratio = dense / wire if wire > 0 else 1.0
            lines.append(f"  {phase}: {wire:.0f} of {dense:.0f} dense "
                         f"values ({ratio:.3g}x)")
        return "\n".join(lines)


def comm_report(result) -> CommReport:
    """Summarize a ``TrainResult``'s communication wire accounting."""
    records = result.comm
    by_phase: dict[str, list[float]] = {}
    for r in records:
        totals = by_phase.setdefault(r.phase, [0.0, 0.0])
        totals[0] += r.dense_values
        totals[1] += r.wire_values
    steps = len({r.step for r in records})
    return CommReport(
        system=result.history.system,
        phases=len(records),
        steps=steps,
        dense_values=sum(r.dense_values for r in records),
        wire_values=sum(r.wire_values for r in records),
        comm_seconds=sum(r.seconds for r in records),
        dense_comm_seconds=sum(r.dense_seconds for r in records),
        by_phase=tuple((phase, totals[0], totals[1])
                       for phase, totals in by_phase.items()))


@dataclass(frozen=True)
class RecoveryReport:
    """Per-system fault-recovery accounting for one training run."""

    system: str
    num_failures: int
    recovery_seconds: float
    total_seconds: float

    @property
    def overhead_fraction(self) -> float:
        """Share of the makespan spent in recovery downtime."""
        if self.total_seconds <= 0:
            return 0.0
        return self.recovery_seconds / self.total_seconds

    def row(self) -> list[object]:
        return [self.system, self.num_failures,
                round(self.recovery_seconds, 4),
                round(self.total_seconds, 4),
                f"{self.overhead_fraction:.1%}"]


def recovery_report(result) -> RecoveryReport:
    """Summarize the fault-recovery cost of a ``TrainResult``.

    Pairs with ``format_table(["system", "failures", "recovery s",
    "total s", "overhead"], [r.row() for r in reports])`` in the
    fault-recovery bench.
    """
    return RecoveryReport(
        system=result.history.system,
        num_failures=len(result.failures),
        recovery_seconds=result.recovery_seconds,
        total_seconds=result.history.total_seconds)


@dataclass(frozen=True)
class ServingReport:
    """SLO accounting for one :class:`repro.serve.PredictionService` run.

    All times are simulated seconds from the serving cost model; QPS is
    completed requests over the makespan (first arrival to last
    completion).
    """

    offered: int
    completed: int
    shed: int
    qps: float
    mean_batch: float
    max_queue_depth: int
    p50: float
    p95: float
    p99: float
    disagreements: int | None = None
    shadow_rows: int | None = None
    shadow_p99: float | None = None

    @property
    def shed_rate(self) -> float:
        """Share of offered requests rejected at admission."""
        if self.offered == 0:
            return 0.0
        return self.shed / self.offered

    @property
    def disagreement_rate(self) -> float | None:
        """Share of shadow-scored rows where the versions disagree."""
        if self.shadow_rows is None or self.disagreements is None:
            return None
        if self.shadow_rows == 0:
            return 0.0
        return self.disagreements / self.shadow_rows

    HEADERS = ["offered", "completed", "shed", "shed %", "qps",
               "mean batch", "max queue", "p50 s", "p95 s", "p99 s"]

    def row(self) -> list[object]:
        return [self.offered, self.completed, self.shed,
                f"{self.shed_rate:.1%}", round(self.qps, 1),
                round(self.mean_batch, 2), self.max_queue_depth,
                round(self.p50, 6), round(self.p95, 6), round(self.p99, 6)]

    def describe(self) -> str:
        lines = [
            f"offered {self.offered}, completed {self.completed}, "
            f"shed {self.shed} ({self.shed_rate:.1%})",
            f"throughput {self.qps:.1f} predictions/s (simulated), "
            f"mean batch {self.mean_batch:.2f}, "
            f"max queue depth {self.max_queue_depth}",
            f"latency p50 {self.p50:.6f}s  p95 {self.p95:.6f}s  "
            f"p99 {self.p99:.6f}s",
        ]
        rate = self.disagreement_rate
        if rate is not None:
            lines.append(
                f"shadow: {self.disagreements}/{self.shadow_rows} "
                f"disagreements ({rate:.2%}), "
                f"shadow p99 {self.shadow_p99 or 0.0:.6f}s")
        return "\n".join(lines)


def serving_report(result) -> ServingReport:
    """Summarize a ``ServingResult`` (duck-typed, like ``recovery_report``)."""
    latency = result.latency.summary()
    shadow = getattr(result, "shadow", None)
    return ServingReport(
        offered=result.offered,
        completed=result.completed,
        shed=len(result.shed),
        qps=result.qps,
        mean_batch=result.mean_batch,
        max_queue_depth=result.max_queue_depth,
        p50=latency.get("p50", 0.0),
        p95=latency.get("p95", 0.0),
        p99=latency.get("p99", 0.0),
        disagreements=None if shadow is None else shadow.disagreements,
        shadow_rows=None if shadow is None else shadow.rows,
        shadow_p99=None if shadow is None else shadow.p99)


@dataclass(frozen=True)
class SchedReport:
    """Cluster-scheduler run summary (``repro sched run`` / the bench).

    Goodput counts completed training supersteps per global simulated
    second — the scheduler-level analog of a single run's steps/second,
    summed over every job the pool multiplexed.  Utilization is the
    share of executor-seconds the pool spent actually held by jobs
    (compute, re-partition, and checkpoint time all count; idle and
    fragmentation losses do not).
    """

    policy: str
    jobs: int
    finished: int
    preemptions: int
    resizes: int
    makespan: float
    total_executors: int
    total_steps: int
    goodput: float
    utilization: float
    mean_queue_wait: float
    max_queue_wait: float
    jct_p50: float
    jct_p95: float

    HEADERS = ["policy", "jobs", "done", "preempt", "resize", "makespan",
               "goodput", "util", "wait mean", "jct p50", "jct p95"]

    def row(self) -> list[object]:
        return [self.policy, self.jobs, self.finished, self.preemptions,
                self.resizes, round(self.makespan, 4),
                round(self.goodput, 2), f"{self.utilization:.1%}",
                round(self.mean_queue_wait, 4),
                round(self.jct_p50, 4), round(self.jct_p95, 4)]

    def describe(self) -> str:
        return "\n".join([
            f"policy {self.policy}: {self.finished}/{self.jobs} jobs "
            f"finished, {self.preemptions} preemptions, "
            f"{self.resizes} resizes",
            f"makespan {self.makespan:.4f}s on {self.total_executors} "
            f"executors, goodput {self.goodput:.2f} steps/s, "
            f"utilization {self.utilization:.1%}",
            f"queue wait mean {self.mean_queue_wait:.4f}s "
            f"max {self.max_queue_wait:.4f}s; "
            f"JCT p50 {self.jct_p50:.4f}s p95 {self.jct_p95:.4f}s",
        ])


def sched_report(result) -> SchedReport:
    """Summarize a ``SchedResult`` (duck-typed, like ``serving_report``)."""
    from .histogram import LatencyHistogram

    jobs = [j for j in result.jobs if j.state != "cancelled"]
    finished = [j for j in jobs if j.state == "finished"]
    makespan = result.makespan
    total_steps = sum(j.steps_done for j in jobs)
    held = sum(j.executor_seconds for j in jobs)
    capacity = result.config.total_executors * makespan
    waits = [j.queue_wait for j in jobs]
    hist = LatencyHistogram()
    for job in finished:
        hist.record(max(job.jct, 1.0e-9))
    summary = hist.summary() if finished else {}
    return SchedReport(
        policy=result.config.policy,
        jobs=len(jobs),
        finished=len(finished),
        preemptions=sum(j.preemptions for j in jobs),
        resizes=sum(j.resizes for j in jobs),
        makespan=makespan,
        total_executors=result.config.total_executors,
        total_steps=total_steps,
        goodput=total_steps / makespan if makespan > 0 else 0.0,
        utilization=held / capacity if capacity > 0 else 0.0,
        mean_queue_wait=sum(waits) / len(waits) if waits else 0.0,
        max_queue_wait=max(waits, default=0.0),
        jct_p50=summary.get("p50", 0.0),
        jct_p95=summary.get("p95", 0.0))
