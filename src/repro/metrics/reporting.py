"""Plain-text result tables for the benchmark harness."""

from __future__ import annotations

__all__ = ["format_table", "format_speedup"]


def format_table(headers: list[str], rows: list[list[object]],
                 title: str = "") -> str:
    """Render an aligned monospace table.

    Floats are shown with 4 significant digits; None renders as ``-``.
    """
    def fmt(value: object) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    text_rows = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: list[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)


def format_speedup(value: float | None) -> str:
    """Speedups print as ``12.3x``; non-convergence prints as ``n/c``."""
    if value is None:
        return "n/c"
    return f"{value:.3g}x"
