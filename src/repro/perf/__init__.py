"""Wall-clock performance layer: profiling and measurement harness.

This package is the **only** place in ``repro`` allowed to read the host
wall clock.  Everywhere else, "seconds" means *simulated* seconds priced
by the cluster cost model, and the determinism lint (``DET001``) rejects
``time.*`` calls outright; the lint rules scope ``repro/perf/`` out
explicitly (see :mod:`repro.analysis.rules`) rather than via per-line
``noqa`` so the exemption is structural and reviewable in one place.

Wall-clock readings made here are **never** fed back into the simulation
— they exist to measure the reproduction's own host-side speed (the
subject of ``BENCH_wallclock.json`` and the ``repro perf`` CLI command).

Only :mod:`repro.perf.profiler` is re-exported here;
:mod:`repro.perf.harness` imports the trainers (which import the profiler
for their instrumentation hooks), so import it explicitly as
``repro.perf.harness`` to avoid the cycle.
"""

from .profiler import NullProfiler, PhaseProfiler, PhaseStat

__all__ = ["PhaseProfiler", "PhaseStat", "NullProfiler"]
