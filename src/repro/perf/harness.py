"""Wall-clock benchmark harness: kernel and backend speedup studies.

Everything in this module measures *real elapsed time* — the one thing
the rest of ``repro`` is forbidden to look at (rule ``DET001`` scopes
its wall-clock check so that ``repro/perf/`` is the only package allowed
to read the clock).  Two studies:

* :func:`kernel_benchmarks` times each hot local-solver path twice —
  once on the retained reference implementations
  (:mod:`repro.glm.reference`) and once on the fast CSR kernels
  (:mod:`repro.glm.kernels`) — and asserts the resulting weight vectors
  are **bit-identical** before reporting the speedup.  A measurement that
  changed the numerics is a bug, not a result.
* :func:`backend_sweep` runs one trainer end-to-end under each execution
  backend (``serial`` / ``threads`` / ``processes``, plus a
  serial-with-reference-kernels baseline representing the pre-PR code)
  and asserts every run's convergence history matches point-for-point
  before reporting wall-clock speedups.

This module imports trainer machinery, so ``repro.perf.__init__`` does
not re-export it (that would create an import cycle through
``core.trainer`` -> ``perf.profiler``); import it explicitly as
``repro.perf.harness``.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np
import scipy.sparse as sp

from ..data import SparseDataset, SyntheticSpec, generate
from ..glm import Objective, mgd_epoch, sgd_epoch, use_reference_kernels
from .profiler import measure

__all__ = ["kernel_benchmarks", "backend_sweep", "KERNEL_CASE_NAMES"]

#: The kernel paths timed by :func:`kernel_benchmarks` — one per epoch
#: solver dispatch branch (lazy chunked SGD, eager chunked SGD via L1,
#: and mini-batch GD).
KERNEL_CASE_NAMES = ("sgd_lazy_l2", "sgd_lazy_unreg", "sgd_eager_l1",
                     "mgd_epoch")


def _workload(rows: int, features: int, nnz_per_row: float,
              seed: int) -> tuple[sp.csr_matrix, np.ndarray]:
    """A synthetic partition shaped like one worker's share of WX."""
    dataset = generate(SyntheticSpec(n_rows=rows, n_features=features,
                                     nnz_per_row=nnz_per_row, noise=0.02,
                                     seed=seed), name="perf-kernels")
    return dataset.X, dataset.y


def kernel_benchmarks(rows: int = 1500, features: int = 40000,
                      nnz_per_row: float = 40.0, chunk_size: int = 64,
                      lr: float = 0.1, seed: int = 11,
                      repeats: int = 3) -> list[dict[str, Any]]:
    """Time reference vs fast kernels; assert bit-identity; report speedup.

    The default shape (wide model, short chunks) is the regime the fast
    kernels target: the reference path materializes an ``m``-length dense
    gradient per chunk, so its cost is dominated by ``features`` rather
    than by the data.
    """
    X, y = _workload(rows, features, nnz_per_row, seed)
    cases: dict[str, tuple[Objective, Callable[[], np.ndarray]]] = {}

    def sgd_runner(objective: Objective) -> Callable[[], np.ndarray]:
        def run() -> np.ndarray:
            w = np.zeros(X.shape[1])
            rng = np.random.default_rng(seed)
            new_w, _ = sgd_epoch(objective, w, X, y, lr, rng,
                                 chunk_size=chunk_size)
            return new_w
        return run

    def mgd_runner(objective: Objective) -> Callable[[], np.ndarray]:
        def run() -> np.ndarray:
            w = np.zeros(X.shape[1])
            rng = np.random.default_rng(seed)
            new_w, _ = mgd_epoch(objective, w, X, y, lr, chunk_size, rng)
            return new_w
        return run

    cases["sgd_lazy_l2"] = (Objective("hinge", "l2", 0.1), sgd_runner)
    cases["sgd_lazy_unreg"] = (Objective("logistic"), sgd_runner)
    cases["sgd_eager_l1"] = (Objective("hinge", "l1", 0.01), sgd_runner)
    cases["mgd_epoch"] = (Objective("squared", "l2", 0.1), mgd_runner)

    entries: list[dict[str, Any]] = []
    for name in KERNEL_CASE_NAMES:
        objective, make_runner = cases[name]
        run = make_runner(objective)
        with use_reference_kernels():
            w_ref, ref_seconds = measure(run, repeats)
        w_fast, fast_seconds = measure(run, repeats)
        if not np.array_equal(w_ref, w_fast):
            raise AssertionError(
                f"kernel case '{name}': fast result differs from the "
                "reference implementation — refusing to report a speedup "
                "for changed numerics")
        entries.append({
            "kernel": name,
            "reference_seconds": ref_seconds,
            "fast_seconds": fast_seconds,
            "speedup": ref_seconds / fast_seconds if fast_seconds else
            float("inf"),
            "bit_identical": True,
        })
    return entries


def backend_sweep(make_trainer: Callable[[str], Any],
                  dataset: SparseDataset,
                  backends: Sequence[str] = ("serial", "threads",
                                             "processes"),
                  repeats: int = 1,
                  include_reference_baseline: bool = True,
                  ) -> dict[str, Any]:
    """Wall-clock one trainer end-to-end under each execution backend.

    ``make_trainer(backend)`` must return a fresh trainer whose config
    uses that backend; each timed run constructs its own trainer so no
    state leaks between measurements.  With
    ``include_reference_baseline`` the sweep starts with a
    serial-backend run on the reference kernels — the pre-optimization
    code on the pre-optimization execution path — and reports every
    speedup against it.

    Every run's convergence history must match the first run's
    point-for-point (steps, simulated seconds and objective values);
    a mismatch raises instead of reporting a speedup.
    """
    seconds: dict[str, float] = {}
    points: dict[str, list] = {}

    def run(backend: str) -> Any:
        return make_trainer(backend).fit(dataset)

    if include_reference_baseline:
        with use_reference_kernels():
            result, secs = measure(lambda: run("serial"), repeats)
        seconds["serial+reference"] = secs
        points["serial+reference"] = list(result.history.points)
    for backend in backends:
        result, secs = measure(lambda b=backend: run(b), repeats)
        seconds[backend] = secs
        points[backend] = list(result.history.points)

    names = list(points)
    first = points[names[0]]
    for name in names[1:]:
        if points[name] != first:
            raise AssertionError(
                f"run '{name}' produced a different convergence history "
                f"than '{names[0]}' — backends/kernels must be "
                "bit-identical")

    baseline = names[0]
    return {
        "baseline": baseline,
        "seconds": seconds,
        "speedup_vs_baseline": {
            name: seconds[baseline] / secs if secs else float("inf")
            for name, secs in seconds.items()
        },
        "bit_identical": True,
        "history_points": len(first),
    }
