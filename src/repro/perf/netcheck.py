"""Measured-vs-simulated network validation (``repro perf
--validate-network``).

Everything priced by :class:`repro.cluster.network.NetworkModel` has so
far been *simulated*: ``alpha + bytes / bandwidth`` with paper-derived
constants.  The socket backend finally gives us a real transport — each
superstep's task exchanges cross localhost TCP with measured
bytes-on-wire and wall seconds — so the alpha-beta model can be checked
against observations:

1. train the same workload twice, on the ``serial`` and ``socket``
   backends, and **gate on bit-identity** (histories point-for-point,
   weights bit-equal) — a validation run whose numerics drifted is
   measuring a different computation;
2. replay the socket run's wire log through the cluster's
   ``NetworkModel``: each request/response is priced as two transfers of
   its actual byte counts — the *simulated* seconds the model assigns to
   exactly the messages that crossed the wire;
3. least-squares fit the alpha-beta constants to the measured
   ``(bytes, comm_seconds)`` samples (``comm_seconds`` is the round trip
   minus the daemon-reported compute time), giving the localhost
   transport's *empirical* per-message latency and bandwidth next to the
   model's configured ones.

Localhost TCP is not the paper's 1 Gbps datacenter fabric, so the
interesting output is not "ratio == 1" but the decomposition: how much
of measured wall time is per-message overhead (alpha-like, dominant for
model-sized messages on loopback) vs payload (beta-like), and whether
the model's *shape* — linear in bytes with a constant floor — holds on a
real wire.  Like the rest of :mod:`repro.perf`, this module is on the
wall-clock side of the DET001 fence; nothing here feeds the simulated
clock.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..cluster import ClusterSpec, cluster1
from ..core import MLlibStarTrainer, TrainerConfig
from ..data import SparseDataset, SyntheticSpec, generate
from ..glm import Objective

__all__ = ["validate_network", "fit_alpha_beta", "simulate_wire_log"]


def _unfittable(reason: str, samples: int,
                distinct_sizes: int) -> dict[str, Any]:
    """Diagnostic result for a sample set that cannot identify the line."""
    return {"ok": False, "reason": reason, "samples": samples,
            "distinct_sizes": distinct_sizes}


def fit_alpha_beta(samples: list[tuple[float, float]]) -> dict[str, Any]:
    """Least-squares fit ``seconds = 2*alpha + bytes / bandwidth``.

    ``samples`` are per-request ``(roundtrip_bytes, comm_seconds)``
    observations; the factor 2 reflects one request + one response, each
    paying the per-message latency.  Always returns a dict: on success
    ``ok`` is True alongside the fitted constants; when the samples
    cannot identify the line — fewer than two samples (a single
    superstep), fewer than two *distinct* message sizes (the normal
    equations are singular: every run with uniform frames would
    otherwise crash in the solver), non-finite measurements, or a
    non-physical non-positive slope — ``ok`` is False and ``reason``
    says which degeneracy was hit, so callers report *why* instead of
    dying on a singular matrix.
    """
    sizes = np.array([s[0] for s in samples], dtype=np.float64)
    secs = np.array([s[1] for s in samples], dtype=np.float64)
    distinct = int(np.unique(sizes).size)
    if len(samples) < 2:
        return _unfittable(
            f"need at least 2 samples to fit a line, got {len(samples)} "
            "(a single superstep cannot separate latency from bandwidth)",
            len(samples), distinct)
    if not (np.all(np.isfinite(sizes)) and np.all(np.isfinite(secs))):
        return _unfittable(
            "samples contain non-finite byte counts or seconds",
            len(samples), distinct)
    if distinct < 2:
        return _unfittable(
            f"all {len(samples)} samples share one message size "
            f"({sizes[0]:.0f} bytes): uniform frames cannot separate "
            "per-message latency (alpha) from payload cost (beta)",
            len(samples), distinct)
    try:
        slope, intercept = np.polyfit(sizes, secs, 1)
    except np.linalg.LinAlgError as exc:  # pragma: no cover - defensive
        return _unfittable(f"least-squares solve failed: {exc}",
                           len(samples), distinct)
    if slope <= 0:
        return _unfittable(
            f"fitted slope {float(slope):.3g} s/byte is not positive: "
            "larger messages did not take longer, so the samples are "
            "noise-dominated (non-physical negative bandwidth)",
            len(samples), distinct)
    predicted = intercept + slope * sizes
    residual = float(np.sqrt(np.mean((secs - predicted) ** 2)))
    return {
        "ok": True,
        "alpha_seconds": max(0.0, float(intercept) / 2.0),
        "bandwidth_bytes_per_second": 1.0 / float(slope),
        "rms_residual_seconds": residual,
        "samples": len(samples),
        "distinct_sizes": distinct,
    }


def simulate_wire_log(wire_stats: dict[str, Any],
                      cluster: ClusterSpec) -> dict[str, Any]:
    """Price the socket run's actual messages through the cluster's
    simulated :class:`NetworkModel`.

    Each recorded superstep row aggregates its requests' bytes; every
    request/response pair is priced as two transfers (out + in) of its
    measured volume, using the model's ``bytes_per_value`` to convert
    bytes back into the value counts ``transfer_seconds`` expects.
    """
    network = cluster.network
    per_superstep = []
    total = 0.0
    for row in wire_stats["per_superstep"]:
        messages = row["messages"]
        out_values = row["bytes_out"] / network.bytes_per_value
        in_values = row["bytes_in"] / network.bytes_per_value
        # messages requests + messages responses, each paying alpha; the
        # payload is the sum of the actual frame bytes.
        seconds = (network.transfer_seconds(out_values / max(1, messages))
                   * messages
                   + network.transfer_seconds(in_values / max(1, messages))
                   * messages)
        per_superstep.append({
            "superstep": row["superstep"],
            "messages": messages,
            "bytes": row["bytes_out"] + row["bytes_in"],
            "simulated_seconds": seconds,
            "measured_comm_seconds": row["comm_seconds"],
        })
        total += seconds
    return {
        "seconds": total,
        "alpha_seconds": network.alpha,
        "bandwidth_bytes_per_second": network.bandwidth,
        "per_superstep": per_superstep,
    }


def _default_workload(rows: int, features: int,
                      seed: int) -> SparseDataset:
    return generate(SyntheticSpec(n_rows=rows, n_features=features,
                                  nnz_per_row=8.0, noise=0.02, seed=17),
                    name="netcheck")


def validate_network(rows: int = 400, features: int = 48,
                     executors: int = 4, steps: int = 5, seed: int = 3,
                     make_trainer: Callable[[str], Any] | None = None,
                     dataset: SparseDataset | None = None,
                     ) -> dict[str, Any]:
    """Run the serial-vs-socket validation; return the full report.

    ``make_trainer(backend)`` may override the default MLlib* workload;
    it must return a fresh trainer per call and its cluster is used for
    the simulated pricing.  Raises :class:`AssertionError` if the socket
    run is not bit-identical to serial — measured numbers for a drifted
    computation would be meaningless.
    """
    if dataset is None:
        dataset = _default_workload(rows, features, seed)
    if make_trainer is not None:
        factory = make_trainer
    else:
        objective = Objective("hinge", "l2", 0.1)
        default_cluster = cluster1(executors=executors)

        def factory(backend: str) -> Any:
            config = TrainerConfig(max_steps=steps, learning_rate=0.3,
                                   lr_schedule="inv_sqrt",
                                   batch_fraction=0.25,
                                   local_chunk_size=16, seed=seed,
                                   backend=backend)
            return MLlibStarTrainer(objective, default_cluster, config)

    serial_trainer = factory("serial")
    serial_result = serial_trainer.fit(dataset)
    socket_trainer = factory("socket")
    socket_result = socket_trainer.fit(dataset)
    cluster = socket_trainer.cluster

    serial_points = list(serial_result.history.points)
    socket_points = list(socket_result.history.points)
    identical = (serial_points == socket_points
                 and np.array_equal(serial_result.model.weights,
                                    socket_result.model.weights))
    if not identical:
        raise AssertionError(
            "socket backend is not bit-identical to serial on the "
            "validation workload — refusing to compare measured vs "
            "simulated seconds for a drifted computation")

    wire_stats = socket_trainer.last_wire_stats
    if not wire_stats:
        raise AssertionError("socket run produced no wire accounting")

    simulated = simulate_wire_log(wire_stats, cluster)
    task_rows = [r for r in wire_stats["per_superstep"]
                 if r["superstep"] > 0]
    # Fit over every superstep INCLUDING the partition install — its
    # much larger frames are what give the regression the size spread
    # needed to separate per-message latency from payload cost.
    samples = [(float(r["bytes_out"] + r["bytes_in"]) / max(1,
                                                            r["messages"]),
                r["comm_seconds"] / max(1, r["messages"]))
               for r in wire_stats["per_superstep"]]
    measured_comm = sum(r["comm_seconds"] for r in task_rows)
    simulated_tasks = sum(r["simulated_seconds"]
                          for r in simulated["per_superstep"]
                          if r["superstep"] > 0)
    return {
        "bit_identical": True,
        "workload": {
            "system": getattr(socket_trainer, "system", "custom"),
            "dataset": dataset.name,
            "executors": cluster.num_executors,
            "history_points": len(serial_points),
        },
        "measured": {
            "messages": wire_stats["messages"],
            "bytes_on_wire": (wire_stats["bytes_out"]
                              + wire_stats["bytes_in"]),
            "install_bytes": wire_stats["install_bytes"],
            "roundtrip_seconds": wire_stats["roundtrip_seconds"],
            "compute_seconds": wire_stats["compute_seconds"],
            "comm_seconds": wire_stats["comm_seconds"],
            "task_comm_seconds": measured_comm,
        },
        "simulated": {
            "seconds": simulated["seconds"],
            "task_seconds": simulated_tasks,
            "alpha_seconds": simulated["alpha_seconds"],
            "bandwidth_bytes_per_second":
                simulated["bandwidth_bytes_per_second"],
        },
        "ratio_measured_over_simulated":
            measured_comm / simulated_tasks if simulated_tasks else None,
        "fitted": fit_alpha_beta(samples),
        "per_superstep": simulated["per_superstep"],
    }
