"""Wall-clock phase profiler for host-side performance measurement.

``repro``'s simulated clock answers "how long would this take on the
modelled cluster"; this profiler answers "how long did the *simulation*
take on this machine" — the quantity the wall-clock fast path (parallel
backends + CSR kernels) optimizes.  Phases nest and accumulate:

    profiler = PhaseProfiler()
    trainer.profiler = profiler          # trainers carry a hook
    trainer.fit(dataset)
    profiler.wall("local_solve")         # seconds inside worker solves

The trainer template times ``superstep`` (one ``_run_step``) and
``evaluate`` (full-dataset objective, monitoring only); the execution
backend times ``local_solve`` (the fanned-out per-worker work).

Wall-clock reads live *only* under ``repro/perf/`` — the determinism lint
(DET001) forbids them everywhere else and exempts this directory by rule
scope (see :mod:`repro.analysis.rules`).  Nothing measured here ever
flows into simulated seconds: the profiler observes, the cost model
prices.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, TypeVar

__all__ = ["PhaseProfiler", "PhaseStat", "NullProfiler", "measure"]

T = TypeVar("T")


@dataclass
class PhaseStat:
    """Accumulated wall time for one named phase."""

    calls: int = 0
    wall: float = 0.0

    @property
    def mean(self) -> float:
        return self.wall / self.calls if self.calls else 0.0


class PhaseProfiler:
    """Accumulates wall-clock time per named phase (re-entrant, nestable)."""

    def __init__(self) -> None:
        self._stats: dict[str, PhaseStat] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a ``with`` block under ``name`` (adds to prior calls)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            stat = self._stats.setdefault(name, PhaseStat())
            stat.calls += 1
            stat.wall += time.perf_counter() - start

    def wall(self, name: str) -> float:
        """Total wall seconds accumulated under ``name`` (0.0 if unseen)."""
        stat = self._stats.get(name)
        return stat.wall if stat is not None else 0.0

    def report(self) -> dict[str, PhaseStat]:
        """Phase name -> accumulated stat, in first-seen order."""
        return dict(self._stats)

    def rows(self) -> list[list[object]]:
        """Table rows (phase, calls, total s, mean ms) for CLI output."""
        return [[name, stat.calls, round(stat.wall, 4),
                 round(1e3 * stat.mean, 4)]
                for name, stat in self._stats.items()]

    def reset(self) -> None:
        self._stats.clear()


class _NullPhase:
    """A reusable no-op context manager (cheaper than nullcontext())."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_PHASE = _NullPhase()


class NullProfiler(PhaseProfiler):
    """Profiling disabled: every hook is a no-op.

    The default on trainers and backends, so instrumentation costs nothing
    unless a real :class:`PhaseProfiler` is installed.
    """

    def phase(self, name: str) -> _NullPhase:  # type: ignore[override]
        return _NULL_PHASE

    def wall(self, name: str) -> float:
        return 0.0

    def report(self) -> dict[str, PhaseStat]:
        return {}


def measure(fn: Callable[[], T], repeats: int = 1) -> tuple[T, float]:
    """Run ``fn`` ``repeats`` times; return (last result, best wall secs).

    Best-of-N is the standard microbenchmark estimator: the minimum is the
    least contaminated by scheduler noise on a shared host.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    best = float("inf")
    result: T
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return result, best
