"""Analytic cost advisor (the cost-optimizer direction of reference [11])."""

from .advisor import (ADVISABLE_SYSTEMS, StepCost, WorkloadProfile,
                      estimate_step_cost, rank_systems)

__all__ = ["StepCost", "WorkloadProfile", "estimate_step_cost",
           "rank_systems", "ADVISABLE_SYSTEMS"]
