"""Analytic per-step cost breakdown and system advisor.

The paper's related work discusses a cost-based optimizer for gradient
descent plans (Kaoudi et al., reference [11]); the authors sidestep it by
grid searching.  This module implements the piece that *is* derivable from
first principles in our setting: an analytic decomposition of one
communication step's simulated time into compute, communication and
driver-serialized components, for every system in the study.

The decomposition answers the practical questions the paper's analysis
raises — where does each step's time go, when does the driver dominate,
at what model size does AllReduce start paying off — without running the
training.  It prices exactly the same phases the trainers execute, so
tests can check the prediction against a measured run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import ClusterSpec
from ..engine import BroadcastModel, ShuffleModel, TreeAggregateModel
from ..ps.engine import PsEngine

__all__ = ["StepCost", "WorkloadProfile", "estimate_step_cost",
           "rank_systems", "ADVISABLE_SYSTEMS"]

ADVISABLE_SYSTEMS = ("MLlib", "MLlib+MA", "MLlib*", "Petuum*", "Angel")


@dataclass(frozen=True)
class WorkloadProfile:
    """What the advisor needs to know about a workload.

    ``nnz_per_step_per_worker`` is the stored nonzeros one worker touches
    in one communication step (batch nnz for SendGradient/Petuum, the full
    partition — times local epochs — for SendModel systems); use
    :meth:`from_dataset` helpers or fill it directly.
    """

    model_size: int
    nnz_per_step_per_worker: float

    def __post_init__(self) -> None:
        if self.model_size < 1:
            raise ValueError("model_size must be positive")
        if self.nnz_per_step_per_worker < 0:
            raise ValueError("nnz per step must be non-negative")


@dataclass(frozen=True)
class StepCost:
    """One system's per-step time decomposition (simulated seconds)."""

    system: str
    compute: float
    communication: float
    driver: float

    @property
    def total(self) -> float:
        return self.compute + self.communication + self.driver

    def describe(self) -> str:
        return (f"{self.system}: {self.total:.4f}s "
                f"(compute {self.compute:.4f}, "
                f"comm {self.communication:.4f}, "
                f"driver {self.driver:.4f})")


def _sendgradient_cost(cluster: ClusterSpec,
                       profile: WorkloadProfile) -> StepCost:
    """MLlib: batch gradient + treeAggregate + update + broadcast."""
    slowest = min(node.speed for node in cluster.executors)
    compute = cluster.compute.sparse_pass_seconds(
        2 * profile.nnz_per_step_per_worker,
        cluster.executors[0]) / slowest
    timing = TreeAggregateModel().timing(cluster, profile.model_size)
    update = cluster.compute.dense_op_seconds(profile.model_size,
                                              cluster.driver)
    broadcast = BroadcastModel().seconds(cluster, profile.model_size)
    return StepCost(system="MLlib", compute=compute,
                    communication=timing.aggregator_seconds + broadcast,
                    driver=timing.driver_seconds + update)


def _sendmodel_driver_cost(cluster: ClusterSpec,
                           profile: WorkloadProfile) -> StepCost:
    """MLlib+MA: local pass + the unchanged driver round-trip."""
    base = _sendgradient_cost(cluster, profile)
    return StepCost(system="MLlib+MA", compute=base.compute,
                    communication=base.communication, driver=base.driver)


def _allreduce_cost(cluster: ClusterSpec,
                    profile: WorkloadProfile) -> StepCost:
    """MLlib*: local pass + Reduce-Scatter + AllGather."""
    slowest = min(node.speed for node in cluster.executors)
    compute = cluster.compute.sparse_pass_seconds(
        2 * profile.nnz_per_step_per_worker,
        cluster.executors[0]) / slowest
    k = cluster.num_executors
    shuffle = ShuffleModel()
    piece = profile.model_size / k
    comm = 2 * shuffle.round_seconds(cluster, k - 1, piece)
    combine = cluster.compute.dense_op_seconds(profile.model_size,
                                               cluster.executors[0])
    return StepCost(system="MLlib*", compute=compute + combine,
                    communication=comm, driver=0.0)


def _ps_cost(system: str, cluster: ClusterSpec,
             profile: WorkloadProfile) -> StepCost:
    """Petuum*/Angel: local work + sharded pull/push."""
    slowest = min(node.speed for node in cluster.executors)
    compute = cluster.compute.sparse_pass_seconds(
        2 * profile.nnz_per_step_per_worker,
        cluster.executors[0]) / slowest
    engine = PsEngine(cluster)
    comm = engine.comm_seconds(profile.model_size)
    return StepCost(system=system, compute=compute, communication=comm,
                    driver=0.0)


def estimate_step_cost(system: str, cluster: ClusterSpec,
                       profile: WorkloadProfile) -> StepCost:
    """Analytic per-step cost for one system on one workload."""
    if system == "MLlib":
        return _sendgradient_cost(cluster, profile)
    if system == "MLlib+MA":
        return _sendmodel_driver_cost(cluster, profile)
    if system == "MLlib*":
        return _allreduce_cost(cluster, profile)
    if system in ("Petuum*", "Angel"):
        return _ps_cost(system, cluster, profile)
    raise KeyError(f"unknown system {system!r}; "
                   f"choose from {ADVISABLE_SYSTEMS}")


def rank_systems(cluster: ClusterSpec, profile: WorkloadProfile,
                 systems: tuple[str, ...] = ADVISABLE_SYSTEMS,
                 ) -> list[StepCost]:
    """All systems' per-step costs, cheapest first.

    Per-step cost is only half the story (SendModel systems need far fewer
    steps — Figure 4); the advisor exposes the communication structure so
    callers can combine it with their convergence expectations.
    """
    costs = [estimate_step_cost(s, cluster, profile) for s in systems]
    costs.sort(key=lambda c: c.total)
    return costs
