"""Parameter-server substrate and the Petuum/Petuum*/Angel trainers."""

from .angel import AngelTrainer
from .async_sgd import AsyncSgdTrainer
from .consistency import ASP, BSP, SSP, Controller, get_controller
from .engine import PsEngine, worker_label
from .petuum import PetuumStarTrainer, PetuumTrainer
from .server import ParameterServer, ps_step_seconds

__all__ = [
    "Controller", "BSP", "SSP", "ASP", "get_controller",
    "ParameterServer", "ps_step_seconds",
    "PsEngine", "worker_label",
    "PetuumTrainer", "PetuumStarTrainer",
    "AngelTrainer", "AsyncSgdTrainer",
]
