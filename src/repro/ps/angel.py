"""Angel: SendModel over parameter servers, per-epoch.

Section III-B2's two distinctions from Petuum, both reproduced:

* **Communication frequency** — Angel workers talk to the servers once per
  *epoch* (a full pass over the local partition), not once per batch.
* **Local computation** — Angel always performs mini-batch gradient
  descent on each batch (one update per batch), regardless of the
  regularization term.

Section V-B2 additionally attributes Angel's weakness at small batch sizes
to an implementation detail: "Angel stores the accumulated gradients for
each batch in a separate vector.  For each batch, we need to allocate
memory for the vector and collect it back."  We model that as a per-batch
overhead proportional to the model size (allocate + zero + garbage-collect
one dense vector), controlled by ``alloc_overhead_coords_factor``; the
Angel batch-size ablation bench sweeps it.
"""

from __future__ import annotations

import numpy as np

from ..cluster import ClusterSpec, Trace
from ..engine import PartitionedDataset
from ..glm import Objective
from ..core.config import TrainerConfig
from ..core.trainer import DistributedTrainer
from ..core.worker import angel_epoch_task
from .consistency import BSP, Controller
from .engine import PsEngine, push_wire_values

__all__ = ["AngelTrainer"]


class AngelTrainer(DistributedTrainer):
    """Angel: per-epoch communication, per-batch GD, averaging servers."""

    system = "Angel"

    #: Dense coordinates' worth of work charged per batch for gradient
    #: buffer allocation + GC (Section V-B2's overhead).
    alloc_overhead_coords_factor = 3.0

    def __init__(self, objective: Objective, cluster: ClusterSpec,
                 config: TrainerConfig | None = None,
                 num_servers: int | None = None,
                 controller: Controller | None = None) -> None:
        super().__init__(objective, cluster, config)
        self._num_servers = num_servers
        self._controller = controller if controller is not None else BSP()
        self._engine: PsEngine | None = None
        self._rngs: list[np.random.Generator] = []

    # ------------------------------------------------------------------
    def _prepare(self, data: PartitionedDataset) -> None:
        self._engine = PsEngine(self.cluster, num_servers=self._num_servers,
                                controller=self._controller,
                                faults=self.faults, recovery=self.recovery)
        self._install_recovery_costs(self._engine, data)
        self._rngs = self._worker_rngs(data.num_partitions)

    def _clock(self) -> float:
        assert self._engine is not None, "fit() not started"
        return self._engine.now

    def _trace(self) -> Trace:
        assert self._engine is not None, "fit() not started"
        return self._engine.trace

    # ------------------------------------------------------------------
    def _run_step(self, step: int, w: np.ndarray,
                  data: PartitionedDataset) -> np.ndarray:
        engine = self._engine
        assert engine is not None
        m = data.n_features
        lr = self.schedule.at(step)

        # Per-epoch local work fans out across the execution backend;
        # pricing (including the per-batch allocation overhead) stays in
        # the parent against the returned stats.
        results = self._backend.map_partitions(
            angel_epoch_task,
            [(w, self.objective, lr, self._batch_size(part.n_rows),
              self._rngs[i])
             for i, part in enumerate(data.partitions)])
        locals_: list[np.ndarray] = []
        durations: list[float] = []
        overheads: list[float] = []
        for i, (local_w, stats, rng) in enumerate(results):
            self._rngs[i] = rng
            locals_.append(local_w)
            durations.append(self._compute_seconds(
                stats.nnz_processed, stats.dense_ops, i))
            # One gradient buffer allocated and collected per batch.
            batches = stats.n_updates
            overhead_coords = (batches * self.alloc_overhead_coords_factor
                               * m)
            overheads.append(self.cluster.compute.dense_op_seconds(
                overhead_coords, self.cluster.executors[i]))
        # Under --sparse-comm a worker's push (its delta against the
        # pulled model) is priced at the support local training touched.
        engine.run_step(durations, m, overhead_seconds=overheads,
                        push_values=push_wire_values(
                            w, locals_, self.config.sparse_comm))
        return np.mean(locals_, axis=0)
