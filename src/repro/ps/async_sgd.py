"""Asynchronous SGD over parameter servers (ASP with real staleness).

Section III-B: parameter servers "can leverage different consistency
controllers ... It has been shown that asynchronous communication can be
beneficial for distributed machine learning [13]."  The Petuum/Angel
trainers in this reproduction model SSP's *timing* benefit but keep the
numerics step-synchronous; :class:`AsyncSgdTrainer` models the numerics
too, with a discrete-event simulation:

* every worker repeatedly (pull -> compute batch gradient -> push);
* pushes are applied to the global model **in simulated-time order**;
* a worker's gradient was computed at the model it pulled one cycle ago,
  so it is applied with real *staleness* — the number of other updates
  that landed in between (tracked and reported).

This is the Hogwild/Downpour-style regime the paper's reference [13]
analyzes: no barriers at all, maximum hardware efficiency, gradient
staleness as the price.  Heterogeneity makes fast workers contribute more
updates instead of idling at a barrier — the async counterpoint to
Figure 6's straggler problem.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..cluster import ClusterSpec, Trace
from ..collectives import wire_values
from ..core.config import TrainerConfig
from ..core.trainer import DistributedTrainer
from ..core.worker import asgd_gradient_task
from ..engine import PartitionedDataset
from ..glm import Objective, apply_update
from .engine import worker_label

__all__ = ["AsyncSgdTrainer"]


class AsyncSgdTrainer(DistributedTrainer):
    """Fully asynchronous SGD (ASP) with event-ordered updates.

    One "communication step" in the history corresponds to ``k`` applied
    pushes (one per worker on average), so step counts remain comparable
    with the synchronous SendGradient systems.
    """

    system = "ASGD"

    def __init__(self, objective: Objective, cluster: ClusterSpec,
                 config: TrainerConfig | None = None,
                 num_servers: int | None = None) -> None:
        super().__init__(objective, cluster, config)
        self._num_servers = (num_servers if num_servers is not None
                             else cluster.num_executors)
        self._trace_store = Trace()
        self._now = 0.0
        self._rngs: list[np.random.Generator] = []
        #: (ready_time, tiebreak, worker_index) event heap.
        self._events: list[tuple[float, int, int]] = []
        self._tiebreak = 0
        #: Per-worker model snapshot at its last pull.
        self._pulled: list[np.ndarray] = []
        #: Pending gradient each worker will push at its event time.
        self._pending: list[np.ndarray | None] = []
        #: Global-update counter and per-worker counter at last pull.
        self._updates_applied = 0
        self._pull_versions: list[int] = []
        #: Observed staleness values (updates between pull and push).
        self.staleness_log: list[int] = []
        self._model: np.ndarray | None = None
        self._step_counter = 0

    # ------------------------------------------------------------------
    def _comm_seconds(self, model_size: int) -> float:
        """One pull + one push against the shards (no peer contention
        modelled: asynchrony spreads requests over time).

        Always dense: under ASP the *order* in which pushes land is part
        of the numerics, so repricing events by sparse wire size would
        reorder updates and change convergence.  Sparse mode is therefore
        wire accounting only here (span ``values``) — the event clock
        never moves (see :meth:`_begin_cycle`).
        """
        net = self.cluster.network
        return 2.0 * (self._num_servers * net.alpha
                      + model_size * net.bytes_per_value / net.bandwidth)

    def _schedule(self, worker: int, ready: float) -> None:
        heapq.heappush(self._events, (ready, self._tiebreak, worker))
        self._tiebreak += 1

    def _begin_cycle(self, worker: int, start: float,
                     data: PartitionedDataset) -> None:
        """Worker pulls the model, computes a batch gradient, and is
        scheduled to push when compute + communication finish."""
        assert self._model is not None
        part = data.partitions[worker]
        batch = self._batch_size(part.n_rows)
        # The pulled snapshot is this worker's private read view of the
        # global model; under --sanitize it is frozen so a worker update
        # that writes through it raises at the faulting line.
        self._pulled[worker] = self.sanitizer.freeze(
            np.array(self._model, copy=True))
        self._pull_versions[worker] = self._updates_applied
        # The batch-gradient compute runs through the execution backend
        # (one worker at a time — the event loop itself is the scheduler).
        gradient_result, batch_nnz, rng = self._backend.run_one(
            asgd_gradient_task, worker,
            (self._pulled[worker], self.objective, batch,
             self._rngs[worker]))
        self._rngs[worker] = rng
        self._pending[worker] = gradient_result

        node = self.cluster.executors[worker]
        compute = (self._compute_seconds(2 * batch_nnz, 0, worker)
                   * self.cluster.slowdown(node, self._step_counter))
        m = data.n_features
        mode = self.config.sparse_comm
        gradient = self._pending[worker]
        assert gradient is not None
        # Wire accounting only: the push's sparse size lands in the span's
        # ``values`` field, but the event schedule runs on the dense clock
        # so ASP's update interleaving (and hence the numerics) is
        # independent of the wire format.
        if mode == "off":
            push_wire = float(m)
        else:
            push_wire = wire_values(int(np.count_nonzero(gradient)), m, mode)
        comm = self._comm_seconds(m)
        label = worker_label(worker)
        if compute > 0:
            self._trace_store.add(label, start, start + compute, "compute",
                            self._step_counter)
        self._trace_store.add(label, start + compute, start + compute + comm,
                        "send", self._step_counter,
                        values=float(m) + push_wire)
        self._schedule(worker, start + compute + comm)

    # ------------------------------------------------------------------
    def _prepare(self, data: PartitionedDataset) -> None:
        self.cluster.reset_rng()
        self._trace_store = Trace()
        self._now = 0.0
        self._rngs = self._worker_rngs(data.num_partitions)
        self._events = []
        self._tiebreak = 0
        k = data.num_partitions
        self._pulled = [np.zeros(data.n_features) for _ in range(k)]
        self._pending = [None] * k
        self._updates_applied = 0
        self._pull_versions = [0] * k
        self.staleness_log = []
        self._model = None
        self._step_counter = 0

    def _on_initial_model(self, w: np.ndarray,
                          data: PartitionedDataset) -> None:
        """Seed the global model and launch every worker's first cycle."""
        self._model = np.array(w, copy=True)
        for worker in range(data.num_partitions):
            self._begin_cycle(worker, 0.0, data)

    def _clock(self) -> float:
        return self._now

    def _trace(self) -> Trace:
        return self._trace_store

    # ------------------------------------------------------------------
    def _run_step(self, step: int, w: np.ndarray,
                  data: PartitionedDataset) -> np.ndarray:
        """Apply the next ``k`` pushes in simulated-time order."""
        assert self._model is not None
        self._step_counter = step
        k = data.num_partitions
        for _ in range(k):
            ready, _, worker = heapq.heappop(self._events)
            self._now = max(self._now, ready)
            gradient = self._pending[worker]
            assert gradient is not None
            lr = self.schedule.at(self._updates_applied + 1)
            self._model = apply_update(self._model, gradient, lr,
                                       self.objective)
            self._updates_applied += 1
            self.staleness_log.append(
                self._updates_applied - 1 - self._pull_versions[worker])
            self._begin_cycle(worker, ready, data)
        return self._model

    @property
    def mean_staleness(self) -> float:
        """Average number of updates applied between pull and push."""
        if not self.staleness_log:
            return 0.0
        return float(np.mean(self.staleness_log))
