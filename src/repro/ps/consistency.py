"""Consistency controllers: BSP, SSP and ASP.

Parameter servers decouple workers from each other; a *consistency
controller* decides when a worker's pull must block on its peers
(Section III-B).  We model worker progress with a per-worker clock (number
of completed communication steps) and expose the admission rule:

* **BSP**  — a worker may start step ``t`` only when every worker finished
  step ``t - 1`` (maximum staleness 0);
* **SSP**  — a worker may run ahead of the slowest peer by at most
  ``staleness`` steps (Ho et al., the paper's reference [13]);
* **ASP**  — never blocks.

In the simulated timeline, blocking means the worker's next step starts at
the time the admission rule is first satisfied; :meth:`Controller.release_time`
computes that instant from the peers' finish times.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Controller", "BSP", "SSP", "ASP", "get_controller"]


class Controller:
    """Interface: when may worker ``r`` start step ``t``?"""

    name: str = "abstract"

    def max_lead(self) -> int | None:
        """How many steps a worker may lead the slowest peer; None = no bound."""
        raise NotImplementedError

    def release_time(self, t: int, own_ready: float,
                     peer_finish_times: list[list[float]]) -> float:
        """Earliest simulated time worker may start step ``t`` (0-based).

        ``own_ready`` is when the worker itself finished its previous step;
        ``peer_finish_times[r][s]`` is when peer ``r`` finished step ``s``
        (lists may be shorter than ``t`` for lagging peers).
        """
        lead = self.max_lead()
        if lead is None:
            return own_ready
        # The worker may start step t once every peer has finished step
        # t - lead - 1 (i.e. no peer is more than `lead` steps behind).
        required = t - lead - 1
        if required < 0:
            return own_ready
        release = own_ready
        for finishes in peer_finish_times:
            if len(finishes) <= required:
                raise ValueError(
                    "peer has not reached the required step; advance peers "
                    "in simulated-time order")
            release = max(release, finishes[required])
        return release


@dataclass(frozen=True)
class BSP(Controller):
    """Bulk Synchronous Parallel: staleness 0."""

    name = "bsp"

    def max_lead(self) -> int:
        return 0


@dataclass(frozen=True)
class SSP(Controller):
    """Stale Synchronous Parallel with bounded staleness."""

    staleness: int = 2
    name = "ssp"

    def __post_init__(self) -> None:
        if self.staleness < 0:
            raise ValueError("staleness must be non-negative")

    def max_lead(self) -> int:
        return self.staleness


@dataclass(frozen=True)
class ASP(Controller):
    """Asynchronous Parallel: workers never block."""

    name = "asp"

    def max_lead(self) -> None:
        return None


def get_controller(name: str, staleness: int = 2) -> Controller:
    """Build a controller by name (``bsp``, ``ssp``, ``asp``)."""
    if name == "bsp":
        return BSP()
    if name == "ssp":
        return SSP(staleness)
    if name == "asp":
        return ASP()
    raise KeyError(f"unknown controller {name!r}; expected bsp, ssp or asp")
