"""Parameter-server execution timeline.

:class:`PsEngine` plays the role :class:`~repro.engine.driver.BspEngine`
plays for Spark-style systems: it advances simulated per-worker clocks,
applies the consistency controller's admission rule, prices pull/push
communication, and emits trace spans.

Unlike BSP, workers do not share a single barrier: under SSP a fast worker
may start its next step while a straggler is still finishing (bounded by
the staleness), and under ASP it never waits.  The timestamp reported for a
logical step — the moment the step's model state is fully at the servers —
is the maximum finish time across workers for that step.

Communication pricing per worker and step (pull the full model + push a
full update): each of the ``s`` shards is contacted twice, and shard-side
bandwidth serializes when workers outnumber shards::

    comm = 2 * (s * alpha + (m * bytes / bandwidth) * max(1, k / s))

With ``s = k`` (the common co-located deployment) this is close to the
balanced all-to-all of AllReduce; with few shards it degrades toward the
driver bottleneck — parameter servers generalize between the two.
"""

from __future__ import annotations

import numpy as np

from ..cluster import ClusterSpec, Trace
from ..cluster.faults import (FailureModel, FailureRecord, NoFailures,
                              RecoveryError, RecoveryPolicy)
from ..collectives.sparse import wire_values
from ..engine.driver import CommRecord
from .consistency import BSP, Controller

__all__ = ["PsEngine", "push_wire_values", "worker_label"]


def worker_label(index: int) -> str:
    """Human-readable label for PS worker ``index`` (0-based)."""
    return f"worker-{index + 1}"


def push_wire_values(w: np.ndarray, locals_: list[np.ndarray],
                     mode: str) -> list[float] | None:
    """Sparse push sizes for SendModel workers (``None`` when dense).

    A SendModel worker pushes its delta against the pulled model; the
    delta's support is the set of coordinates local SGD touched.  Returns
    per-worker wire sizes under ``mode``, or ``None`` for ``'off'`` so
    the engine keeps the bit-identical dense formula.
    """
    if mode == "off":
        return None
    m = int(w.shape[0])
    return [wire_values(int(np.count_nonzero(local - w)), m, mode)
            for local in locals_]


class PsEngine:
    """Simulated timeline for parameter-server training.

    Parameters
    ----------
    cluster:
        Worker nodes are the cluster's executors; the driver node is not
        used (PS deployments have no Spark-style driver in the data path).
    num_servers:
        Model shards.  Defaults to one shard per worker.
    controller:
        Consistency controller (BSP / SSP / ASP).
    """

    def __init__(self, cluster: ClusterSpec, num_servers: int | None = None,
                 controller: Controller | None = None,
                 faults: FailureModel | None = None,
                 recovery: RecoveryPolicy | None = None) -> None:
        if cluster.num_executors < 1:
            raise ValueError("PS engine needs at least one worker")
        self.cluster = cluster
        self.num_workers = cluster.num_executors
        self.num_servers = (num_servers if num_servers is not None
                            else self.num_workers)
        if self.num_servers < 1:
            raise ValueError("need at least one server shard")
        self.controller = controller if controller is not None else BSP()
        self.faults = faults if faults is not None else NoFailures()
        # Same guard as BspEngine: scripted crashes aimed at workers this
        # cluster does not have raise instead of never firing.
        self.faults.validate_executors(self.num_workers)
        self.recovery = recovery if recovery is not None else RecoveryPolicy()
        #: Materialized crashes, in simulated-time order.
        self.failures: list[FailureRecord] = []
        #: Wire accounting, one record per step (pull + push volumes).
        self.comm_records: list[CommRecord] = []
        self.trace = Trace()
        #: finish_times[r][t] — when worker r finished logical step t.
        self._finish_times: list[list[float]] = [
            [] for _ in range(self.num_workers)]
        self._steps_run = 0
        self.now = 0.0
        #: Per-worker lineage-recompute cost for a lost cached partition.
        self._reload_seconds = [0.0] * self.num_workers
        #: Cost of restoring from the latest checkpoint (None until one
        #: has been written).
        self._restore_seconds: float | None = None
        cluster.reset_rng()

    # ------------------------------------------------------------------
    def set_recovery_costs(self, reload_seconds: list[float]) -> None:
        """Install the per-worker lineage-recompute cost used on crashes."""
        if len(reload_seconds) != self.num_workers:
            raise ValueError(
                f"expected {self.num_workers} reload costs, "
                f"got {len(reload_seconds)}")
        if any(s < 0 for s in reload_seconds):
            raise ValueError("reload seconds must be non-negative")
        self._reload_seconds = [float(s) for s in reload_seconds]

    def _restore_cost(self, worker: int) -> float:
        """Downtime of one recovery: restart + (checkpoint read | lineage)."""
        base = self.recovery.restart_seconds
        if (self.recovery.strategy == "checkpoint"
                and self._restore_seconds is not None):
            return base + self._restore_seconds
        return base + self._reload_seconds[worker]

    def _run_work_attempts(self, worker: int, start: float, work: float,
                           step: int) -> float:
        """One worker's compute with crash/retry handling (PS timeline).

        Unlike BSP, a crashed PS worker stalls only itself: peers keep
        running and the consistency controller decides how far they may
        advance before waiting on the laggard.
        """
        label = worker_label(worker)
        t = start
        attempt = 0
        while True:
            # Failure steps are 1-based everywhere; PS counts from 0.
            event = self.faults.crash_event(step + 1, "compute", worker,
                                            attempt)
            if event is None:
                if work > 0:
                    self.trace.add(label, t, t + work, "compute", step)
                return t + work
            crash_at = t + work * event.at_fraction
            if crash_at > t:
                self.trace.add(label, t, crash_at, "compute", step)
            # The record's step matches the trace's numbering (internal,
            # 0-based) so trace invariants can join spans to records.
            self.failures.append(FailureRecord(
                node=label, step=step, phase="compute", time=crash_at,
                attempt=attempt))
            if attempt >= self.recovery.max_retries:
                raise RecoveryError(
                    f"{label} crashed in step {step + 1} on attempt "
                    f"{attempt + 1}, exhausting the retry budget "
                    f"(max_retries={self.recovery.max_retries})")
            downtime = self._restore_cost(worker)
            if downtime > 0:
                self.trace.add(label, crash_at, crash_at + downtime,
                               "recovery", step)
            t = crash_at + downtime
            attempt += 1

    # ------------------------------------------------------------------
    def comm_seconds(self, model_size: int,
                     push_values: float | None = None) -> float:
        """Pull + push cost for one worker and one step (see module doc).

        ``push_values`` prices the push half at a sparse encoded size
        instead of the full model (the pull is always dense — a worker
        needs the whole model).  With ``push_values=None`` this is
        bit-identical to the symmetric dense formula.
        """
        net = self.cluster.network
        shard_contention = max(1.0, self.num_workers / self.num_servers)
        pull = (self.num_servers * net.alpha
                + model_size * net.bytes_per_value / net.bandwidth
                * shard_contention)
        if push_values is None:
            return 2.0 * pull
        push = (self.num_servers * net.alpha
                + push_values * net.bytes_per_value / net.bandwidth
                * shard_contention)
        return pull + push

    def run_step(self, compute_seconds: list[float], model_size: int,
                 overhead_seconds: list[float] | None = None,
                 push_values: list[float] | None = None) -> float:
        """Advance every worker through one pull/compute/push step.

        ``compute_seconds[r]`` is worker ``r``'s unperturbed local compute
        time; ``overhead_seconds`` adds straggler-free per-worker overhead
        (Angel's per-batch allocation cost).  ``push_values[r]`` prices
        worker ``r``'s push at its sparse encoded size (see
        :meth:`comm_seconds`).  Returns the simulated time at which the
        step's global model is available.
        """
        if len(compute_seconds) != self.num_workers:
            raise ValueError(
                f"expected {self.num_workers} durations, "
                f"got {len(compute_seconds)}")
        overheads = (overhead_seconds if overhead_seconds is not None
                     else [0.0] * self.num_workers)
        if len(overheads) != self.num_workers:
            raise ValueError("overhead list length mismatch")
        if (push_values is not None
                and len(push_values) != self.num_workers):
            raise ValueError("push_values list length mismatch")

        t = self._steps_run
        slow = 1.0
        if self.faults.enabled:
            slow = self.faults.network_slowdown(t + 1)
        dense_comm = self.comm_seconds(model_size) * slow
        if push_values is None:
            comm_list = [dense_comm] * self.num_workers
        else:
            comm_list = [self.comm_seconds(model_size, push_values[r]) * slow
                         for r in range(self.num_workers)]
        self.comm_records.append(CommRecord(
            step=t, phase="ps_pull_push",
            dense_values=2.0 * model_size * self.num_workers,
            wire_values=float(sum(
                model_size + (model_size if push_values is None
                              else push_values[r])
                for r in range(self.num_workers))),
            seconds=max(comm_list, default=0.0),
            dense_seconds=dense_comm))
        finishes: list[float] = []
        for r in range(self.num_workers):
            own_ready = self._finish_times[r][-1] if self._finish_times[r] else 0.0
            peers = [self._finish_times[p]
                     for p in range(self.num_workers) if p != r]
            start = self.controller.release_time(t, own_ready, peers)
            label = worker_label(r)
            if start > own_ready + 1e-12:
                self.trace.add(label, own_ready, start, "wait", t)

            node = self.cluster.executors[r]
            if compute_seconds[r] < 0 or overheads[r] < 0:
                raise ValueError("durations must be non-negative")
            work = (compute_seconds[r] * self.cluster.slowdown(node, t)
                    + overheads[r])
            if self.faults.enabled:
                push_start = self._run_work_attempts(r, start, work, t)
            else:
                if work > 0:
                    self.trace.add(label, start, start + work, "compute", t)
                push_start = start + work
            comm = comm_list[r]
            if comm > 0:
                self.trace.add(label, push_start, push_start + comm,
                               "send", t,
                               values=float(
                                   model_size
                                   + (model_size if push_values is None
                                      else push_values[r])))
            finish = push_start + comm
            self._finish_times[r].append(finish)
            finishes.append(finish)

        self._steps_run += 1
        step_ready = max(finishes)
        self.now = max(self.now, step_ready)
        return step_ready

    # ------------------------------------------------------------------
    def checkpoint_phase(self, model_size: int, step: int) -> float:
        """Every worker writes its recovery state to stable storage.

        Appended to each worker's own timeline (PS workers share no
        barrier); future crash restores read the checkpoint back at the
        same cost instead of recomputing lineage.
        """
        duration = self.cluster.network.transfer_seconds(model_size)
        if self.faults.enabled:
            duration *= self.faults.network_slowdown(step)
        t = max(0, self._steps_run - 1)
        for r in range(self.num_workers):
            last = (self._finish_times[r][-1]
                    if self._finish_times[r] else 0.0)
            if duration > 0:
                self.trace.add(worker_label(r), last, last + duration,
                               "checkpoint", t)
            if self._finish_times[r]:
                self._finish_times[r][-1] = last + duration
        self._restore_seconds = duration
        self.now = max(self.now, max(
            (ft[-1] for ft in self._finish_times if ft), default=self.now))
        return duration
