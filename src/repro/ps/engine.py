"""Parameter-server execution timeline.

:class:`PsEngine` plays the role :class:`~repro.engine.driver.BspEngine`
plays for Spark-style systems: it advances simulated per-worker clocks,
applies the consistency controller's admission rule, prices pull/push
communication, and emits trace spans.

Unlike BSP, workers do not share a single barrier: under SSP a fast worker
may start its next step while a straggler is still finishing (bounded by
the staleness), and under ASP it never waits.  The timestamp reported for a
logical step — the moment the step's model state is fully at the servers —
is the maximum finish time across workers for that step.

Communication pricing per worker and step (pull the full model + push a
full update): each of the ``s`` shards is contacted twice, and shard-side
bandwidth serializes when workers outnumber shards::

    comm = 2 * (s * alpha + (m * bytes / bandwidth) * max(1, k / s))

With ``s = k`` (the common co-located deployment) this is close to the
balanced all-to-all of AllReduce; with few shards it degrades toward the
driver bottleneck — parameter servers generalize between the two.
"""

from __future__ import annotations

from ..cluster import ClusterSpec, Trace
from .consistency import BSP, Controller

__all__ = ["PsEngine", "worker_label"]


def worker_label(index: int) -> str:
    """Human-readable label for PS worker ``index`` (0-based)."""
    return f"worker-{index + 1}"


class PsEngine:
    """Simulated timeline for parameter-server training.

    Parameters
    ----------
    cluster:
        Worker nodes are the cluster's executors; the driver node is not
        used (PS deployments have no Spark-style driver in the data path).
    num_servers:
        Model shards.  Defaults to one shard per worker.
    controller:
        Consistency controller (BSP / SSP / ASP).
    """

    def __init__(self, cluster: ClusterSpec, num_servers: int | None = None,
                 controller: Controller | None = None) -> None:
        if cluster.num_executors < 1:
            raise ValueError("PS engine needs at least one worker")
        self.cluster = cluster
        self.num_workers = cluster.num_executors
        self.num_servers = (num_servers if num_servers is not None
                            else self.num_workers)
        if self.num_servers < 1:
            raise ValueError("need at least one server shard")
        self.controller = controller if controller is not None else BSP()
        self.trace = Trace()
        #: finish_times[r][t] — when worker r finished logical step t.
        self._finish_times: list[list[float]] = [
            [] for _ in range(self.num_workers)]
        self._steps_run = 0
        self.now = 0.0
        cluster.reset_rng()

    # ------------------------------------------------------------------
    def comm_seconds(self, model_size: int) -> float:
        """Pull + push cost for one worker and one step (see module doc)."""
        net = self.cluster.network
        shard_contention = max(1.0, self.num_workers / self.num_servers)
        payload = (model_size * net.bytes_per_value / net.bandwidth
                   * shard_contention)
        return 2.0 * (self.num_servers * net.alpha + payload)

    def run_step(self, compute_seconds: list[float], model_size: int,
                 overhead_seconds: list[float] | None = None) -> float:
        """Advance every worker through one pull/compute/push step.

        ``compute_seconds[r]`` is worker ``r``'s unperturbed local compute
        time; ``overhead_seconds`` adds straggler-free per-worker overhead
        (Angel's per-batch allocation cost).  Returns the simulated time at
        which the step's global model is available.
        """
        if len(compute_seconds) != self.num_workers:
            raise ValueError(
                f"expected {self.num_workers} durations, "
                f"got {len(compute_seconds)}")
        overheads = (overhead_seconds if overhead_seconds is not None
                     else [0.0] * self.num_workers)
        if len(overheads) != self.num_workers:
            raise ValueError("overhead list length mismatch")

        t = self._steps_run
        comm = self.comm_seconds(model_size)
        finishes: list[float] = []
        for r in range(self.num_workers):
            own_ready = self._finish_times[r][-1] if self._finish_times[r] else 0.0
            peers = [self._finish_times[p]
                     for p in range(self.num_workers) if p != r]
            start = self.controller.release_time(t, own_ready, peers)
            label = worker_label(r)
            if start > own_ready + 1e-12:
                self.trace.add(label, own_ready, start, "wait", t)

            node = self.cluster.executors[r]
            if compute_seconds[r] < 0 or overheads[r] < 0:
                raise ValueError("durations must be non-negative")
            work = (compute_seconds[r] * self.cluster.slowdown(node, t)
                    + overheads[r])
            if work > 0:
                self.trace.add(label, start, start + work, "compute", t)
            push_start = start + work
            if comm > 0:
                self.trace.add(label, push_start, push_start + comm,
                               "send", t)
            finish = push_start + comm
            self._finish_times[r].append(finish)
            finishes.append(finish)

        self._steps_run += 1
        step_ready = max(finishes)
        self.now = max(self.now, step_ready)
        return step_ready
