"""Petuum and Petuum*: SendModel over parameter servers, per-batch.

Section III-B1's description, reproduced faithfully:

* Workers communicate with the servers **per batch** (one batch = one
  communication step).
* With **no regularization**, workers run parallel SGD *inside* each batch
  — many local updates per communication step.
* With **nonzero regularization**, workers perform one gradient-descent
  update over the batch per step — a single update per communication step
  (dense L2 updates are expensive, so Petuum avoids per-example updates).
* Original **Petuum** combines worker results by *model summation* (the
  servers add up the pushed deltas), which "suffers from potential
  divergence" (Section IV-B1 remark, refs [15], [18]).
* **Petuum*** is the paper's fixed variant: summation replaced by model
  averaging.  It also uses SSP to hide straggler latency (Section V-B2).
"""

from __future__ import annotations

import numpy as np

from ..cluster import ClusterSpec, Trace
from ..engine import PartitionedDataset
from ..glm import Objective
from ..core.config import TrainerConfig
from ..core.trainer import DistributedTrainer
from ..core.worker import petuum_batch_task
from .consistency import SSP, Controller
from .engine import PsEngine, push_wire_values
from .server import ParameterServer

__all__ = ["PetuumTrainer", "PetuumStarTrainer"]


class PetuumTrainer(DistributedTrainer):
    """Original Petuum: per-batch communication, model summation."""

    system = "Petuum"
    #: How the servers combine pushed worker results.
    combine = "sum"

    def __init__(self, objective: Objective, cluster: ClusterSpec,
                 config: TrainerConfig | None = None,
                 num_servers: int | None = None,
                 controller: Controller | None = None) -> None:
        super().__init__(objective, cluster, config)
        self._num_servers = num_servers
        self._controller = (controller if controller is not None
                            else SSP(staleness=2))
        self._engine: PsEngine | None = None
        self._rngs: list[np.random.Generator] = []
        self._server: ParameterServer | None = None

    # ------------------------------------------------------------------
    def _prepare(self, data: PartitionedDataset) -> None:
        self._engine = PsEngine(self.cluster, num_servers=self._num_servers,
                                controller=self._controller,
                                faults=self.faults, recovery=self.recovery)
        self._install_recovery_costs(self._engine, data)
        self._rngs = self._worker_rngs(data.num_partitions)
        self._server = ParameterServer(
            model_size=data.n_features,
            num_servers=self._engine.num_servers,
            sanitize=self.config.sanitize)

    def _on_initial_model(self, w: np.ndarray,
                          data: PartitionedDataset) -> None:
        self._server = ParameterServer(
            model_size=data.n_features,
            num_servers=self._engine.num_servers if self._engine else 1,
            initial=w, sanitize=self.config.sanitize)

    def _clock(self) -> float:
        assert self._engine is not None, "fit() not started"
        return self._engine.now

    def _trace(self) -> Trace:
        assert self._engine is not None, "fit() not started"
        return self._engine.trace

    # ------------------------------------------------------------------
    def _combine(self, w: np.ndarray,
                 locals_: list[np.ndarray]) -> np.ndarray:
        """Model summation via the server: every worker pushes its delta."""
        assert self._server is not None, "fit() not started"
        for local in locals_:
            self._server.push_sum(local - w)
        return self._server.pull()

    def _run_step(self, step: int, w: np.ndarray,
                  data: PartitionedDataset) -> np.ndarray:
        engine = self._engine
        assert engine is not None
        lr = self.schedule.at(step)
        # Per-batch local work fans out across the execution backend; the
        # server pushes below stay in the parent, in worker order.
        results = self._backend.map_partitions(
            petuum_batch_task,
            [(w, self.objective, lr, self._batch_size(part.n_rows),
              self.config, self._rngs[i])
             for i, part in enumerate(data.partitions)])
        locals_: list[np.ndarray] = []
        durations: list[float] = []
        for i, (local_w, stats, rng) in enumerate(results):
            self._rngs[i] = rng
            locals_.append(local_w)
            durations.append(self._compute_seconds(
                stats.nnz_processed, stats.dense_ops, i))
        # Under --sparse-comm a worker's push (the delta ``local - w``)
        # is priced at its support — the coordinates local SGD touched.
        engine.run_step(durations, data.n_features,
                        push_values=push_wire_values(
                            w, locals_, self.config.sparse_comm))
        return self._combine(w, locals_)


class PetuumStarTrainer(PetuumTrainer):
    """Petuum*: summation replaced by model averaging (the paper's fix)."""

    system = "Petuum*"
    combine = "average"

    def _combine(self, w: np.ndarray,
                 locals_: list[np.ndarray]) -> np.ndarray:
        assert self._server is not None, "fit() not started"
        for local in locals_:
            self._server.push_for_average(local)
        return self._server.apply_average()
