"""Sharded parameter servers: the model store of Petuum and Angel.

The global model is range-partitioned across ``num_servers`` shards
(Figure 2(c)).  Workers interact through two primitives:

* ``pull()``  — fetch the full current model (all shards);
* ``push(update, combine)`` — ship a model/update vector; each shard
  combines the slice it owns into the global model by ``sum`` (model
  summation, original Petuum) or by accumulating for an ``average``
  (Petuum*/Angel-style model averaging, applied when all expected pushes
  for the logical step have arrived).

Cost accounting mirrors the network model used everywhere else: a worker's
pull/push touches every shard, but the *shards* serve workers concurrently
with each other, so a fully synchronized step costs what the busiest shard
pays to serve all ``k`` workers — the parameter-server analogue of
removing the single driver.
"""

from __future__ import annotations

import numpy as np

from ..analysis.sanitizer import freeze_array
from ..cluster import ClusterSpec
from ..collectives import partition_slices

__all__ = ["ParameterServer", "ps_step_seconds"]


class ParameterServer:
    """A sharded in-memory model store with sum/average combination."""

    def __init__(self, model_size: int, num_servers: int,
                 initial: np.ndarray | None = None,
                 sanitize: bool = False) -> None:
        if num_servers < 1:
            raise ValueError("need at least one server shard")
        if model_size < num_servers:
            raise ValueError("model must have at least one coordinate "
                             "per server shard")
        self.model_size = model_size
        self.num_servers = num_servers
        self.slices = partition_slices(model_size, num_servers)
        if initial is None:
            self._model = np.zeros(model_size)
        else:
            if initial.shape != (model_size,):
                raise ValueError("initial model has the wrong shape")
            self._model = np.array(initial, copy=True)
        self._pending: list[np.ndarray] = []
        #: Barrier-sanitizer mode: pulled copies are frozen read-only so
        #: a worker mutating its pulled model in place raises at the
        #: faulting line (the server's own combine stays writable).
        self._sanitize = sanitize

    # ------------------------------------------------------------------
    def pull(self) -> np.ndarray:
        """Fetch the current global model (a copy).

        Under sanitize mode the copy is write-protected: workers must
        not update the pulled snapshot in place.
        """
        copy = np.array(self._model, copy=True)
        if self._sanitize:
            copy = freeze_array(copy)
        return copy

    def push_sum(self, update: np.ndarray) -> None:
        """Model summation: add ``update`` into the global model now.

        This is original Petuum's scheme — every worker's pushed *delta* is
        summed immediately, which can diverge (Section IV-B1 remark).
        """
        self._check(update)
        self._model += update

    def push_for_average(self, model: np.ndarray) -> None:
        """Stage a full local model for averaging at the step boundary."""
        self._check(model)
        self._pending.append(np.array(model, copy=True))

    def apply_average(self) -> np.ndarray:
        """Average all staged models into the global model (Petuum*, Angel).

        Returns the new global model; raises if nothing is staged.
        """
        if not self._pending:
            raise RuntimeError("no staged models to average")
        self._model = np.mean(self._pending, axis=0)
        self._pending = []
        return self.pull()

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def _check(self, vector: np.ndarray) -> None:
        if vector.shape != (self.model_size,):
            raise ValueError(
                f"expected shape ({self.model_size},), got {vector.shape}")


def ps_step_seconds(cluster: ClusterSpec, model_size: int,
                    num_servers: int, num_workers: int) -> float:
    """Communication time of one synchronized pull+push round.

    Each of ``num_workers`` workers pulls the full model from the shards
    and pushes a full update back.  Shards operate concurrently; the
    busiest shard serves ``num_workers`` messages of ``m / s`` values in
    each direction, back to back on its link.
    """
    if num_workers < 1:
        raise ValueError("need at least one worker")
    shard_values = model_size / num_servers
    net = cluster.network
    one_direction = net.fan_in_seconds(num_workers, shard_values)
    return 2.0 * one_direction
