"""Multi-tenant cluster scheduler with elastic training.

The subsystem behind ``repro sched``: a deterministic event-driven
scheduler (:class:`ClusterScheduler`) multiplexing a shared pool of
simulated executors across a queue of training jobs — gang placement,
FIFO or weighted fair-share admission (:mod:`repro.sched.policy`),
elastic width changes and preemption at superstep barriers via
:class:`repro.core.TrainingSession`, and a byte-identity schedule log
(:class:`SchedLog`).
"""

from .config import SCHED_POLICIES, SchedConfig
from .job import JOB_STATES, Job, JobSpec
from .log import SchedLog
from .policy import (JobView, dispatch_admission_width, dispatch_fair_shares,
                     dispatch_order, dispatch_preemption_victim)
from .pool import ExecutorPool
from .scheduler import ClusterScheduler, SchedResult
from .workload import poisson_job_trace

__all__ = [
    "SCHED_POLICIES", "SchedConfig",
    "JOB_STATES", "Job", "JobSpec",
    "SchedLog",
    "JobView", "dispatch_order", "dispatch_fair_shares",
    "dispatch_admission_width", "dispatch_preemption_victim",
    "ExecutorPool",
    "ClusterScheduler", "SchedResult",
    "poisson_job_trace",
]
