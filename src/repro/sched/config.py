"""Cluster-scheduler configuration.

One frozen dataclass, mirroring :class:`repro.core.TrainerConfig`'s
conventions: validation in ``__post_init__``, ``with_overrides`` for
copies, and every field reachable from the CLI (enforced by the CFG001
lint rule — ``SchedConfig`` is in its ``CONFIG_CLASSES`` registry).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["SchedConfig", "SCHED_POLICIES"]

#: Admission/ordering policies the dispatcher understands.
SCHED_POLICIES = ("fifo", "fair")


@dataclass(frozen=True)
class SchedConfig:
    """Run control for the multi-tenant cluster scheduler.

    Parameters
    ----------
    policy:
        ``fifo`` — admit strictly in arrival order (with backfill: a
        later job may start only if it fits without delaying nothing —
        i.e. whenever a free gang block exists).  ``fair`` — weighted
        fair share: queue ordered by (priority, arrival) and running
        elastic jobs steered toward executor shares proportional to
        their priority weights.
    elastic:
        Allow jobs to grow/shrink between their ``min_executors`` and
        ``max_executors`` at superstep barriers.  Off, every job holds
        exactly ``executors`` for its whole run.
    preempt:
        Allow the dispatcher to preempt a running job (checkpoint at its
        next barrier, release its gang block, re-queue) when a
        strictly-higher-priority job is starved.  ``fair`` policy only.
    total_executors:
        Executors in the shared simulated cluster the scheduler carves
        gang blocks out of.
    resize_every:
        Consider elastic width changes only at every Nth barrier of a
        job (1 = every barrier).  Spaces out re-partition costs.
    seed:
        Seed for per-job sub-cluster construction; the schedule itself
        is deterministic given the arrival trace — same seed + trace
        replays to a byte-identical schedule log.
    """

    policy: str = "fifo"
    elastic: bool = False
    preempt: bool = False
    total_executors: int = 8
    resize_every: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.policy not in SCHED_POLICIES:
            raise ValueError(f"policy must be one of {SCHED_POLICIES}; "
                             f"got {self.policy!r}")
        if self.total_executors < 1:
            raise ValueError("total_executors must be at least 1")
        if self.resize_every < 1:
            raise ValueError("resize_every must be at least 1")
        if self.preempt and self.policy != "fair":
            raise ValueError("preemption needs the 'fair' policy (FIFO "
                             "admission order never starves by priority)")

    def with_overrides(self, **kwargs) -> "SchedConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)
