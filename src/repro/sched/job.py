"""Job specifications and runtime job state for the cluster scheduler.

A :class:`JobSpec` is the immutable, JSON-round-trippable description a
user submits (``repro sched submit``): which system to train, how many
executors it wants (and, if elastic, the width range it tolerates), its
priority weight, and the synthetic workload recipe.  A :class:`Job` is
the scheduler's mutable runtime record for one spec — queue state, the
granted gang block, barrier-resume state (weights, steps done, consumed
simulated seconds), and the accounting the :class:`SchedReport` reads.

Every job trains on its *own* synthetic dataset (deterministic from the
spec) over its *own* sub-cluster of the granted width, so a fixed-width
job run through the scheduler is bit-identical to the same spec run
standalone — the contract ``benchmarks/bench_ext_sched.py`` asserts
before reporting any goodput number.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from ..data import SparseDataset, SyntheticSpec, generate
from ..glm import Objective
from ..metrics import TrainingHistory

__all__ = ["JobSpec", "Job", "JOB_STATES"]

#: Lifecycle states of a scheduled job.
JOB_STATES = ("queued", "running", "preempted", "finished", "cancelled")


@dataclass(frozen=True)
class JobSpec:
    """One training job as submitted to the scheduler queue.

    Parameters
    ----------
    name:
        Unique job name (queue key and gantt row label).
    system:
        Trainer system name (any key of ``repro.cli.SYSTEMS``).
    arrival:
        Simulated second at which the job enters the queue.
    priority:
        Fair-share weight (>= 1).  Higher weight means a larger executor
        share under the ``fair`` policy and earlier admission order;
        FIFO ignores it.
    executors:
        Requested gang width (executors granted together or not at all).
    min_executors / max_executors:
        Elastic width range; both default to ``executors`` (rigid).  An
        elastic scheduler may start the job anywhere in the range and
        grow/shrink it at superstep barriers.
    steps:
        Communication-step budget (the job finishes early only on
        convergence/divergence, exactly like a standalone run).
    n_rows / n_features / nnz_per_row / data_seed:
        Synthetic workload recipe (see :class:`repro.data.SyntheticSpec`).
    loss / l2 / learning_rate / lr_schedule / batch_fraction /
    local_chunk_size / eval_every / seed:
        Trainer hyperparameters, forwarded into the per-job
        :class:`~repro.core.TrainerConfig`.
    """

    name: str
    system: str = "MLlib*"
    arrival: float = 0.0
    priority: int = 1
    executors: int = 4
    min_executors: int | None = None
    max_executors: int | None = None
    steps: int = 5
    n_rows: int = 240
    n_features: int = 64
    nnz_per_row: float = 8.0
    data_seed: int = 17
    loss: str = "hinge"
    l2: float = 0.1
    learning_rate: float = 0.5
    lr_schedule: str = "inv_sqrt"
    batch_fraction: float = 0.25
    local_chunk_size: int = 16
    eval_every: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("job name must be non-empty")
        if self.arrival < 0:
            raise ValueError("arrival must be non-negative")
        if self.priority < 1:
            raise ValueError("priority must be at least 1")
        if self.executors < 1:
            raise ValueError("executors must be at least 1")
        if self.steps < 1:
            raise ValueError("steps must be at least 1")
        lo, hi = self.width_range
        if not 1 <= lo <= self.executors <= hi:
            raise ValueError(
                f"need 1 <= min_executors ({lo}) <= executors "
                f"({self.executors}) <= max_executors ({hi})")
        if self.n_features < hi:
            raise ValueError(
                f"n_features ({self.n_features}) must be >= max_executors "
                f"({hi}): the AllReduce model partition needs at least "
                "one coordinate per executor")

    # ------------------------------------------------------------------
    @property
    def width_range(self) -> tuple[int, int]:
        """(min, max) executor width the job tolerates."""
        lo = self.min_executors if self.min_executors is not None \
            else self.executors
        hi = self.max_executors if self.max_executors is not None \
            else self.executors
        return lo, hi

    @property
    def elastic(self) -> bool:
        lo, hi = self.width_range
        return lo != hi

    def dataset(self) -> SparseDataset:
        """The job's synthetic training set (deterministic from the spec)."""
        return generate(SyntheticSpec(n_rows=self.n_rows,
                                      n_features=self.n_features,
                                      nnz_per_row=self.nnz_per_row,
                                      seed=self.data_seed),
                        name=f"{self.name}-data")

    def objective(self) -> Objective:
        if self.l2 > 0:
            return Objective(self.loss, "l2", self.l2)
        return Objective(self.loss)

    def trainer_config(self):
        """The per-job :class:`~repro.core.TrainerConfig`."""
        from ..core import TrainerConfig
        return TrainerConfig(max_steps=self.steps,
                             learning_rate=self.learning_rate,
                             lr_schedule=self.lr_schedule,
                             batch_fraction=self.batch_fraction,
                             local_chunk_size=self.local_chunk_size,
                             eval_every=self.eval_every,
                             seed=self.seed)

    def make_trainer(self, cluster):
        """Build this spec's trainer over ``cluster`` (one per segment)."""
        # Imported lazily: repro.cli imports repro.sched for the job CLI,
        # and the SYSTEMS registry lives there.
        from ..cli import SYSTEMS
        if self.system not in SYSTEMS:
            raise ValueError(f"unknown system {self.system!r}; expected "
                             f"one of {sorted(SYSTEMS)}")
        return SYSTEMS[self.system](self.objective(), cluster,
                                    self.trainer_config())

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """Plain-dict form for the queue file / trace files."""
        return asdict(self)

    @classmethod
    def from_json(cls, payload: dict) -> "JobSpec":
        known = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown JobSpec fields: {unknown}")
        return cls(**payload)


@dataclass
class Job:
    """Mutable runtime state for one submitted spec.

    All times are global scheduler seconds except ``clock``, which is the
    job-relative simulated training time consumed so far (the x-axis of
    the job's convergence history, matching a standalone run for
    fixed-width jobs).
    """

    spec: JobSpec
    seq: int  # submission sequence number (deterministic tie-break)
    state: str = "queued"
    #: Granted gang block [start, end) in pool slots; None while queued.
    block: tuple[int, int] | None = None
    #: Width the dispatcher wants the job at (applied at its barrier).
    target_width: int | None = None
    preempt_requested: bool = False
    steps_done: int = 0
    clock: float = 0.0
    weights: np.ndarray | None = None
    history: TrainingHistory | None = None
    converged: bool = False
    diverged: bool = False
    first_start: float | None = None
    finish_time: float | None = None
    #: Global second at which the job last entered the queue (arrival, or
    #: the preemption instant); drives queue-wait accounting.
    queued_since: float = 0.0
    queue_wait: float = 0.0
    preemptions: int = 0
    resizes: int = 0
    #: Executor-seconds actually held (width x global holding time).
    executor_seconds: float = 0.0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def width(self) -> int:
        return 0 if self.block is None else self.block[1] - self.block[0]

    @property
    def jct(self) -> float | None:
        """Job completion time: finish minus arrival (None if unfinished)."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.spec.arrival

    def summary(self) -> dict:
        """Queue-file / report row for this job."""
        return {
            "name": self.name,
            "state": self.state,
            "priority": self.spec.priority,
            "arrival": self.spec.arrival,
            "steps_done": self.steps_done,
            "steps": self.spec.steps,
            "width": self.width,
            "first_start": self.first_start,
            "finish_time": self.finish_time,
            "jct": self.jct,
            "queue_wait": self.queue_wait,
            "preemptions": self.preemptions,
            "resizes": self.resizes,
            "converged": self.converged,
            "diverged": self.diverged,
        }
