"""Append-only schedule log with a byte-identity contract.

Every scheduler decision — submit, admit, resize, preempt, resume,
finish — appends one formatted line here.  The log is the scheduler's
determinism witness: running the same :class:`SchedConfig` over the same
arrival trace twice must produce **byte-identical** ``text()`` (and so
equal ``digest()``), which the property tests and the bench's replay
gate assert before any goodput number is reported.

To make that contract meaningful the formatting is fixed: times are
rendered with ``repr(float(...))`` (shortest round-trip form, no locale,
no precision truncation that could mask drift) and extra fields are
emitted in the caller-supplied keyword order.
"""

from __future__ import annotations

import hashlib

__all__ = ["SchedLog"]


class SchedLog:
    """Ordered record of scheduler events for one run."""

    def __init__(self) -> None:
        self._lines: list[str] = []

    def event(self, time: float, kind: str, job: str, **fields) -> None:
        """Append one event line.

        ``fields`` values are rendered with ``repr`` (floats keep their
        shortest round-trip form, so a single bit of clock drift between
        two runs changes the line and fails the replay gate).
        """
        parts = [f"t={float(time)!r}", kind, f"job={job}"]
        for key, value in fields.items():
            if isinstance(value, float):
                parts.append(f"{key}={value!r}")
            else:
                parts.append(f"{key}={value}")
        self._lines.append(" ".join(parts))

    def lines(self) -> tuple[str, ...]:
        return tuple(self._lines)

    def text(self) -> str:
        """The full log, one event per line, trailing newline included."""
        if not self._lines:
            return ""
        return "\n".join(self._lines) + "\n"

    def digest(self) -> str:
        """SHA-256 of :meth:`text` — the replay-identity fingerprint."""
        return hashlib.sha256(self.text().encode("utf-8")).hexdigest()

    def __len__(self) -> int:
        return len(self._lines)
