"""Scheduling policies: admission order, fair shares, preemption choice.

Every ``dispatch_*`` function here is a **pure module-level function of
its arguments** — no clock, no RNG, no mutation of anything that
outlives the call.  That is a lint-enforced contract, not a convention:
these functions are roots of the RACE001 shared-state rule and inside
the DET002 unordered-iteration scope (see :mod:`repro.analysis.rules`),
the same discipline backend task functions follow.  Purity is what makes
the scheduler's determinism contract checkable — the schedule is a fold
of these functions over the event sequence, so same trace + same seed
replays to a byte-identical schedule log.

Jobs cross the boundary as :class:`JobView` tuples (plain data), never
as live ``Job`` objects, so a policy physically cannot flip job state.
"""

from __future__ import annotations

import math
from typing import NamedTuple, Sequence

__all__ = ["JobView", "dispatch_order", "dispatch_fair_shares",
           "dispatch_admission_width", "dispatch_preemption_victim"]


class JobView(NamedTuple):
    """The slice of job state a policy decision is allowed to see."""

    name: str
    priority: int
    arrival: float
    seq: int
    width: int       # currently held executors (0 while queued)
    min_width: int
    max_width: int


def dispatch_order(policy: str, jobs: Sequence[JobView]) -> tuple[int, ...]:
    """Indices of ``jobs`` in admission-scan order.

    ``fifo`` scans strictly by arrival (submission sequence breaks
    ties); ``fair`` scans by descending priority weight first, so a
    heavier job starved behind a wide gang is considered before lighter
    jobs that arrived earlier.  Both orders are total and deterministic.
    """
    if policy == "fifo":
        keys = sorted(range(len(jobs)),
                      key=lambda i: (jobs[i].arrival, jobs[i].seq))
    elif policy == "fair":
        keys = sorted(range(len(jobs)),
                      key=lambda i: (-jobs[i].priority, jobs[i].arrival,
                                     jobs[i].seq))
    else:
        raise ValueError(f"unknown policy {policy!r}")
    return tuple(keys)


def dispatch_fair_shares(total: int,
                         jobs: Sequence[JobView]) -> dict[str, int]:
    """Weighted fair executor shares, clipped to each job's width range.

    Ideal share of job ``j`` is ``total * priority_j / sum(priorities)``.
    Integerized by largest remainder, then clamped into
    ``[min_width, max_width]``; slack freed by clamping is handed out one
    executor at a time to the heaviest (then earliest-arrived) job still
    under its cap, and any deficit is taken from the lightest (then
    latest-arrived) job still above its floor.  Deterministic: every
    tie-break ends at the submission sequence number.
    """
    if total < 1:
        raise ValueError("total must be at least 1")
    if not jobs:
        return {}
    weight = float(sum(j.priority for j in jobs))
    raw = [total * j.priority / weight for j in jobs]
    shares = [int(math.floor(r)) for r in raw]
    leftover = total - sum(shares)
    by_remainder = sorted(
        range(len(jobs)),
        key=lambda i: (-(raw[i] - shares[i]), jobs[i].arrival, jobs[i].seq))
    for i in by_remainder[:leftover]:
        shares[i] += 1
    shares = [min(max(s, j.min_width), j.max_width)
              for s, j in zip(shares, jobs)]
    # Clamping can leave slack (sum < total) or overshoot (sum > total);
    # settle both deterministically.
    order_give = sorted(range(len(jobs)),
                        key=lambda i: (-jobs[i].priority, jobs[i].arrival,
                                       jobs[i].seq))
    order_take = sorted(range(len(jobs)),
                        key=lambda i: (jobs[i].priority, -jobs[i].arrival,
                                       -jobs[i].seq))
    slack = total - sum(shares)
    while slack > 0:
        for i in order_give:
            if shares[i] < jobs[i].max_width:
                shares[i] += 1
                slack -= 1
                break
        else:
            break  # everyone at cap; leave the rest idle
    while slack < 0:
        for i in order_take:
            if shares[i] > jobs[i].min_width:
                shares[i] -= 1
                slack += 1
                break
        else:
            break  # every floor binding; admission control failed earlier
    return {j.name: s for j, s in zip(jobs, shares)}


def dispatch_admission_width(job: JobView, target: int,
                             largest_free: int) -> int:
    """Width to admit ``job`` at, or 0 when it cannot be admitted.

    ``target`` is the policy's desired width (its fair share, or simply
    its requested width under FIFO); the grant is the target clamped
    into the job's width range and capped by the largest free contiguous
    block.  A job that cannot get even ``min_width`` contiguously is not
    admitted — gangs are all-or-nothing.
    """
    want = min(max(target, job.min_width), job.max_width)
    width = min(want, largest_free)
    if width < job.min_width:
        return 0
    return width


def dispatch_preemption_victim(candidate: JobView,
                               running: Sequence[JobView]) -> int | None:
    """Index of the running job to preempt for ``candidate``, or None.

    The victim is the *strictly* lighter-priority running job with the
    lowest weight, breaking ties toward the latest-arrived (least sunk
    work, deterministically by submission sequence).  Equal priority is
    never preempted — that would let two equal jobs preempt each other
    forever.
    """
    best: int | None = None
    for i, job in enumerate(running):
        if job.priority >= candidate.priority:
            continue
        if best is None:
            best = i
            continue
        champ = running[best]
        if (job.priority, -job.arrival, -job.seq) < (
                champ.priority, -champ.arrival, -champ.seq):
            best = i
    return best
