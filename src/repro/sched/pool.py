"""Gang placement over the shared executor pool.

The scheduler grants each running job one *contiguous block* of executor
slots — gang scheduling: all-or-nothing, so a BSP job never runs with
half its workers (a half-granted gang would just barrier-wait on slots
it does not have).  Contiguity mirrors ``tiered_cluster`` placement:
executors ``[start, start + k)`` are the machine-block neighbours a
tiered network model would co-locate, and it makes fragmentation — the
classic gang-scheduling failure mode the benches show FIFO suffering
from — an honest part of the simulation.

Allocation is deterministic first-fit at the lowest start index; resizes
prefer growing in place (extending the block upward) and otherwise
relocate to the first fit.  Relocation costs nothing here — the priced
cost of any width change is the re-partition step the *job* pays at its
barrier (see ``scheduler.py``).
"""

from __future__ import annotations

__all__ = ["ExecutorPool"]


class ExecutorPool:
    """Tracks which job owns each executor slot of the shared cluster."""

    def __init__(self, total: int) -> None:
        if total < 1:
            raise ValueError("pool needs at least one executor")
        self.total = total
        self._owner: list[str | None] = [None] * total

    # ------------------------------------------------------------------
    @property
    def free_count(self) -> int:
        return sum(1 for owner in self._owner if owner is None)

    def owner_of(self, slot: int) -> str | None:
        return self._owner[slot]

    def block_of(self, job: str) -> tuple[int, int] | None:
        """The contiguous block owned by ``job`` (None if it holds none)."""
        start = None
        end = None
        for i, owner in enumerate(self._owner):
            if owner == job:
                if start is None:
                    start = i
                end = i + 1
            elif start is not None and owner != job:
                break
        if start is None:
            return None
        return (start, end)

    def free_blocks(self) -> list[tuple[int, int]]:
        """Maximal free runs as ``(start, end)`` pairs, ascending."""
        blocks: list[tuple[int, int]] = []
        start = None
        for i, owner in enumerate(self._owner):
            if owner is None:
                if start is None:
                    start = i
            elif start is not None:
                blocks.append((start, i))
                start = None
        if start is not None:
            blocks.append((start, self.total))
        return blocks

    def largest_free_block(self) -> int:
        """Width of the largest contiguous free run (0 when full)."""
        return max((end - start for start, end in self.free_blocks()),
                   default=0)

    def max_resize_width(self, job: str) -> int:
        """Widest gang ``job`` could hold after a resize.

        The longest run of slots that are free *or already the job's own*
        — exactly what :meth:`resize` can reach, since it releases the
        job's block before first-fitting the new width.
        """
        best = 0
        run = 0
        for owner in self._owner:
            if owner is None or owner == job:
                run += 1
                if run > best:
                    best = run
            else:
                run = 0
        return best

    def find_block(self, width: int) -> int | None:
        """First-fit start index for a ``width`` gang, or None."""
        if width < 1:
            raise ValueError("width must be at least 1")
        for start, end in self.free_blocks():
            if end - start >= width:
                return start
        return None

    # ------------------------------------------------------------------
    def allocate(self, job: str, width: int) -> tuple[int, int]:
        """Grant ``job`` the first free ``width``-wide block."""
        if self.block_of(job) is not None:
            raise ValueError(f"job {job!r} already holds a block")
        start = self.find_block(width)
        if start is None:
            raise ValueError(
                f"no contiguous block of {width} executors free "
                f"(largest free run: {self.largest_free_block()})")
        for i in range(start, start + width):
            self._owner[i] = job
        return (start, start + width)

    def release(self, job: str) -> None:
        """Return every slot ``job`` holds to the free pool."""
        held = [i for i, owner in enumerate(self._owner) if owner == job]
        if not held:
            raise ValueError(f"job {job!r} holds no executors")
        for i in held:
            self._owner[i] = None

    def resize(self, job: str, new_width: int) -> tuple[int, int]:
        """Change ``job``'s gang to ``new_width`` slots.

        Shrinks trim the block's top end in place.  Grows extend in
        place when the slots above are free, otherwise relocate to the
        first block wide enough (the job's slots are freed first, so its
        own room counts).  Raises :class:`ValueError` when no placement
        of the new width exists; the caller keeps the old width.
        """
        block = self.block_of(job)
        if block is None:
            raise ValueError(f"job {job!r} holds no executors")
        start, end = block
        width = end - start
        if new_width == width:
            return block
        if new_width < 1:
            raise ValueError("resize width must be at least 1; use "
                             "release() for shrink-to-zero")
        if new_width < width:
            for i in range(start + new_width, end):
                self._owner[i] = None
            return (start, start + new_width)
        grow_end = start + new_width
        if grow_end <= self.total and all(
                self._owner[i] in (None, job)
                for i in range(end, grow_end)):
            for i in range(end, grow_end):
                self._owner[i] = job
            return (start, grow_end)
        # Relocate: free our slots, first-fit the wider gang, restoring
        # the original block if nothing fits.
        for i in range(start, end):
            self._owner[i] = None
        fit = self.find_block(new_width)
        if fit is None:
            for i in range(start, end):
                self._owner[i] = job
            raise ValueError(
                f"no contiguous block of {new_width} executors available "
                f"for job {job!r} (largest free run with its slots "
                f"released: {self.largest_free_block()})")
        for i in range(fit, fit + new_width):
            self._owner[i] = job
        return (fit, fit + new_width)
