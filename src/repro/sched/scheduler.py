"""Event-driven multi-tenant cluster scheduler with elastic training.

:class:`ClusterScheduler` multiplexes one shared pool of simulated
executors across a queue of training jobs.  Each running job trains on
its *own* sub-cluster (built by ``cluster_factory`` at the granted gang
width) through a :class:`~repro.core.TrainingSession`, which pauses at
every superstep barrier — the only points where the scheduler may act on
a job.  Between barriers a job is untouchable, exactly like a BSP system
whose workers are mid-superstep.

The simulation is a deterministic discrete-event loop over a single
global clock:

* **arrive** — a job enters the queue at its spec'd arrival second.
* **barrier** — a running job reached its next superstep barrier.  The
  scheduler accounts the step and then decides: finish, honor a pending
  preemption (checkpoint, then free the gang), apply an elastic width
  change (close the session, re-partition at the new width, resume from
  the barrier weights), or simply run the next superstep.
* **release** — a preempted job's checkpoint write completed; its gang
  block returns to the pool and the job re-queues.

After every pool-changing event the dispatcher admits queued jobs in
policy order (:func:`~repro.sched.policy.dispatch_order`), steers
running elastic jobs toward their fair shares, and — under ``preempt`` —
marks a victim when a strictly-higher-priority job is starved.  A
work-conservation invariant is checked after every dispatch: no queued
job may fit in the largest free contiguous block.

Determinism contract: same :class:`SchedConfig` + same submitted specs
replay to a byte-identical :class:`~repro.sched.log.SchedLog`, and a
fixed-width job run through the scheduler (no preemption) produces a
:class:`~repro.core.TrainResult` bit-identical — weights and history —
to the same spec run standalone, because draining a session *is* the
``fit`` implementation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..cluster import ClusterSpec, Trace, cluster1
from ..core import TrainResult
from .config import SchedConfig
from .job import Job, JobSpec
from .log import SchedLog
from .policy import (JobView, dispatch_admission_width, dispatch_fair_shares,
                     dispatch_order, dispatch_preemption_victim)
from .pool import ExecutorPool

__all__ = ["ClusterScheduler", "SchedResult"]


@dataclass(frozen=True)
class SchedResult:
    """Everything one scheduler run produced."""

    config: SchedConfig
    #: All jobs in submission order (finished, cancelled, or starved).
    jobs: tuple[Job, ...]
    #: Per-job training results, keyed by job name (finished jobs only).
    results: dict[str, TrainResult] = field(default_factory=dict)
    log: SchedLog = field(default_factory=SchedLog)
    #: Per-job gantt rows (wait / compute / checkpoint / recovery spans
    #: on the global clock), rendered by ``repro.metrics.gantt``.
    trace: Trace = field(default_factory=Trace)
    #: Global second at which the last event fired.
    makespan: float = 0.0

    @property
    def finished_jobs(self) -> tuple[Job, ...]:
        return tuple(j for j in self.jobs if j.state == "finished")

    @property
    def total_steps(self) -> int:
        """Supersteps completed across all jobs (the goodput numerator)."""
        return sum(j.steps_done for j in self.jobs)


def _default_cluster_factory(seed: int):
    def factory(width: int) -> ClusterSpec:
        return cluster1(executors=width, seed=seed)
    return factory


class ClusterScheduler:
    """Deterministic event-driven scheduler over a shared executor pool.

    Parameters
    ----------
    config:
        Run control (policy, elasticity, preemption, pool size, seed).
    cluster_factory:
        ``factory(width) -> ClusterSpec`` building the sub-cluster a job
        trains on at gang width ``width``.  Defaults to homogeneous
        Cluster 1 hardware at the scheduler's seed, so every width change
        keeps per-executor hardware identical.
    """

    def __init__(self, config: SchedConfig | None = None,
                 cluster_factory=None) -> None:
        self.config = config if config is not None else SchedConfig()
        self.cluster_factory = (cluster_factory if cluster_factory is not None
                                else _default_cluster_factory(
                                    self.config.seed))
        self.pool = ExecutorPool(self.config.total_executors)
        self.log = SchedLog()
        self.trace = Trace()
        self.now = 0.0
        self._jobs: list[Job] = []
        self._by_name: dict[str, Job] = {}
        self._results: dict[str, TrainResult] = {}
        self._sessions: dict = {}
        self._datasets: dict = {}
        self._events: list[tuple[float, int, str, str]] = []
        self._event_seq = 0
        self._arrived: set[str] = set()
        self._ran = False

    # ------------------------------------------------------------------
    # queue API
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> Job:
        """Add one job to the arrival queue (before :meth:`run`)."""
        if self._ran:
            raise RuntimeError("scheduler run() already started")
        if spec.name in self._by_name:
            raise ValueError(f"duplicate job name {spec.name!r}")
        lo, hi = spec.width_range
        if lo > self.config.total_executors:
            raise ValueError(
                f"job {spec.name!r} needs at least {lo} executors but the "
                f"pool has only {self.config.total_executors}")
        job = Job(spec=spec, seq=len(self._jobs),
                  queued_since=spec.arrival)
        self._jobs.append(job)
        self._by_name[spec.name] = job
        return job

    def cancel(self, name: str) -> Job:
        """Withdraw a job before the run starts."""
        if self._ran:
            raise RuntimeError("scheduler run() already started")
        job = self._by_name.get(name)
        if job is None:
            raise ValueError(f"no job named {name!r}")
        job.state = "cancelled"
        return job

    # ------------------------------------------------------------------
    # event loop
    # ------------------------------------------------------------------
    def run(self) -> SchedResult:
        """Play the whole schedule; one-shot per scheduler instance."""
        if self._ran:
            raise RuntimeError("scheduler run() is one-shot; build a new "
                               "ClusterScheduler to run again")
        self._ran = True
        for job in self._jobs:
            if job.state == "cancelled":
                self.log.event(job.spec.arrival, "cancel", job.name)
                continue
            self._push(job.spec.arrival, "arrive", job.name)
        while self._events:
            time, _, kind, name = heapq.heappop(self._events)
            self.now = time
            job = self._by_name[name]
            if kind == "arrive":
                self._arrived.add(name)
                self.log.event(time, "arrive", name,
                               priority=job.spec.priority,
                               executors=job.spec.executors)
                self._dispatch()
            elif kind == "barrier":
                self._on_barrier(job)
            elif kind == "release":
                self._on_release(job)
            else:  # pragma: no cover - event kinds are internal
                raise RuntimeError(f"unknown event kind {kind!r}")
        return SchedResult(config=self.config, jobs=tuple(self._jobs),
                           results=dict(self._results), log=self.log,
                           trace=self.trace, makespan=self.now)

    def _push(self, time: float, kind: str, name: str) -> None:
        self._event_seq += 1
        heapq.heappush(self._events, (time, self._event_seq, kind, name))

    # ------------------------------------------------------------------
    # barrier handling
    # ------------------------------------------------------------------
    def _on_barrier(self, job: Job) -> None:
        session = self._sessions[job.name]
        if session.finished:
            self._finish(job, session)
            return
        if self.config.preempt and job.preempt_requested:
            self._checkpoint_and_release(job, session)
            return
        overhead = 0.0
        shrunk = False
        if (self.config.elastic and job.spec.elastic
                and job.target_width is not None
                and job.steps_done % self.config.resize_every == 0):
            new_width = self._achievable_width(job)
            if new_width is not None:
                shrunk = new_width < job.width
                overhead = self._apply_resize(job, new_width)
        self._start_superstep(job, overhead)
        if shrunk:
            # Shrinking returned slots to the pool; queued jobs may fit.
            self._dispatch()

    def _finish(self, job: Job, session) -> None:
        self._results[job.name] = session.result()
        job.converged = session.converged
        job.diverged = session.diverged
        session.close()
        del self._sessions[job.name]
        self.pool.release(job.name)
        job.block = None
        job.state = "finished"
        job.finish_time = self.now
        self.log.event(self.now, "finish", job.name, steps=job.steps_done,
                       clock=job.clock, converged=job.converged,
                       diverged=job.diverged)
        self._dispatch()

    def _checkpoint_and_release(self, job: Job, session) -> None:
        """Preemption, step 1: write the barrier checkpoint, keep the gang
        until the write completes, then hand off to a ``release`` event."""
        trainer = session.trainer
        before = session.clock()
        trainer._checkpoint_phase(session.step, job.spec.n_features)
        dt = session.clock() - before
        job.clock = session.clock()
        job.weights = np.array(session.w, copy=True)
        session.close()
        del self._sessions[job.name]
        if dt > 0:
            self.trace.add(job.name, self.now, self.now + dt, "checkpoint",
                           job.steps_done)
        job.executor_seconds += job.width * dt
        self.log.event(self.now, "checkpoint", job.name,
                       step=job.steps_done, seconds=dt)
        self._push(self.now + dt, "release", job.name)

    def _on_release(self, job: Job) -> None:
        """Preemption, step 2: the gang block returns to the pool."""
        self.pool.release(job.name)
        job.block = None
        job.state = "preempted"
        job.preempt_requested = False
        job.preemptions += 1
        job.queued_since = self.now
        self.log.event(self.now, "preempt", job.name, step=job.steps_done)
        self._dispatch()

    # ------------------------------------------------------------------
    # superstep execution
    # ------------------------------------------------------------------
    def _start_superstep(self, job: Job, overhead: float = 0.0) -> None:
        """Run one superstep now; schedule its barrier at completion time.

        ``overhead`` is simulated seconds of re-partition/restore work
        already folded into the session's ``clock_offset``; it shows up
        as a ``recovery`` span before the compute span.
        """
        session = self._sessions[job.name]
        start = self.now
        step = session.run_step()
        after = session.clock()
        dt = after - job.clock
        job.executor_seconds += job.width * dt
        if overhead > 0:
            self.trace.add(job.name, start, start + overhead, "recovery",
                           step - 1)
        self.trace.add(job.name, start + overhead, start + dt, "compute",
                       step)
        job.clock = after
        job.steps_done = step
        job.weights = np.array(session.w, copy=True)
        self._push(start + dt, "barrier", job.name)

    # ------------------------------------------------------------------
    # admission / steering
    # ------------------------------------------------------------------
    def _view(self, job: Job) -> JobView:
        lo, hi = job.spec.width_range
        return JobView(name=job.name, priority=job.spec.priority,
                       arrival=job.spec.arrival, seq=job.seq,
                       width=job.width, min_width=lo, max_width=hi)

    def _dispatch(self) -> None:
        """Admit, steer, and (optionally) preempt at the current instant."""
        running = [j for j in self._jobs if j.state == "running"]
        waiting = [j for j in self._jobs
                   if j.state in ("queued", "preempted")
                   and j.name in self._arrived]

        # Steer running elastic jobs toward their policy shares; the new
        # targets take effect at each job's own next barrier.
        if self.config.elastic:
            if self.config.policy == "fair":
                shares = dispatch_fair_shares(
                    self.config.total_executors,
                    [self._view(j) for j in running + waiting])
                for j in running:
                    j.target_width = shares[j.name]
            else:
                for j in running:
                    j.target_width = j.spec.width_range[1]

        # Admit waiting jobs in policy order; a job that cannot get its
        # minimum gang contiguously stays queued and later jobs may
        # backfill around it.
        views = [self._view(j) for j in waiting]
        starved: list[Job] = []
        for idx in dispatch_order(self.config.policy, views):
            job = waiting[idx]
            if self.config.policy == "fair" and self.config.elastic:
                shares = dispatch_fair_shares(
                    self.config.total_executors,
                    [self._view(j) for j in running + [job]])
                target = shares[job.name]
            else:
                target = job.spec.executors
            width = dispatch_admission_width(
                self._view(job), target, self.pool.largest_free_block())
            if width > 0:
                self._admit(job, width)
                running.append(job)
            else:
                starved.append(job)

        # A starved strictly-higher-priority job may request preemption
        # of the lightest running job (acted on at the victim's barrier).
        if self.config.preempt:
            for job in starved:
                candidates = [j for j in running
                              if not j.preempt_requested
                              and j.state == "running"]
                victim_idx = dispatch_preemption_victim(
                    self._view(job), [self._view(j) for j in candidates])
                if victim_idx is not None:
                    victim = candidates[victim_idx]
                    victim.preempt_requested = True
                    self.log.event(self.now, "preempt_request", victim.name,
                                   beneficiary=job.name)

        # Work conservation: nothing admissible may be left waiting.
        largest = self.pool.largest_free_block()
        for job in starved:
            if job.spec.width_range[0] <= largest:
                raise RuntimeError(
                    f"work-conservation violation: job {job.name!r} "
                    f"(min width {job.spec.width_range[0]}) left queued "
                    f"with a free block of {largest} executors")

    def _admit(self, job: Job, width: int) -> None:
        job.block = self.pool.allocate(job.name, width)
        if self.now > job.queued_since:
            self.trace.add(job.name, job.queued_since, self.now, "wait",
                           job.steps_done)
            job.queue_wait += self.now - job.queued_since
        if job.first_start is None:
            job.first_start = self.now
        resumed = job.steps_done > 0
        overhead = self._open_segment(job, width)
        job.state = "running"
        self.log.event(self.now, "resume" if resumed else "admit", job.name,
                       width=width, block=f"{job.block[0]}-{job.block[1]}",
                       step=job.steps_done, overhead=overhead)
        self._start_superstep(job, overhead)

    # ------------------------------------------------------------------
    # segments (one trainer + session per held width)
    # ------------------------------------------------------------------
    def _dataset(self, job: Job):
        data = self._datasets.get(job.name)
        if data is None:
            data = job.spec.dataset()
            self._datasets[job.name] = data
        return data

    @staticmethod
    def _repartition_seconds(dataset, width: int,
                             cluster: ClusterSpec) -> float:
        """Price re-partitioning ``dataset`` across ``width`` executors:
        the full sparse matrix crosses the network twice (shuffle write +
        read) with receivers draining in parallel."""
        values = 2.0 * dataset.nnz / width
        return cluster.network.transfer_seconds(values)

    def _open_segment(self, job: Job, width: int) -> float:
        """Build trainer + session for one constant-width segment.

        Returns the overhead (simulated seconds) charged before the
        segment's first superstep: zero for a fresh job, re-partition
        cost for a width change, plus checkpoint-restore for a resume
        after preemption.
        """
        cluster = self.cluster_factory(width)
        trainer = job.spec.make_trainer(cluster)
        dataset = self._dataset(job)
        overhead = 0.0
        if job.steps_done > 0:
            overhead = self._repartition_seconds(dataset, width, cluster)
            if job.state == "preempted":
                overhead += cluster.network.transfer_seconds(
                    job.spec.n_features)
        session = trainer.open_session(
            dataset, initial_weights=job.weights,
            start_step=job.steps_done, history=job.history,
            clock_offset=job.clock + overhead)
        job.history = session.history
        self._sessions[job.name] = session
        return overhead

    def _achievable_width(self, job: Job) -> int | None:
        """Width the pending elastic target can actually reach, or None
        when no change should happen at this barrier."""
        lo, hi = job.spec.width_range
        desired = min(max(job.target_width, lo), hi)
        if desired > job.width:
            desired = min(desired, self.pool.max_resize_width(job.name))
        if desired < lo or desired == job.width:
            return None
        return desired

    def _apply_resize(self, job: Job, new_width: int) -> float:
        """Close the session, move the gang, reopen at the new width."""
        session = self._sessions[job.name]
        old_width = job.width
        job.clock = session.clock()
        job.weights = np.array(session.w, copy=True)
        session.close()
        del self._sessions[job.name]
        job.block = self.pool.resize(job.name, new_width)
        overhead = self._open_segment(job, new_width)
        job.resizes += 1
        self.log.event(self.now, "resize", job.name, old=old_width,
                       new=new_width,
                       block=f"{job.block[0]}-{job.block[1]}",
                       step=job.steps_done, overhead=overhead)
        return overhead
