"""Synthetic multi-tenant workloads: Poisson job arrival traces.

Mirrors :func:`repro.serve.loadgen.poisson_arrivals` one level up — the
arrivals here are whole training jobs, not inference requests.  Gaps are
exponential with the configured rate, and each arrival's job shape
(steps, gang width, priority, data size) is drawn from the same seeded
generator, so a trace is a pure function of ``(rate, duration, seed)``
and two runs over it are byte-identical replays of each other.

Priorities follow the job's length: short jobs get the heavy weight, so
the ``fair`` policy approximates shortest-job-first — the mechanism
behind its p95-JCT win over FIFO in ``benchmarks/bench_ext_sched.py``.
"""

from __future__ import annotations

import numpy as np

from .job import JobSpec

__all__ = ["poisson_job_trace"]


def poisson_job_trace(rate: float, duration: float, seed: int = 0, *,
                      system: str = "MLlib*", elastic: bool = False,
                      max_width: int = 6,
                      n_features: int = 64) -> list[JobSpec]:
    """Draw a Poisson trace of training jobs over ``[0, duration)``.

    Parameters
    ----------
    rate:
        Mean arrivals per simulated second.
    duration:
        Arrival window; jobs arriving past it are not generated (their
        *runs* may extend past it freely).
    seed:
        Trace seed; same ``(rate, duration, seed)`` → same spec list.
    system:
        Trainer system every job uses.
    elastic:
        Give each job a width range (half its request up to
        ``max_width``) instead of a rigid gang.
    max_width:
        Cap on any job's maximum width (keep below the scheduler pool).
    n_features:
        Model size of every job (must stay >= the widest gang).
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")
    if max_width < 1:
        raise ValueError("max_width must be at least 1")
    rng = np.random.default_rng(seed)
    specs: list[JobSpec] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / rate))
        if t >= duration:
            break
        index = len(specs)
        steps = int(rng.integers(3, 9))
        executors = int(rng.choice((2, 3, 4)))
        executors = min(executors, max_width)
        if elastic:
            lo = max(1, executors // 2)
            hi = min(max_width, executors + 2)
        else:
            lo = hi = executors
        # Short jobs weigh more: fair share then approximates SJF.
        priority = 3 if steps <= 5 else 1
        n_rows = int(120 + 40 * rng.integers(0, 4))
        specs.append(JobSpec(
            name=f"job-{index:03d}",
            system=system,
            arrival=round(t, 6),
            priority=priority,
            executors=executors,
            min_executors=lo,
            max_executors=hi,
            steps=steps,
            n_rows=n_rows,
            n_features=n_features,
            nnz_per_row=6.0,
            data_seed=seed * 1009 + index,
            seed=seed,
        ))
    return specs
