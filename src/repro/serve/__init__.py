"""Model registry + batched prediction serving (the deployment half).

The trainers end at a :class:`~repro.glm.GLMModel`; this package turns
that into a train-and-serve system:

* :class:`ModelRegistry` — versioned, digest-verified on-disk artifacts
  with promotion (``save_model`` / ``load_model`` / ``list_versions`` /
  ``promote``);
* :class:`PredictionService` — dynamic micro-batching (flush on size or
  latency deadline), a bounded admission queue that sheds under
  overload, a simulated worker pool, and an optional shadow/canary
  version scored on every batch;
* :mod:`~repro.serve.loadgen` — open-loop Poisson load generation for
  the arrival-rate-vs-p99 sweep in ``benchmarks/bench_ext_serving.py``;
* serving metrics (QPS, queue depth, batch sizes, latency percentiles)
  flow through :mod:`repro.metrics` (``LatencyHistogram``,
  ``serving_report``).

Like the training engines, the service does real math on a simulated
clock: predictions are real scipy matvecs, time comes from
:class:`ServingCostModel`, and every run is bit-for-bit reproducible.
"""

from .batching import MicroBatcher, PredictRequest, Prediction, stack_requests
from .config import ServeConfig
from .cost import ServingCostModel
from .loadgen import (dataset_requests, poisson_arrivals, rate_sweep,
                      requests_from_dataset)
from .registry import ModelRegistry, RegistryError, VersionInfo
from .service import PredictionService, ServingResult, ShadowComparison

__all__ = [
    "ServeConfig", "ServingCostModel",
    "PredictRequest", "Prediction", "MicroBatcher", "stack_requests",
    "PredictionService", "ServingResult", "ShadowComparison",
    "ModelRegistry", "RegistryError", "VersionInfo",
    "poisson_arrivals", "requests_from_dataset", "dataset_requests",
    "rate_sweep",
]
