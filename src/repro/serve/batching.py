"""Dynamic micro-batching with a bounded admission queue.

Requests arrive one at a time; the batcher coalesces them and decides
*when* a batch must leave the queue:

* **flush on size** — as soon as ``max_batch`` requests are pending the
  batch is ready immediately;
* **flush on deadline** — otherwise the batch becomes ready when the
  *oldest* pending request has waited ``max_delay`` (simulated) seconds,
  so batching never costs an idle service more than the deadline.

Admission is bounded: past ``queue_limit`` pending requests,
:meth:`MicroBatcher.offer` refuses the request (the service records it
as shed).  Overload therefore surfaces as an explicit rejection rate,
not as unbounded queueing delay — the backpressure half of the SLO
story.

The batcher is a pure data structure over simulated timestamps; the
event loop that drives it lives in :mod:`repro.serve.service`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

__all__ = ["PredictRequest", "Prediction", "MicroBatcher", "stack_requests"]


@dataclass(frozen=True)
class PredictRequest:
    """One scoring request: a sparse feature row and its arrival time."""

    request_id: int
    features: sp.csr_matrix
    arrival: float

    def __post_init__(self) -> None:
        if self.features.shape[0] != 1:
            raise ValueError("a request carries exactly one feature row")
        if self.arrival < 0:
            raise ValueError("arrival time must be non-negative")

    @property
    def nnz(self) -> int:
        return int(self.features.nnz)


@dataclass(frozen=True)
class Prediction:
    """The served answer for one request, with its latency breakdown."""

    request_id: int
    margin: float
    label: float
    arrival: float
    dispatched: float
    completed: float

    @property
    def latency(self) -> float:
        """Arrival-to-completion time (queueing + service)."""
        return self.completed - self.arrival

    @property
    def queue_seconds(self) -> float:
        """Time spent waiting for the batch to dispatch."""
        return self.dispatched - self.arrival


def stack_requests(requests: list[PredictRequest]) -> sp.csr_matrix:
    """Stack request rows into one CSR matrix, preserving order.

    Row ``i`` of the stack is request ``i``'s feature row with its
    nonzeros in their original order, so ``stack @ w`` computes each
    per-row dot product exactly as a standalone ``row @ w`` would —
    batched predictions are bit-identical to unbatched ones.
    """
    if not requests:
        raise ValueError("cannot stack an empty batch")
    if len(requests) == 1:
        return requests[0].features
    return sp.vstack([r.features for r in requests], format="csr",
                     dtype=np.float64)


class MicroBatcher:
    """Bounded FIFO of pending requests with flush-time accounting."""

    def __init__(self, max_batch: int, max_delay: float,
                 queue_limit: int) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        if queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.queue_limit = queue_limit
        self._pending: deque[PredictRequest] = deque()

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def depth(self) -> int:
        """Current admission-queue depth."""
        return len(self._pending)

    # ------------------------------------------------------------------
    def offer(self, request: PredictRequest) -> bool:
        """Admit a request, or return False when the queue is full.

        Requests must be offered in non-decreasing arrival order — the
        batcher is driven by an event loop that replays arrivals in
        time order.
        """
        if self._pending and request.arrival < self._pending[-1].arrival:
            raise ValueError("requests must be offered in arrival order")
        if len(self._pending) >= self.queue_limit:
            return False
        self._pending.append(request)
        return True

    def next_flush_time(self) -> float | None:
        """When the current head batch becomes ready, or None if empty.

        A full batch (``max_batch`` pending) is ready the moment its
        last member arrived; a partial batch is ready at the oldest
        member's deadline.
        """
        if not self._pending:
            return None
        if len(self._pending) >= self.max_batch:
            return self._pending[self.max_batch - 1].arrival
        return self._pending[0].arrival + self.max_delay

    def take(self) -> list[PredictRequest]:
        """Pop the head batch (up to ``max_batch`` requests)."""
        if not self._pending:
            raise ValueError("no pending requests to take")
        count = min(self.max_batch, len(self._pending))
        return [self._pending.popleft() for _ in range(count)]
