"""Serving configuration: batching, backpressure and capacity knobs."""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Knobs for the prediction service and its micro-batcher.

    Parameters
    ----------
    max_batch:
        Flush the pending queue into one CSR batch as soon as this many
        requests are waiting.  1 disables batching (every request is its
        own dispatch) — the baseline the serving bench compares against.
    max_delay:
        Latency deadline in (simulated) seconds: a queued request is
        dispatched no later than ``arrival + max_delay`` even if the
        batch is not full.  This caps the latency cost of batching on a
        quiet service.
    queue_limit:
        Bound on the admission queue.  When the queue is full, new
        requests are *shed* (503-style rejection) instead of queued —
        under overload the service degrades by refusing work, never by
        letting latency grow without bound.
    workers:
        Size of the worker pool draining batches.  Concurrency is
        simulated (deterministically) exactly like executor parallelism
        in the training engines.
    seed:
        Seed for load generation when the service drives synthetic
        traffic (``repro.serve.loadgen``); the service itself is
        deterministic and never draws randomness.
    """

    max_batch: int = 32
    max_delay: float = 1.0e-3
    queue_limit: int = 128
    workers: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")

    def with_overrides(self, **kwargs) -> "ServeConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)
