"""Serving cost model: pricing one dispatched batch in simulated seconds.

Same philosophy as :class:`repro.cluster.ComputeCostModel` — real math,
simulated clock.  A dispatch pays a fixed per-batch overhead (request
decode, task dispatch, response framing — the cost micro-batching exists
to amortize) plus per-row bookkeeping plus the sparse matvec itself at
the training cost model's nonzero rate.  With the defaults a single
~10-nnz request costs ~51us while a full 32-row batch costs ~88us —
micro-batching buys an order of magnitude of throughput, which is the
effect the serving bench measures.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServingCostModel"]


@dataclass(frozen=True)
class ServingCostModel:
    """Prices a batched prediction dispatch in simulated seconds.

    Parameters
    ----------
    dispatch_overhead_seconds:
        Fixed cost per dispatched batch, independent of its size.
    sec_per_row:
        Per-example bookkeeping inside a batch (response assembly).
    sec_per_nnz:
        Seconds per stored nonzero of the stacked batch matrix; defaults
        to the training cost model's reference rate.
    """

    dispatch_overhead_seconds: float = 5.0e-5
    sec_per_row: float = 1.0e-6
    sec_per_nnz: float = 2.0e-8

    def __post_init__(self) -> None:
        if self.dispatch_overhead_seconds < 0:
            raise ValueError("dispatch_overhead_seconds must be "
                             "non-negative")
        if self.sec_per_row <= 0:
            raise ValueError("sec_per_row must be positive")
        if self.sec_per_nnz <= 0:
            raise ValueError("sec_per_nnz must be positive")

    def batch_seconds(self, rows: int, nnz: int) -> float:
        """Service time of one dispatched batch."""
        if rows < 1:
            raise ValueError("a batch has at least one row")
        if nnz < 0:
            raise ValueError("nnz must be non-negative")
        return (self.dispatch_overhead_seconds
                + rows * self.sec_per_row + nnz * self.sec_per_nnz)

    def saturation_qps(self, workers: int, batch: int,
                       nnz_per_row: float) -> float:
        """Rows/second the pool sustains at a fixed batch size.

        The capacity planning helper behind the serving bench's rate
        sweep: offered load above this rate *must* shed.
        """
        per_batch = self.batch_seconds(batch, round(batch * nnz_per_row))
        return workers * batch / per_batch
