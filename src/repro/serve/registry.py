"""Versioned on-disk model registry.

Layout (one directory per model name, one artifact per version)::

    <root>/
      <name>/
        v0001.npz      # GLMModel artifact (weights + metadata + digest)
        v0002.npz
        PROMOTED       # text file naming the serving version ("v0001")

Versions are immutable and monotonically numbered; ``PROMOTED`` is the
only mutable state and is written atomically (tmp file + rename).
:meth:`ModelRegistry.promote` verifies the artifact's SHA-256 digest
*before* repointing, so a corrupted artifact can never become the
serving version.  :meth:`ModelRegistry.load_model` with no version
resolves the promoted version, falling back to the latest — which makes
"train, save, promote, serve" and "train, save, serve" both one-liners.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

from ..glm import GLMModel, read_artifact_meta

__all__ = ["ModelRegistry", "RegistryError", "VersionInfo"]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")
_VERSION_RE = re.compile(r"^v(\d{4,})$")
_PROMOTED_FILE = "PROMOTED"


class RegistryError(Exception):
    """A registry operation referenced a missing name/version, or the
    registry state on disk is inconsistent."""


@dataclass(frozen=True)
class VersionInfo:
    """One registered version's metadata (no weights loaded)."""

    name: str
    version: str
    path: Path
    dim: int
    objective: dict
    provenance: dict
    digest: str
    promoted: bool

    def row(self) -> list[object]:
        """Pairs with ``format_table(["version", "dim", "objective",
        "digest", "promoted"], ...)`` in the CLI."""
        objective = (f"{self.objective.get('loss')}"
                     f"+{self.objective.get('regularizer')}"
                     f"({self.objective.get('strength', 0):g})")
        return [self.version, self.dim, objective, self.digest[:12],
                "*" if self.promoted else ""]


class ModelRegistry:
    """Filesystem-backed model store with promotion.

    The root directory is created lazily on the first save; every other
    operation raises :class:`RegistryError` when the name (or version)
    does not exist.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    def save_model(self, model: GLMModel, name: str,
                   provenance: dict | None = None) -> str:
        """Store ``model`` as the next version of ``name``; return it."""
        self._check_name(name)
        model_dir = self.root / name
        model_dir.mkdir(parents=True, exist_ok=True)
        version = f"v{self._next_number(model_dir):04d}"
        model.save(model_dir / f"{version}.npz", provenance=provenance)
        return version

    def load_model(self, name: str, version: str | None = None) -> GLMModel:
        """Load a version (default: promoted, else latest), verified."""
        return GLMModel.load(self.resolve(name, version))

    def list_versions(self, name: str) -> list[VersionInfo]:
        """All versions of ``name``, oldest first, with metadata."""
        model_dir = self._model_dir(name)
        promoted = self.promoted_version(name)
        infos = []
        for version, path in self._versions(model_dir):
            meta = read_artifact_meta(path)
            infos.append(VersionInfo(
                name=name, version=version, path=path,
                dim=int(meta.get("dim", 0)),
                objective=dict(meta.get("objective", {})),
                provenance=dict(meta.get("provenance", {})),
                digest=str(meta.get("digest", "")),
                promoted=(version == promoted)))
        return infos

    def promote(self, name: str, version: str) -> None:
        """Mark ``version`` as the serving version of ``name``.

        The artifact is fully loaded and digest-verified first — a
        corrupted candidate fails here, leaving the previous promotion
        in place.
        """
        path = self.resolve(name, version)
        GLMModel.load(path)  # digest gate; raises ArtifactError on rot
        pointer = self._model_dir(name) / _PROMOTED_FILE
        tmp = pointer.with_suffix(".tmp")
        tmp.write_text(version + "\n", encoding="ascii")
        tmp.replace(pointer)

    def promoted_version(self, name: str) -> str | None:
        """The promoted version id of ``name``, or None."""
        pointer = self._model_dir(name) / _PROMOTED_FILE
        if not pointer.is_file():
            return None
        version = pointer.read_text(encoding="ascii").strip()
        if not _VERSION_RE.match(version):
            raise RegistryError(
                f"{pointer}: malformed promotion pointer {version!r}")
        return version

    # ------------------------------------------------------------------
    def resolve(self, name: str, version: str | None = None) -> Path:
        """Path of a version's artifact (default promoted, else latest)."""
        model_dir = self._model_dir(name)
        if version is None:
            version = self.promoted_version(name)
        if version is None:
            versions = self._versions(model_dir)
            version = versions[-1][0]  # _model_dir guarantees non-empty
        path = model_dir / f"{version}.npz"
        if not path.is_file():
            known = [v for v, _ in self._versions(model_dir)]
            raise RegistryError(
                f"model {name!r} has no version {version!r}; "
                f"known versions: {known}")
        return path

    def model_names(self) -> list[str]:
        """Registered model names (sorted)."""
        if not self.root.is_dir():
            return []
        return sorted(p.name for p in self.root.iterdir()
                      if p.is_dir() and self._versions(p))

    # ------------------------------------------------------------------
    @staticmethod
    def _check_name(name: str) -> None:
        if not _NAME_RE.match(name):
            raise RegistryError(
                f"invalid model name {name!r}: use letters, digits, "
                "'-', '_' and '.' only")

    def _model_dir(self, name: str) -> Path:
        self._check_name(name)
        model_dir = self.root / name
        if not model_dir.is_dir() or not self._versions(model_dir):
            raise RegistryError(
                f"no model named {name!r} in registry {self.root} "
                f"(known: {self.model_names()})")
        return model_dir

    @staticmethod
    def _versions(model_dir: Path) -> list[tuple[str, Path]]:
        """(version, path) pairs present on disk, sorted by number."""
        found = []
        for path in model_dir.glob("v*.npz"):
            match = _VERSION_RE.match(path.stem)
            if match:
                found.append((int(match.group(1)), path.stem, path))
        found.sort()
        return [(stem, path) for _, stem, path in found]

    @staticmethod
    def _next_number(model_dir: Path) -> int:
        numbers = [0]
        for path in model_dir.glob("v*.npz"):
            match = _VERSION_RE.match(path.stem)
            if match:
                numbers.append(int(match.group(1)))
        return max(numbers) + 1
