"""The prediction service: admission, micro-batching, workers, shadowing.

:class:`PredictionService` is a deterministic discrete-event server in
the same mold as the training engines — the predictions are real scipy
math, the clock is simulated (rule DET001: the simulated clock is the
only clock).  ``process`` replays a stream of arrival-stamped requests
through:

1. **admission** — the bounded :class:`~repro.serve.batching.MicroBatcher`
   queue; requests arriving at a full queue are shed (503-style) and
   counted, which is what keeps tail latency bounded under overload;
2. **dispatch** — a batch leaves the queue when it is full or its oldest
   request hits the ``max_delay`` deadline, and starts on the earliest
   free worker of a fixed-size pool (ties broken by worker index, so
   runs are reproducible);
3. **service** — the batch's rows are stacked into one CSR matrix and
   scored with a single ``X @ w`` (bit-identical to scoring rows one by
   one), priced by :class:`~repro.serve.cost.ServingCostModel`;
4. **shadowing** (optional) — the same batch is teed to a second model
   version on a mirrored worker pool; per-row prediction disagreements
   and the shadow's own latency distribution are recorded without
   affecting primary responses.

Event ordering convention: a dispatch scheduled for exactly the same
instant as an arrival happens *before* the arrival is admitted, so a
request never gets shed by a queue that was already draining at its
arrival time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..glm import GLMModel
from ..metrics import LatencyHistogram
from .batching import MicroBatcher, PredictRequest, Prediction, stack_requests
from .config import ServeConfig
from .cost import ServingCostModel

__all__ = ["PredictionService", "ServingResult", "ShadowComparison"]


@dataclass(frozen=True)
class ShadowComparison:
    """Per-version comparison collected by shadow/canary mode."""

    primary_version: str
    shadow_version: str
    rows: int
    disagreements: int
    latency: LatencyHistogram
    primary_latency: LatencyHistogram

    @property
    def disagreement_rate(self) -> float:
        if self.rows == 0:
            return 0.0
        return self.disagreements / self.rows

    @property
    def p99(self) -> float:
        return self.latency.percentile(99) if self.latency.count else 0.0

    def summary(self) -> dict:
        return {
            "primary_version": self.primary_version,
            "shadow_version": self.shadow_version,
            "rows": self.rows,
            "disagreements": self.disagreements,
            "disagreement_rate": self.disagreement_rate,
            "latency": self.latency.summary(),
            "primary_latency": self.primary_latency.summary(),
        }


@dataclass(frozen=True)
class ServingResult:
    """Everything one ``process`` run produced and measured."""

    predictions: tuple[Prediction, ...]
    shed: tuple[int, ...]
    offered: int
    batch_sizes: tuple[int, ...]
    max_queue_depth: int
    latency: LatencyHistogram
    shadow: ShadowComparison | None = None

    @property
    def completed(self) -> int:
        return len(self.predictions)

    @property
    def shed_rate(self) -> float:
        if self.offered == 0:
            return 0.0
        return len(self.shed) / self.offered

    @property
    def mean_batch(self) -> float:
        if not self.batch_sizes:
            return 0.0
        return sum(self.batch_sizes) / len(self.batch_sizes)

    @property
    def makespan(self) -> float:
        """First arrival to last completion, simulated seconds."""
        if not self.predictions:
            return 0.0
        first = min(p.arrival for p in self.predictions)
        last = max(p.completed for p in self.predictions)
        return last - first

    @property
    def qps(self) -> float:
        """Completed predictions per simulated second."""
        span = self.makespan
        if span <= 0:
            return 0.0
        return self.completed / span

    def by_id(self) -> dict[int, Prediction]:
        """Predictions keyed by request id (for response routing)."""
        return {p.request_id: p for p in self.predictions}

    def summary(self) -> dict:
        """JSON-exportable run summary (the bench's output rows)."""
        payload = {
            "offered": self.offered,
            "completed": self.completed,
            "shed": len(self.shed),
            "shed_rate": self.shed_rate,
            "qps": self.qps,
            "mean_batch": self.mean_batch,
            "max_queue_depth": self.max_queue_depth,
            "makespan": self.makespan,
            "latency": self.latency.summary(),
        }
        if self.shadow is not None:
            payload["shadow"] = self.shadow.summary()
        return payload


@dataclass
class _PoolState:
    """Mutable event-loop state for one ``process`` run."""

    workers: list[float]
    shadow_workers: list[float]
    predictions: list[Prediction] = field(default_factory=list)
    shed: list[int] = field(default_factory=list)
    batch_sizes: list[int] = field(default_factory=list)
    max_queue_depth: int = 0
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    shadow_latency: LatencyHistogram = field(
        default_factory=LatencyHistogram)
    shadow_primary_latency: LatencyHistogram = field(
        default_factory=LatencyHistogram)
    shadow_rows: int = 0
    disagreements: int = 0


class PredictionService:
    """Micro-batched model serving over a simulated clock.

    Parameters
    ----------
    model:
        The primary :class:`~repro.glm.GLMModel` answering requests.
    config:
        Batching/backpressure/capacity knobs.
    cost:
        Cost model pricing each dispatch (defaults are calibrated to the
        training cost model's nonzero rate).
    shadow:
        Optional second model (a canary candidate); every batch is teed
        to it on a mirrored worker pool and per-row disagreements are
        counted.  Must share the primary's feature dimension.
    shadow_cost:
        Cost model for the shadow version (defaults to ``cost`` — pass a
        slower one to model a heavier candidate).
    primary_version / shadow_version:
        Labels carried into the shadow report (registry version ids).
    """

    def __init__(self, model: GLMModel, config: ServeConfig | None = None,
                 cost: ServingCostModel | None = None,
                 shadow: GLMModel | None = None,
                 shadow_cost: ServingCostModel | None = None,
                 primary_version: str = "primary",
                 shadow_version: str = "shadow") -> None:
        self.model = model
        self.config = config or ServeConfig()
        self.cost = cost or ServingCostModel()
        self.shadow = shadow
        self.shadow_cost = shadow_cost or self.cost
        self.primary_version = primary_version
        self.shadow_version = shadow_version
        if shadow is not None and shadow.dim != model.dim:
            raise ValueError(
                f"shadow model has dim {shadow.dim}, primary has "
                f"{model.dim}; shadow mode needs a shared feature space")

    # ------------------------------------------------------------------
    def process(self, requests: list[PredictRequest]) -> ServingResult:
        """Replay an arrival-ordered request stream; return the result."""
        cfg = self.config
        batcher = MicroBatcher(cfg.max_batch, cfg.max_delay,
                               cfg.queue_limit)
        state = _PoolState(workers=[0.0] * cfg.workers,
                           shadow_workers=[0.0] * cfg.workers)
        last_arrival = 0.0
        for request in requests:
            if request.arrival < last_arrival:
                raise ValueError(
                    "requests must be sorted by arrival time")
            last_arrival = request.arrival
            self._drain(batcher, state, until=request.arrival)
            if batcher.offer(request):
                state.max_queue_depth = max(state.max_queue_depth,
                                            batcher.depth)
            else:
                state.shed.append(request.request_id)
        self._drain(batcher, state, until=None)
        shadow = None
        if self.shadow is not None:
            shadow = ShadowComparison(
                primary_version=self.primary_version,
                shadow_version=self.shadow_version,
                rows=state.shadow_rows,
                disagreements=state.disagreements,
                latency=state.shadow_latency,
                primary_latency=state.shadow_primary_latency)
        return ServingResult(
            predictions=tuple(state.predictions),
            shed=tuple(state.shed),
            offered=len(requests),
            batch_sizes=tuple(state.batch_sizes),
            max_queue_depth=state.max_queue_depth,
            latency=state.latency,
            shadow=shadow)

    # ------------------------------------------------------------------
    def _drain(self, batcher: MicroBatcher, state: _PoolState,
               until: float | None) -> None:
        """Dispatch every batch that becomes ready up to time ``until``.

        ``None`` drains the queue completely (end of the request
        stream).  Dispatches scheduled exactly at ``until`` run now —
        see the event-ordering convention in the module docstring.
        """
        while True:
            ready = batcher.next_flush_time()
            if ready is None:
                return
            idx = min(range(len(state.workers)),
                      key=lambda i: (state.workers[i], i))
            start = max(ready, state.workers[idx])
            if until is not None and start > until:
                return
            self._serve_batch(batcher.take(), start, idx, state)

    def _serve_batch(self, batch: list[PredictRequest], start: float,
                     worker: int, state: _PoolState) -> None:
        X = stack_requests(batch)
        margins = self.model.decision_function(X)
        labels = np.where(margins >= 0, 1.0, -1.0)
        completed = start + self.cost.batch_seconds(len(batch), int(X.nnz))
        state.workers[worker] = completed
        state.batch_sizes.append(len(batch))
        for request, margin, label in zip(batch, margins, labels):
            state.predictions.append(Prediction(
                request_id=request.request_id, margin=float(margin),
                label=float(label), arrival=request.arrival,
                dispatched=start, completed=completed))
            state.latency.record(completed - request.arrival)
        if self.shadow is not None:
            self._shadow_batch(batch, X, labels, start, completed, state)

    def _shadow_batch(self, batch: list[PredictRequest], X, labels,
                      start: float, primary_completed: float,
                      state: _PoolState) -> None:
        """Tee the batch through the shadow version (no response impact)."""
        idx = min(range(len(state.shadow_workers)),
                  key=lambda i: (state.shadow_workers[i], i))
        shadow_start = max(start, state.shadow_workers[idx])
        shadow_completed = shadow_start + self.shadow_cost.batch_seconds(
            len(batch), int(X.nnz))
        state.shadow_workers[idx] = shadow_completed
        assert self.shadow is not None
        shadow_margins = self.shadow.decision_function(X)
        shadow_labels = np.where(shadow_margins >= 0, 1.0, -1.0)
        state.shadow_rows += len(batch)
        state.disagreements += int(np.sum(shadow_labels != labels))
        for request in batch:
            state.shadow_latency.record(shadow_completed - request.arrival)
            state.shadow_primary_latency.record(
                primary_completed - request.arrival)
