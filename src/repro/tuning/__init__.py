"""Hyperparameter tuning: the paper's grid-search methodology."""

from .grid import GridPoint, GridSearch, expand_grid

__all__ = ["GridSearch", "GridPoint", "expand_grid"]
