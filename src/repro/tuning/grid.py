"""Grid search over trainer hyperparameters.

The paper's methodology (Section V-A): "For each system, we also tune the
hyper-parameters by grid search for fair comparison.  Specifically, we
tuned batch size, learning rate for Spark MLlib.  For Angel and Petuum, we
tuned batch size, learning rate, as well as staleness."

:class:`GridSearch` runs a trainer class over the cartesian product of a
parameter grid and scores each configuration by time (or steps) to a
target objective — the same time-to-threshold metric the evaluation uses.
Configurations that never reach the target rank by their best objective
instead, so the search is total even when nothing converges.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..cluster import ClusterSpec
from ..core.config import TrainerConfig
from ..core.trainer import DistributedTrainer, TrainResult
from ..data import SparseDataset
from ..glm import Objective

__all__ = ["GridSearch", "GridPoint", "expand_grid"]


def expand_grid(grid: dict[str, list]) -> list[dict]:
    """Cartesian product of a parameter grid.

    ``{"learning_rate": [0.1, 0.5], "batch_fraction": [0.01]}`` yields two
    dicts.  Keys must be :class:`TrainerConfig` fields; values are lists
    of candidates.  An empty grid yields one empty configuration.
    """
    if not grid:
        return [{}]
    bad = [k for k, v in grid.items() if not isinstance(v, list) or not v]
    if bad:
        raise ValueError(f"grid values must be non-empty lists; bad: {bad}")
    keys = list(grid)
    return [dict(zip(keys, combo))
            for combo in itertools.product(*(grid[k] for k in keys))]


@dataclass
class GridPoint:
    """One evaluated configuration."""

    params: dict
    result: TrainResult
    seconds_to_target: float | None
    steps_to_target: int | None

    @property
    def converged(self) -> bool:
        return self.seconds_to_target is not None

    @property
    def best_objective(self) -> float:
        return self.result.history.best_objective

    def sort_key(self) -> tuple:
        """Converged configs first (by time), then by best objective."""
        if self.converged:
            return (0, self.seconds_to_target)
        return (1, self.best_objective)


@dataclass
class GridSearch:
    """Exhaustive hyperparameter search for one trainer class.

    Parameters
    ----------
    trainer_cls:
        Any :class:`~repro.core.trainer.DistributedTrainer` subclass.
    objective, cluster:
        Passed through to each trainer instance.
    base_config:
        Defaults for fields the grid does not sweep.
    target:
        Objective value that counts as converged; when None, the target is
        the best objective seen across the whole grid plus ``tolerance``
        (the paper's 0.01-accuracy-loss rule applied within the search).
    tolerance:
        Accuracy-loss tolerance used when ``target`` is None.
    """

    trainer_cls: type[DistributedTrainer]
    objective: Objective
    cluster: ClusterSpec
    base_config: TrainerConfig = field(default_factory=TrainerConfig)
    target: float | None = None
    tolerance: float = 0.01

    def run(self, dataset: SparseDataset,
            grid: dict[str, list]) -> list[GridPoint]:
        """Evaluate the full grid; returns points sorted best-first."""
        points: list[GridPoint] = []
        for params in expand_grid(grid):
            config = self.base_config.with_overrides(**params)
            trainer = self.trainer_cls(self.objective, self.cluster, config)
            result = trainer.fit(dataset)
            points.append(GridPoint(params=params, result=result,
                                    seconds_to_target=None,
                                    steps_to_target=None))

        target = self.target
        if target is None:
            target = (min(p.best_objective for p in points)
                      + self.tolerance)
        for point in points:
            hit = point.result.history.first_reaching(target)
            if hit is not None:
                point.seconds_to_target = hit.seconds
                point.steps_to_target = hit.step
        points.sort(key=GridPoint.sort_key)
        return points

    def best(self, dataset: SparseDataset,
             grid: dict[str, list]) -> GridPoint:
        """Convenience: the single best configuration."""
        return self.run(dataset, grid)[0]
