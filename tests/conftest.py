"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec, cluster1
from repro.core import TrainerConfig
from repro.data import SparseDataset, SyntheticSpec, generate
from repro.glm import Objective


@pytest.fixture
def tiny_dataset() -> SparseDataset:
    """800 x 64 separable-ish dataset; fast enough for trainer tests."""
    return generate(SyntheticSpec(n_rows=800, n_features=64,
                                  nnz_per_row=8.0, noise=0.02, seed=7),
                    name="tiny")


@pytest.fixture
def small_dataset() -> SparseDataset:
    """2,000 x 200 dataset for integration-level checks."""
    return generate(SyntheticSpec(n_rows=2000, n_features=200,
                                  nnz_per_row=12.0, noise=0.03, seed=11),
                    name="small")


@pytest.fixture
def underdetermined_dataset() -> SparseDataset:
    """More features than rows (url/kddb style)."""
    return generate(SyntheticSpec(n_rows=300, n_features=600,
                                  nnz_per_row=20.0, noise=0.01, seed=13),
                    name="under")


@pytest.fixture
def cluster() -> ClusterSpec:
    """The paper's Cluster 1 (1 driver + 8 executors)."""
    return cluster1()


@pytest.fixture
def small_cluster() -> ClusterSpec:
    """Four executors; cheaper for exhaustive trainer tests."""
    return cluster1(executors=4)


@pytest.fixture
def hinge_objective() -> Objective:
    return Objective("hinge")


@pytest.fixture
def hinge_l2_objective() -> Objective:
    return Objective("hinge", "l2", 0.1)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


# ----------------------------------------------------------------------
# fault-injection harness
# ----------------------------------------------------------------------
@pytest.fixture
def fault_config():
    """Factory for configs carrying a scripted failure schedule.

    ``fault_config("3@2")`` returns a small deterministic training config
    in which executor 3 crashes at step 2; keyword overrides pass through
    to :class:`TrainerConfig`.
    """
    def make(schedule: str | None = None, **overrides) -> TrainerConfig:
        base = dict(max_steps=4, learning_rate=0.3, lr_schedule="inv_sqrt",
                    batch_fraction=0.25, local_chunk_size=16, seed=3,
                    failure_schedule=schedule)
        base.update(overrides)
        return TrainerConfig(**base)
    return make


def assert_fault_trace_invariants(result) -> None:
    """The contract every faulty (or fault-free) run must satisfy.

    * spans on one node never overlap and time never runs backwards
      (monotone per-node clock);
    * every ``recovery`` span in the trace starts exactly at a logged
      :class:`FailureRecord` on the same node, step and phase — no
      recovery without a crash;
    * every logged crash that was retried (attempt allowed) has a
      recovery span starting at its crash time.
    """
    trace, failures = result.trace, result.failures
    for node in trace.nodes():
        spans = sorted(trace.spans_for(node),
                       key=lambda s: (s.start, s.end))
        for a, b in zip(spans, spans[1:]):
            assert a.end <= b.start + 1e-9, (
                f"overlapping spans on {node}: {a} then {b}")
    crashes = {(f.node, f.step, round(f.time, 9)) for f in failures}
    for span in trace.spans:
        if span.kind != "recovery":
            continue
        key = (span.node, span.step, round(span.start, 9))
        assert key in crashes, (
            f"recovery span without a matching failure record: {span}")
    for record in failures:
        recoveries = [s for s in trace.spans_for(record.node)
                      if s.kind == "recovery" and s.step == record.step
                      and abs(s.start - record.time) < 1e-9]
        if not recoveries:
            # Legal only for the final, budget-exhausting crash (which
            # raises instead of recovering) or a zero-downtime policy.
            assert record is failures[-1] or (
                result.trace.recovery_seconds(record.node) == 0.0), (
                f"crash without a recovery span: {record}")


@pytest.fixture
def check_fault_trace():
    """Expose the trace-invariant assertion helper as a fixture."""
    return assert_fault_trace_invariants
